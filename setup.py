"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so environments
without the `wheel` package (needed for PEP 660 editable wheels) can still
do a legacy editable install: `python setup.py develop`.
"""

from setuptools import setup

setup()
