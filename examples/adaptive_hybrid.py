#!/usr/bin/env python3
"""Adaptive Hybrid: choose disable-vs-slow per workload (paper Section 4.4).

The paper's Hybrid cache fixes one policy ("keep ways on as long as
possible"), but notes the choice should really depend on the workload:
memory-intensive codes prefer keeping a slow way (capacity matters),
compute-bound codes prefer disabling it (latency matters). This example
builds the measurement-driven estimator the paper sketches: it simulates
both options for a 3-1-0 chip on each workload and lets
:class:`AdaptiveHybrid` pick.

Run:  python examples/adaptive_hybrid.py
"""

from repro.cache.setassoc import WayConfig
from repro.schemes import AdaptiveHybrid
from repro.schemes.adaptive import TableEstimator
from repro.uarch import Simulator
from repro.workloads import TraceGenerator, get_profile
from repro.yieldmodel import YieldStudy

TRACE = 10_000
WARMUP = 8_000
BENCHMARKS = ("crafty", "gzip", "twolf", "ammp")

#: The two options for a 3-1-0 chip.
KEEP_SLOW = (4, 4, 4, 5)
DISABLE = (4, 4, 4, None)


def degradation(benchmark: str, cycles) -> float:
    profile = get_profile(benchmark)
    base = Simulator().run(
        TraceGenerator(profile, seed=11).generate(WARMUP + TRACE), warmup=WARMUP
    )
    rescued = Simulator(l1d_config=WayConfig(latencies=cycles)).run(
        TraceGenerator(profile, seed=11).generate(WARMUP + TRACE), warmup=WARMUP
    )
    return rescued.degradation_vs(base)


def main() -> None:
    print("finding a 3-1-0 chip...")
    population = YieldStudy(seed=2006, count=500).run()
    case = next(
        c
        for c in population.cases
        if not c.passes and c.configuration == "3-1-0"
    )

    print(f"chip {case.circuit.chip_id}: way cycles {case.way_cycles}\n")
    print(f"{'workload':10s} {'keep@5':>8s} {'disable':>8s}  adaptive choice")
    for benchmark in BENCHMARKS:
        keep = degradation(benchmark, KEEP_SLOW)
        drop = degradation(benchmark, DISABLE)
        estimator = TableEstimator(
            {KEEP_SLOW: keep, DISABLE: drop}, default=1.0
        )
        outcome = AdaptiveHybrid(estimator).rescue(case)
        choice = (
            "keep the slow way (VACA mode)"
            if outcome.disabled_way is None
            else f"disable way {outcome.disabled_way} (YAPD mode)"
        )
        print(f"{benchmark:10s} {keep:8.2%} {drop:8.2%}  {choice}")

    print(
        "\nThe fixed paper policy always keeps the way powered; the "
        "adaptive variant switches per workload, matching the paper's "
        "Section 4.4 discussion."
    )


if __name__ == "__main__":
    main()
