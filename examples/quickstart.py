#!/usr/bin/env python3
"""Quickstart: manufacture a few chips and try to rescue the failures.

This walks the library's core loop end to end:

1. draw manufactured caches from the correlated process-variation model,
2. evaluate their per-way delay and leakage with the circuit model,
3. derive the paper's yield limits from a small population,
4. classify each chip and apply YAPD / VACA / Hybrid to the failures.

Run:  python examples/quickstart.py
"""

from repro.circuit import CacheCircuitModel
from repro.core import units
from repro.schemes import Hybrid, VACA, YAPD
from repro.variation import CacheVariationSampler, MonteCarloEngine
from repro.yieldmodel import ChipCase
from repro.yieldmodel.constraints import NOMINAL_POLICY


def main() -> None:
    sampler = CacheVariationSampler()  # Table 1 + paper correlation factors
    model = CacheCircuitModel()  # 16 KB, 4-way, 4 banks/way at 45 nm
    engine = MonteCarloEngine(sampler, seed=42)

    # A small population to derive the delay/leakage limits from.
    population = engine.map_chips(model.evaluate, count=300)
    constraints = NOMINAL_POLICY.derive(
        [chip.access_delay for chip in population],
        [chip.total_leakage for chip in population],
    )
    print(
        f"limits: delay <= {units.to_ps(constraints.delay_limit):.0f} ps "
        f"(4 cycles), leakage <= {units.to_mw(constraints.leakage_limit):.2f} mW"
    )

    schemes = [YAPD(), VACA(), Hybrid()]
    shown = 0
    for circuit in population:
        case = ChipCase(circuit=circuit, constraints=constraints)
        if case.passes or shown >= 5:
            continue
        shown += 1
        print(
            f"\nchip {circuit.chip_id}: {case.loss_reason.value}, "
            f"configuration {case.configuration}, "
            f"delay {units.to_ps(circuit.access_delay):.0f} ps, "
            f"leakage {units.to_mw(circuit.total_leakage):.2f} mW"
        )
        for scheme in schemes:
            outcome = scheme.rescue(case)
            verdict = "SAVED" if outcome.saved else "lost "
            print(f"  {scheme.name:8s} {verdict} - {outcome.note}")

    failures = sum(
        1
        for circuit in population
        if not ChipCase(circuit=circuit, constraints=constraints).passes
    )
    print(f"\n{failures} of {len(population)} chips fail parametric testing;")
    saved = sum(
        1
        for circuit in population
        if not ChipCase(circuit=circuit, constraints=constraints).passes
        and Hybrid()
        .rescue(ChipCase(circuit=circuit, constraints=constraints))
        .saved
    )
    print(f"the Hybrid scheme rescues {saved} of them.")


if __name__ == "__main__":
    main()
