#!/usr/bin/env python3
"""Yield study: regenerate the paper's Section 5.1 analysis at any scale.

Runs a Monte Carlo population through both cache organisations, prints
the Table 2/3-style loss breakdowns, and renders the Figure 8 scatter as
an ASCII density grid.

Run:  python examples/yield_study.py [population]
"""

import sys

from repro.core import units
from repro.experiments.fig8 import density_grid
from repro.schemes import HYAPD, Hybrid, HybridHorizontal, VACA, YAPD
from repro.yieldmodel import YieldStudy


def print_breakdown(title, breakdown) -> None:
    print(f"\n== {title} ==")
    names = list(breakdown.scheme_losses)
    header = f"{'reason of loss':28s} {'chips':>6s}" + "".join(
        f" {name:>9s}" for name in names
    )
    print(header)
    for reason, base, losses in breakdown.rows():
        row = f"{reason.value:28s} {base:6d}" + "".join(
            f" {losses[name]:9d}" for name in names
        )
        print(row)
    print(
        f"{'total':28s} {breakdown.base_total:6d}"
        + "".join(f" {breakdown.scheme_total(name):9d}" for name in names)
    )
    print(
        "yield: base {:.1%}".format(breakdown.yield_with())
        + "".join(
            f", {name} {breakdown.yield_with(name):.1%}" for name in names
        )
    )


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    print(f"simulating {count} manufactured caches...")
    population = YieldStudy(seed=2006, count=count).run()

    print_breakdown(
        "Sources of yield loss: regular power-down (paper Table 2)",
        population.breakdown([YAPD(), VACA(), Hybrid()]),
    )
    print_breakdown(
        "Sources of yield loss: horizontal power-down (paper Table 3)",
        population.breakdown(
            [HYAPD(), VACA(), HybridHorizontal()], horizontal=True
        ),
    )

    norm_leak, delays = population.scatter()
    print("\n== Normalized leakage vs access latency (paper Figure 8) ==")
    print("x: latency  y: normalized leakage  (darker = more chips)")
    print(density_grid([units.to_ns(d) for d in delays], norm_leak))
    print(
        f"latency range {units.to_ns(min(delays)):.2f} - "
        f"{units.to_ns(max(delays)):.2f} ns; "
        f"leakage up to {max(norm_leak):.1f}x the average"
    )


if __name__ == "__main__":
    main()
