#!/usr/bin/env python3
"""What does rescuing a chip cost at runtime?

Finds a failing chip in the Monte Carlo population, rescues it with each
applicable scheme, builds the rescued cache's way configuration, and runs
SPEC2000-like workloads through the out-of-order pipeline simulator to
measure the CPI penalty of shipping that chip — the paper's Section 5.2
question for a single die.

Run:  python examples/rescue_performance.py [benchmark ...]
"""

import sys

from repro.cache.setassoc import WayConfig
from repro.schemes import Hybrid, NaiveBinning, VACA, YAPD
from repro.uarch import Simulator
from repro.workloads import TraceGenerator, get_profile
from repro.yieldmodel import YieldStudy

TRACE = 12_000
WARMUP = 8_000


def find_delay_victim(population):
    """A chip whose only problem is one slow (5-cycle) way: 3-1-0."""
    for case in population.cases:
        if case.loss_reason.value.startswith("delay") and case.configuration == "3-1-0":
            return case
    raise SystemExit("no 3-1-0 chip in this population; raise the count")


def measure(benchmark: str, way_cycles, uniform=None) -> float:
    profile = get_profile(benchmark)
    simulator = Simulator(
        l1d_config=WayConfig(latencies=way_cycles) if way_cycles else None,
        uniform_load_latency=uniform,
        core=Simulator().core.replace(predicted_load_latency=uniform)
        if uniform
        else Simulator().core,
    )
    trace = TraceGenerator(profile, seed=7).generate(WARMUP + TRACE)
    return simulator.run(trace, warmup=WARMUP).cpi


def main() -> None:
    benchmarks = sys.argv[1:] or ["gzip", "twolf", "swim"]
    print("simulating 500 manufactured caches to find a 3-1-0 victim...")
    population = YieldStudy(seed=2006, count=500).run()
    case = find_delay_victim(population)
    print(
        f"chip {case.circuit.chip_id}: way cycles {case.way_cycles} "
        f"({case.loss_reason.value})\n"
    )

    options = []
    for scheme in (YAPD(), VACA(), Hybrid(), NaiveBinning(5)):
        outcome = scheme.rescue(case)
        if outcome.saved:
            options.append((scheme.name, outcome))
            print(f"{scheme.name:10s} saves the chip: {outcome.note}")
        else:
            print(f"{scheme.name:10s} cannot save it: {outcome.note}")

    print(f"\n{'benchmark':10s} {'healthy':>8s}", end="")
    for name, _ in options:
        print(f" {name:>10s}", end="")
    print()

    for benchmark in benchmarks:
        base = measure(benchmark, None)
        print(f"{benchmark:10s} {base:8.3f}", end="")
        for name, outcome in options:
            uniform = (
                outcome.max_cycles if name.startswith("Binning") else None
            )
            cycles = None if uniform else outcome.way_cycles
            cpi = measure(benchmark, cycles, uniform=uniform)
            print(f" {100 * (cpi / base - 1):+9.2f}%", end="")
        print()

    print(
        "\n(positive numbers are the CPI cost of shipping the rescued "
        "chip; the paper's Table 6 reports the same quantity averaged "
        "over the suite)"
    )


if __name__ == "__main__":
    main()
