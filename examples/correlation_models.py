#!/usr/bin/env python3
"""Compare the two spatial-correlation formulations.

The paper samples process parameters hierarchically with correlation
*factors*; those factors were derived from Friedberg et al.'s
grid/distance-decay measurements. This library implements both — the
hierarchical sampler (`CacheVariationSampler`, the default) and a
grid/Cholesky field sampler (`GridVariationSampler`) — and this example
runs the full yield pipeline under each to show the headline conclusions
do not depend on the formulation.

Run:  python examples/correlation_models.py [population]
"""

import sys

from repro.schemes import Hybrid, VACA, YAPD
from repro.variation import CacheVariationSampler, GridVariationSampler
from repro.yieldmodel import YieldStudy, scheme_yield_interval


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    samplers = {
        "hierarchical (paper factors)": CacheVariationSampler(),
        "grid field (Friedberg-style)": GridVariationSampler(),
    }
    schemes = [YAPD(), VACA(), Hybrid()]

    print(f"{count} chips per model\n")
    header = f"{'correlation model':30s} {'base':>7s}"
    for scheme in schemes:
        header += f" {scheme.name:>8s}"
    header += "  Hybrid yield (95% CI)"
    print(header)

    for label, sampler in samplers.items():
        population = YieldStudy(
            seed=2006, count=count, sampler=sampler
        ).run()
        breakdown = population.breakdown(schemes)
        row = f"{label:30s} {breakdown.yield_with():6.1%}"
        for scheme in schemes:
            row += f" {breakdown.yield_with(scheme.name):7.1%}"
        low, high = scheme_yield_interval(population, Hybrid())
        row += f"  [{low:.1%}, {high:.1%}]"
        print(row)

    print(
        "\nBoth formulations produce the same ordering "
        "(Hybrid > YAPD > VACA > base); the factors are, after all, a "
        "fit to the grid model's correlations."
    )


if __name__ == "__main__":
    main()
