"""Functional cache models for the pipeline simulator.

Where :mod:`repro.circuit` models *electrical* behaviour (delay, leakage),
this subpackage models *architectural* behaviour: hits, misses,
replacement, per-way access latencies, disabled ways, and the H-YAPD
address remapping. The pipeline simulator (:mod:`repro.uarch`) drives a
:class:`~repro.cache.hierarchy.MemoryHierarchy` built from these models.

* :mod:`repro.cache.geometry` — sets/ways/blocks arithmetic.
* :mod:`repro.cache.replacement` — LRU (the paper's policy) plus FIFO and
  random for experimentation.
* :mod:`repro.cache.setassoc` — the set-associative cache with way
  latencies, way disable, and H-YAPD horizontal-way disable.
* :mod:`repro.cache.hierarchy` — L1I + L1D + unified L2 + memory, with
  the paper's Section 5.2 parameters as defaults.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import (
    LRUPolicy,
    FIFOPolicy,
    RandomPolicy,
    ReplacementPolicy,
)
from repro.cache.setassoc import AccessResult, SetAssociativeCache, WayConfig
from repro.cache.hierarchy import (
    HierarchyConfig,
    MemoryAccess,
    MemoryHierarchy,
    PAPER_HIERARCHY,
)

__all__ = [
    "CacheGeometry",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "AccessResult",
    "SetAssociativeCache",
    "WayConfig",
    "HierarchyConfig",
    "MemoryAccess",
    "MemoryHierarchy",
    "PAPER_HIERARCHY",
]
