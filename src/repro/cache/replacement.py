"""Replacement policies.

The paper's caches use LRU. FIFO and random are provided for
experimentation (and to sanity-check that the yield-aware schemes'
relative costs are not an artefact of the replacement policy).

A policy instance manages *one set*: the cache keeps one instance per set.
Ways are identified by index; the policy only ever sees ways the cache
says are eligible (enabled for the set under YAPD/H-YAPD).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.core.errors import ConfigurationError, SimulationError

__all__ = ["ReplacementPolicy", "LRUPolicy", "FIFOPolicy", "RandomPolicy"]

#: Raised when a victim is requested from a set with no usable ways.
#: H-YAPD band disables on a cache with fewer ways than bands can mask
#: *every* way of an address group; that is a configuration problem (and
#: SetAssociativeCache rejects it at construction), so policies report it
#: as one instead of dying with an IndexError deep in a simulation.
_NO_CANDIDATES = (
    "no eligible ways to choose a victim from — the way configuration "
    "leaves this set with zero usable ways (an H-YAPD band disable can "
    "mask every way of an address group when the cache has fewer ways "
    "than bands)"
)


class ReplacementPolicy(abc.ABC):
    """Replacement state for a single cache set."""

    @abc.abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit (or fill) on ``way``."""

    @abc.abstractmethod
    def victim(self, candidates: Sequence[int]) -> int:
        """Choose the way to evict among ``candidates``."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used."""

    def __init__(self) -> None:
        self._order: List[int] = []  # most recent last

    def touch(self, way: int) -> None:
        if way in self._order:
            self._order.remove(way)
        self._order.append(way)

    def victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ConfigurationError(_NO_CANDIDATES)
        # Least recently used eligible way; ways never touched are oldest.
        untouched = [w for w in candidates if w not in self._order]
        if untouched:
            return untouched[0]
        for way in self._order:
            if way in candidates:
                return way
        raise SimulationError("LRU state inconsistent with candidates")


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: evict the oldest fill, ignore hits."""

    def __init__(self) -> None:
        self._fill_order: List[int] = []

    def touch(self, way: int) -> None:
        # FIFO only advances on fills; SetAssociativeCache calls touch()
        # on both hits and fills, so track only the first occurrence.
        if way not in self._fill_order:
            self._fill_order.append(way)

    def victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ConfigurationError(_NO_CANDIDATES)
        unfilled = [w for w in candidates if w not in self._fill_order]
        if unfilled:
            return unfilled[0]
        for way in self._fill_order:
            if way in candidates:
                self._fill_order.remove(way)
                return way
        raise SimulationError("FIFO state inconsistent with candidates")


class RandomPolicy(ReplacementPolicy):
    """Uniform random eviction (deterministic per seed)."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def touch(self, way: int) -> None:  # random keeps no state
        return None

    def victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ConfigurationError(_NO_CANDIDATES)
        return int(candidates[int(self._rng.integers(0, len(candidates)))])
