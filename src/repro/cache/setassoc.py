"""Set-associative cache with yield-aware way configuration.

:class:`SetAssociativeCache` is a functional (hit/miss + latency) model.
Its :class:`WayConfig` captures everything the yield-aware schemes decide:

* per-way access latency in cycles (VACA ways may answer in 5),
* disabled vertical ways (YAPD),
* a disabled horizontal way (H-YAPD): with ``num_bands`` bands, the sets
  are partitioned into ``num_bands`` contiguous *address groups*, and
  group ``g`` of way ``w`` physically resides in band ``(g + w) mod B``
  (the paper's Figure 5 rotation). Disabling band ``b`` therefore removes
  exactly one — and a different — way from each group, so every address
  keeps ``ways - 1`` candidates and the hit/miss behaviour matches a
  ``ways - 1``-way cache, as the paper argues.

The model is write-allocate, write-back; dirty state is tracked so miss
traffic can be inspected, but writebacks are not separately timed (the
pipeline models stores as non-blocking through a store buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.core.errors import ConfigurationError
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["WayConfig", "AccessResult", "SetAssociativeCache"]


@dataclass(frozen=True)
class WayConfig:
    """Yield-aware way configuration of one cache.

    Attributes
    ----------
    latencies:
        Access cycles per way; ``None`` marks a way disabled by YAPD.
        Length must equal the cache's associativity.
    disabled_band:
        H-YAPD: the powered-down horizontal band index, or ``None``.
    num_bands:
        Number of horizontal bands (only meaningful with H-YAPD).
    """

    latencies: Tuple[Optional[int], ...]
    disabled_band: Optional[int] = None
    num_bands: int = 4

    def __post_init__(self) -> None:
        if not self.latencies:
            raise ConfigurationError("latencies must not be empty")
        enabled = [lat for lat in self.latencies if lat is not None]
        if not enabled:
            raise ConfigurationError("at least one way must stay enabled")
        for lat in enabled:
            if lat < 1:
                raise ConfigurationError(f"way latency must be >= 1, got {lat}")
        if self.disabled_band is not None:
            if any(lat is None for lat in self.latencies):
                raise ConfigurationError(
                    "cannot combine YAPD way-disable with H-YAPD band-disable"
                )
            if not 0 <= self.disabled_band < self.num_bands:
                raise ConfigurationError(
                    f"disabled_band {self.disabled_band} out of range"
                )

    @classmethod
    def uniform(cls, ways: int, latency: int = BASE_ACCESS_CYCLES) -> "WayConfig":
        """All ways enabled at the same latency (the healthy-chip config)."""
        return cls(latencies=tuple(latency for _ in range(ways)))

    @classmethod
    def from_cycles(
        cls,
        way_cycles: Tuple[Optional[int], ...],
        disabled_band: Optional[int] = None,
        num_bands: int = 4,
    ) -> "WayConfig":
        """Build from a scheme's :class:`RescueOutcome.way_cycles`."""
        return cls(
            latencies=way_cycles,
            disabled_band=disabled_band,
            num_bands=num_bands,
        )

    @property
    def num_ways(self) -> int:
        return len(self.latencies)

    def way_enabled_for_group(self, way: int, group: int) -> bool:
        """Is ``way`` usable for H-YAPD address group ``group``?"""
        if self.latencies[way] is None:
            return False
        if self.disabled_band is None:
            return True
        band = (group + way) % self.num_bands
        return band != self.disabled_band


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache lookup."""

    hit: bool
    way: Optional[int]
    latency: Optional[int]
    set_index: int
    evicted_block: Optional[int] = None
    evicted_dirty: bool = False


class _Line:
    """One resident block (slotted: millions are churned per run)."""

    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool = False) -> None:
        self.tag = tag
        self.dirty = dirty


class SetAssociativeCache:
    """Functional set-associative cache with yield-aware configuration.

    Parameters
    ----------
    geometry:
        Sets/ways/blocks arithmetic.
    config:
        Way latencies and disables; defaults to all ways at the base
        latency.
    policy_factory:
        Creates one :class:`ReplacementPolicy` per set (default LRU).
    name:
        Label used in statistics.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        config: Optional[WayConfig] = None,
        policy_factory: Callable[[], ReplacementPolicy] = LRUPolicy,
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.config = (
            config
            if config is not None
            else WayConfig.uniform(geometry.associativity)
        )
        if self.config.num_ways != geometry.associativity:
            raise ConfigurationError(
                f"config has {self.config.num_ways} ways, geometry has "
                f"{geometry.associativity}"
            )
        self.name = name
        self._policy_factory = policy_factory
        self._eligible: List[Tuple[int, ...]] = []
        self._lines: List[Dict[int, Optional[_Line]]] = [
            {w: None for w in range(geometry.associativity)}
            for _ in range(geometry.num_sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            policy_factory() for _ in range(geometry.num_sets)
        ]
        # The way configuration is frozen, so each set's eligible-way
        # list can be computed once here instead of per access. An
        # H-YAPD band disable on a cache with fewer ways than bands can
        # leave an address group with *zero* usable ways — reject that
        # here with a clear error instead of letting a replacement
        # policy fail mid-simulation.
        group_eligible: Dict[int, Tuple[int, ...]] = {}
        for set_index in range(geometry.num_sets):
            group = geometry.address_group(set_index, self.config.num_bands)
            if group not in group_eligible:
                eligible = tuple(
                    w
                    for w in range(geometry.associativity)
                    if self.config.way_enabled_for_group(w, group)
                )
                if not eligible:
                    raise ConfigurationError(
                        f"{name}: H-YAPD band disable leaves address group "
                        f"{group} with zero usable ways "
                        f"({geometry.associativity} ways, "
                        f"{self.config.num_bands} bands, band "
                        f"{self.config.disabled_band} disabled)"
                    )
                group_eligible[group] = eligible
            self._eligible.append(group_eligible[group])
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.way_hits = [0] * geometry.associativity

    # ------------------------------------------------------------------
    def _group(self, set_index: int) -> int:
        return self.geometry.address_group(set_index, self.config.num_bands)

    def eligible_ways(self, set_index: int) -> List[int]:
        """Ways usable for this set under the current configuration."""
        return list(self._eligible[set_index])

    def effective_associativity(self, set_index: int) -> int:
        """Number of usable ways for this set."""
        return len(self._eligible[set_index])

    # ------------------------------------------------------------------
    def lookup(self, address: int) -> AccessResult:
        """Probe without modifying any state (no LRU update)."""
        set_index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        for way in self._eligible[set_index]:
            line = self._lines[set_index][way]
            if line is not None and line.tag == tag:
                return AccessResult(
                    hit=True,
                    way=way,
                    latency=self.config.latencies[way],
                    set_index=set_index,
                )
        return AccessResult(hit=False, way=None, latency=None, set_index=set_index)

    def access(self, address: int, write: bool = False) -> AccessResult:
        """Look up ``address``; on a hit update LRU (and dirty for writes).

        Misses do *not* allocate — call :meth:`fill` when the refill
        arrives, which is how the hierarchy models non-blocking misses.
        """
        result = self.lookup(address)
        set_index = result.set_index
        if result.hit:
            assert result.way is not None
            self.hits += 1
            self.way_hits[result.way] += 1
            self._policies[set_index].touch(result.way)
            if write:
                line = self._lines[set_index][result.way]
                assert line is not None
                line.dirty = True
        else:
            self.misses += 1
        return result

    def fill(self, address: int, dirty: bool = False) -> AccessResult:
        """Install the block of ``address``, evicting if necessary."""
        probe = self.lookup(address)
        if probe.hit:
            # Another outstanding miss already refilled this block.
            assert probe.way is not None
            self._policies[probe.set_index].touch(probe.way)
            if dirty:
                line = self._lines[probe.set_index][probe.way]
                assert line is not None
                line.dirty = True
            return probe
        set_index = probe.set_index
        tag = self.geometry.tag(address)
        eligible = self._eligible[set_index]
        empty = [w for w in eligible if self._lines[set_index][w] is None]
        evicted_block: Optional[int] = None
        evicted_dirty = False
        if empty:
            # Spread cold fills across the empty ways (hash by block
            # address): always picking the lowest index would park the
            # long-lived hot blocks in the low ways and starve the high
            # ways of hits, which would bias every per-way-latency
            # experiment.
            way = empty[self.geometry.block_address(address) % len(empty)]
        else:
            way = self._policies[set_index].victim(eligible)
            victim = self._lines[set_index][way]
            assert victim is not None
            set_bits = self.geometry.num_sets.bit_length() - 1
            evicted_block = (victim.tag << set_bits) | set_index
            evicted_dirty = victim.dirty
            self.evictions += 1
        self._lines[set_index][way] = _Line(tag=tag, dirty=dirty)
        self._policies[set_index].touch(way)
        return AccessResult(
            hit=False,
            way=way,
            latency=self.config.latencies[way],
            set_index=set_index,
            evicted_block=evicted_block,
            evicted_dirty=evicted_dirty,
        )

    # ------------------------------------------------------------------
    def run_compiled(self, trace) -> Tuple[int, int, int]:
        """Replay a compiled trace's memory ops through this cache.

        Semantically identical to the per-access reference loop::

            for instr in trace.instructions():
                if instr.address is None:
                    continue
                write = instr.op is OpClass.STORE
                result = cache.access(instr.address, write=write)
                if not result.hit:
                    cache.fill(instr.address, dirty=write)

        but batched: the (set index, tag, write) columns come pre-split
        from :meth:`CompiledTrace.memory_ops`, attribute lookups are
        hoisted into locals, the common hit path is short-circuited, and
        no per-access :class:`AccessResult` objects are allocated —
        ``fill``'s re-probe is skipped because nothing can intervene
        between the missed lookup and the refill here. Statistics
        (hits/misses/evictions/way_hits) accumulate exactly as in the
        reference; the deltas are returned as ``(hits, misses,
        evictions)``.

        ``trace`` is any object with a
        ``memory_ops(geometry) -> (sets, tags, writes, count)`` method —
        in practice :class:`repro.workloads.compiled.CompiledTrace`.
        """
        set_indices, tags, writes, count = trace.memory_ops(self.geometry)
        lines = self._lines
        policies = self._policies
        eligible = self._eligible
        way_hits = self.way_hits
        make_line = _Line
        set_bits = self.geometry.num_sets.bit_length() - 1
        hits = 0
        misses = 0
        evictions = 0
        for i in range(count):
            set_index = set_indices[i]
            tag = tags[i]
            set_lines = lines[set_index]
            elig = eligible[set_index]
            hit_way = -1
            for way in elig:
                line = set_lines[way]
                if line is not None and line.tag == tag:
                    hit_way = way
                    break
            if hit_way >= 0:
                hits += 1
                way_hits[hit_way] += 1
                policies[set_index].touch(hit_way)
                if writes[i]:
                    set_lines[hit_way].dirty = True
                continue
            misses += 1
            empty = [w for w in elig if set_lines[w] is None]
            if empty:
                # Same cold-fill spread as fill(): hash by block address,
                # which is exactly (tag << set_bits) | set_index.
                way = empty[((tag << set_bits) | set_index) % len(empty)]
            else:
                way = policies[set_index].victim(elig)
                evictions += 1
            set_lines[way] = make_line(tag, bool(writes[i]))
            policies[set_index].touch(way)
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        return hits, misses, evictions

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all accesses so far (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_statistics(self) -> None:
        """Zero the counters without touching cache contents."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.way_hits = [0] * self.geometry.associativity
