"""Cache geometry arithmetic (sets, ways, blocks, H-YAPD groups)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core import units
from repro.core.validation import (
    require_divides,
    require_positive,
    require_power_of_two,
)

__all__ = ["CacheGeometry"]


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/block arithmetic of one cache level.

    Attributes
    ----------
    capacity_bytes:
        Total data capacity.
    associativity:
        Number of ways.
    block_bytes:
        Cache block (line) size.
    """

    capacity_bytes: int
    associativity: int
    block_bytes: int

    def __post_init__(self) -> None:
        require_power_of_two(self.capacity_bytes, "capacity_bytes")
        require_positive(self.associativity, "associativity")
        require_power_of_two(self.block_bytes, "block_bytes")
        require_divides(
            self.associativity * self.block_bytes,
            self.capacity_bytes,
            "capacity",
        )
        require_power_of_two(self.num_sets, "num_sets")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.associativity * self.block_bytes)

    @property
    def num_blocks(self) -> int:
        """Total number of blocks."""
        return self.num_sets * self.associativity

    @cached_property
    def _offset_bits(self) -> int:
        return self.block_bytes.bit_length() - 1

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def block_address(self, address: int) -> int:
        """The block-aligned identifier of ``address``."""
        return address >> self._offset_bits

    def set_index(self, address: int) -> int:
        """The set ``address`` maps to."""
        return self.block_address(address) & (self.num_sets - 1)

    def tag(self, address: int) -> int:
        """The tag of ``address``."""
        return self.block_address(address) >> (self.num_sets.bit_length() - 1)

    # ------------------------------------------------------------------
    # H-YAPD address groups
    # ------------------------------------------------------------------
    def address_group(self, set_index: int, num_groups: int) -> int:
        """The H-YAPD address group of a set (paper Figure 5).

        The paper partitions the line (set) space into ``num_groups``
        contiguous ranges; each range occupies a *different* horizontal
        band in each way, so disabling one band removes exactly one
        candidate way per group.
        """
        require_positive(num_groups, "num_groups")
        sets_per_group = max(self.num_sets // num_groups, 1)
        return min(set_index // sets_per_group, num_groups - 1)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``"16KB/4-way/32B (128 sets)"``."""
        kb = self.capacity_bytes / units.KB
        return (
            f"{kb:g}KB/{self.associativity}-way/{self.block_bytes}B "
            f"({self.num_sets} sets)"
        )
