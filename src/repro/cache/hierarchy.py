"""Memory hierarchy (paper Section 5.2 parameters).

The simulated processor's hierarchy:

* L1 instruction cache: 16 KB, 4-way, 64 B blocks, 2-cycle latency;
* L1 data cache: 16 KB, 4-way, 32 B blocks, 4-cycle latency — the cache
  the yield-aware schemes reconfigure;
* unified L2: 512 KB, 8-way, 128 B blocks, 25-cycle latency;
* memory: 350 cycles.

All caches are lockup-free: the hierarchy does not serialise misses; it
returns each access's total latency and lets the pipeline overlap them
(ports are modelled by the pipeline, MSHR-style merging by block address
is modelled here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache, WayConfig
from repro.core import units
from repro.core.validation import require_positive
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["HierarchyConfig", "MemoryAccess", "MemoryHierarchy", "PAPER_HIERARCHY"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Parameters of the simulated memory hierarchy."""

    l1i_geometry: CacheGeometry = CacheGeometry(16 * units.KB, 4, 64)
    l1i_latency: int = 2
    l1d_geometry: CacheGeometry = CacheGeometry(16 * units.KB, 4, 32)
    l1d_latency: int = BASE_ACCESS_CYCLES
    l2_geometry: CacheGeometry = CacheGeometry(512 * units.KB, 8, 128)
    l2_latency: int = 25
    memory_latency: int = 350
    mshr_entries: int = 16

    def __post_init__(self) -> None:
        require_positive(self.l1i_latency, "l1i_latency")
        require_positive(self.l1d_latency, "l1d_latency")
        require_positive(self.l2_latency, "l2_latency")
        require_positive(self.memory_latency, "memory_latency")
        require_positive(self.mshr_entries, "mshr_entries")


PAPER_HIERARCHY = HierarchyConfig()


@dataclass(frozen=True)
class MemoryAccess:
    """Timing outcome of one data access.

    Attributes
    ----------
    latency:
        Total cycles from access start to data available.
    l1_hit:
        True if the L1 data cache hit.
    l2_hit:
        True if the access was served from L2 (only meaningful on L1
        miss).
    way:
        The L1 way that hit (or that the refill filled).
    """

    latency: int
    l1_hit: bool
    l2_hit: bool
    way: Optional[int]


class MemoryHierarchy:
    """L1I + L1D + L2 + memory with yield-aware L1D configuration.

    Parameters
    ----------
    config:
        Hierarchy parameters.
    l1d_config:
        Yield-aware way configuration of the L1 data cache (latencies,
        disables). Defaults to the healthy all-4-cycle configuration.
    uniform_load_latency:
        When set (naive binning, Section 4.5), every L1 hit is served at
        this latency regardless of the way's own latency.
    """

    def __init__(
        self,
        config: HierarchyConfig = PAPER_HIERARCHY,
        l1d_config: Optional[WayConfig] = None,
        uniform_load_latency: Optional[int] = None,
    ) -> None:
        self.config = config
        self.l1i = SetAssociativeCache(config.l1i_geometry, name="L1I")
        self.l1d = SetAssociativeCache(
            config.l1d_geometry, config=l1d_config, name="L1D"
        )
        self.l2 = SetAssociativeCache(config.l2_geometry, name="L2")
        self.uniform_load_latency = uniform_load_latency
        # Outstanding L1D misses by block address -> completion latency
        # bookkeeping is the pipeline's job; here we only merge repeated
        # misses to the same block so they are not double-counted in L2.
        self._outstanding: Dict[int, int] = {}
        self.l2_accesses = 0
        self.memory_accesses = 0

    # ------------------------------------------------------------------
    def _l1_hit_latency(self, way_latency: int) -> int:
        if self.uniform_load_latency is not None:
            return self.uniform_load_latency
        return way_latency

    def data_access(self, address: int, write: bool = False) -> MemoryAccess:
        """Access the data hierarchy; fills on miss; returns total latency."""
        result = self.l1d.access(address, write=write)
        if result.hit:
            assert result.latency is not None
            return MemoryAccess(
                latency=self._l1_hit_latency(result.latency),
                l1_hit=True,
                l2_hit=False,
                way=result.way,
            )

        # L1 miss: check the L2 (allocating both levels on the way back).
        block = self.l1d.geometry.block_address(address)
        l2_result = self.l2.access(address, write=False)
        self.l2_accesses += 1
        if l2_result.hit:
            beyond = self.config.l2_latency
            l2_hit = True
        else:
            self.l2.fill(address)
            self.memory_accesses += 1
            beyond = self.config.l2_latency + self.config.memory_latency
            l2_hit = False
        fill = self.l1d.fill(address, dirty=write)
        if fill.evicted_dirty and fill.evicted_block is not None:
            # Write the dirty victim back into L2 (state only; the
            # writeback bandwidth is not separately timed).
            offset_bits = self.l1d.geometry.block_bytes.bit_length() - 1
            self.l2.access(fill.evicted_block << offset_bits, write=True)
        base = self.l1d.config.latencies[fill.way] if fill.way is not None else None
        l1_portion = self._l1_hit_latency(
            base if base is not None else self.config.l1d_latency
        )
        return MemoryAccess(
            latency=l1_portion + beyond,
            l1_hit=False,
            l2_hit=l2_hit,
            way=fill.way,
        )

    def instruction_fetch(self, address: int) -> int:
        """Fetch latency (cycles) for the instruction block of ``address``."""
        result = self.l1i.access(address, write=False)
        if result.hit:
            return self.config.l1i_latency
        l2_result = self.l2.access(address, write=False)
        self.l2_accesses += 1
        if l2_result.hit:
            beyond = self.config.l2_latency
        else:
            self.l2.fill(address)
            self.memory_accesses += 1
            beyond = self.config.l2_latency + self.config.memory_latency
        self.l1i.fill(address)
        return self.config.l1i_latency + beyond

    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, float]:
        """Flat counter snapshot for reports and tests."""
        return {
            "l1i_accesses": self.l1i.accesses,
            "l1i_miss_rate": self.l1i.miss_rate,
            "l1d_accesses": self.l1d.accesses,
            "l1d_misses": self.l1d.misses,
            "l1d_miss_rate": self.l1d.miss_rate,
            "l2_accesses": self.l2_accesses,
            "l2_miss_rate": self.l2.miss_rate,
            "memory_accesses": self.memory_accesses,
        }
