"""Stdlib client for the yield-analysis service.

A thin synchronous wrapper over :mod:`http.client` — usable from tests,
CI smoke jobs, benchmark harnesses and scripts without any third-party
dependency. One :class:`ServeClient` holds one keep-alive connection;
it is not thread-safe (give each thread its own client, they are cheap).

Example::

    from repro.serve.client import ServeClient

    with ServeClient("127.0.0.1", 8787) as client:
        print(client.healthz()["status"])
        summary = client.population(seed=7, chips=200)
        print(summary["regular"]["base_yield"])
        for event in client.population_stream(seed=7, chips=2000):
            print(event)  # accepted / progress / result events
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A non-2xx response (carries the HTTP status and error body)."""

    def __init__(self, status: int, body: object) -> None:
        message = body.get("error") if isinstance(body, dict) else str(body)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body


class ServeClient:
    """Synchronous JSON client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        timeout: float = 60.0,
        client_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        #: The ``X-Repro-Request-Id`` of the most recent response —
        #: correlate a reply with its trace span / request-log line.
        self.last_request_id: Optional[str] = None
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        accept: Optional[str] = None,
        raw: bool = False,
    ):
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = self._headers()
        if accept is not None:
            headers["Accept"] = accept
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # A server-closed keep-alive connection: reconnect once.
                self.close()
                if attempt == 2:
                    raise
        data = response.read()
        self.last_request_id = response.getheader("X-Repro-Request-Id")
        if raw:
            if response.status >= 300:
                raise ServeError(response.status, data.decode("utf-8", "replace"))
            return data.decode("utf-8")
        decoded = json.loads(data) if data else None
        if response.status >= 300:
            raise ServeError(response.status, decoded)
        return decoded

    def _stream(self, path: str, body: dict) -> Iterator[dict]:
        # A dedicated connection per stream: the server closes it when
        # the stream ends, and this client stays usable for more calls.
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "POST", path, body=json.dumps(body).encode("utf-8"),
                headers=self._headers(),
            )
            response = conn.getresponse()
            if response.status >= 300:
                data = response.read()
                raise ServeError(
                    response.status, json.loads(data) if data else None
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Server liveness/readiness snapshot."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """The server's metrics as JSON (registry snapshots + rollup)."""
        return self._request("GET", "/metrics", accept="application/json")

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self._request(
            "GET", "/metrics", accept="text/plain", raw=True
        )

    def dashboard(self) -> str:
        """The live dashboard page (self-contained HTML)."""
        return self._request("GET", "/dashboard", raw=True)

    def debug_traces(self) -> dict:
        """The server's retained ``serve.request`` span ring."""
        return self._request("GET", "/debug/traces")

    def population(
        self,
        seed: Optional[int] = None,
        chips: Optional[int] = None,
        policy: str = "nominal",
        detail: str = "summary",
    ) -> dict:
        """One population query (blocking until the result is ready)."""
        return self._request(
            "POST", "/v1/population",
            _drop_none(seed=seed, chips=chips, policy=policy, detail=detail),
        )

    def population_stream(
        self,
        seed: Optional[int] = None,
        chips: Optional[int] = None,
        policy: str = "nominal",
        detail: str = "summary",
    ) -> Iterator[dict]:
        """Streaming population query: yields progress event dicts."""
        body = _drop_none(seed=seed, chips=chips, policy=policy, detail=detail)
        body["stream"] = True
        return self._stream("/v1/population", body)

    def estimate(
        self,
        seed: Optional[int] = None,
        chips: Optional[int] = None,
        policy: str = "nominal",
        estimator: Optional[dict] = None,
    ) -> dict:
        """One yield-estimate query (blocking until the result is ready).

        ``estimator`` is the spec object (``{"kind": "adaptive",
        "ci_target": 0.02}``, ...); omitted fields take the spec's
        defaults.
        """
        return self._request(
            "POST", "/v1/estimate",
            _drop_none(
                seed=seed, chips=chips, policy=policy, estimator=estimator
            ),
        )

    def simulate(
        self,
        benchmark: str,
        seed: Optional[int] = None,
        trace_length: Optional[int] = None,
        warmup: Optional[int] = None,
        way_cycles: Optional[Sequence[Optional[int]]] = None,
        uniform_latency: Optional[int] = None,
    ) -> dict:
        """One simulation query (blocking until the result is ready)."""
        return self._request(
            "POST", "/v1/simulate",
            _drop_none(
                benchmark=benchmark, seed=seed, trace_length=trace_length,
                warmup=warmup,
                way_cycles=list(way_cycles) if way_cycles is not None else None,
                uniform_latency=uniform_latency,
            ),
        )

    def experiment(
        self,
        name: str,
        seed: Optional[int] = None,
        chips: Optional[int] = None,
        trace_length: Optional[int] = None,
        warmup: Optional[int] = None,
        benchmarks: Optional[List[str]] = None,
    ) -> dict:
        """Run (or replay from cache) one named experiment."""
        return self._request(
            "POST", "/v1/experiment",
            _drop_none(
                name=name, seed=seed, chips=chips,
                trace_length=trace_length, warmup=warmup,
                benchmarks=benchmarks,
            ),
        )


def _drop_none(**fields) -> dict:
    return {name: value for name, value in fields.items() if value is not None}
