"""Single-flight request coalescing with progress fan-out.

The serve request mix is duplicate-heavy: scheme/degradation sweeps ask
for the same population or simulation from many clients at once. The
coalescer keys every compute request by its deterministic job identity
(the engine's store key) and keeps one :class:`Flight` per key: the
first request starts the computation; every later request **joins** the
existing flight and awaits the same result. The computation runs in its
own task, so a client that disconnects mid-wait — even the one that
started the flight — never aborts the job for the others. Progress
events the engine reports are broadcast to every subscriber of the
flight, so all coalesced clients see the same job advance.

Runs entirely on the server's event loop; engine calls happen on worker
threads and re-enter the loop via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["Coalescer", "Flight"]


class Flight:
    """One in-flight job and its subscribers."""

    __slots__ = ("key", "done", "result", "error", "subscribers", "waiters",
                 "task")

    def __init__(self, key: str) -> None:
        self.key = key
        self.done = asyncio.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None
        #: Event queues of streaming subscribers (progress fan-out).
        self.subscribers: List[asyncio.Queue] = []
        self.waiters = 0
        self.task: Optional[asyncio.Task] = None

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self.subscribers.append(queue)
        return queue

    def publish(self, event: dict) -> None:
        for queue in self.subscribers:
            queue.put_nowait(event)


class Coalescer:
    """Deduplicates concurrent identical jobs onto single flights."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._flights: Dict[str, Flight] = {}

    def flight_count(self) -> int:
        """How many distinct jobs are currently in flight."""
        return len(self._flights)

    def pending(self) -> int:
        """How many requests are currently attached to flights."""
        return sum(f.waiters for f in self._flights.values())

    def get(self, key: str) -> Optional[Flight]:
        """The existing flight for ``key``, or ``None``."""
        return self._flights.get(key)

    async def drain(self) -> None:
        """Wait until every in-flight job has settled."""
        while self._flights:
            tasks = [
                f.task for f in self._flights.values() if f.task is not None
            ]
            if not tasks:
                break
            await asyncio.wait(tasks)

    async def run(
        self,
        key: str,
        start: Callable[[Flight], Awaitable[object]],
        flight_out: Optional[List[Flight]] = None,
    ) -> object:
        """Await the result for ``key``, computing it at most once.

        ``start(flight)`` is awaited inside the flight's own task, only
        for the first caller per key; later callers join and await the
        shared outcome. ``flight_out`` (when given) receives the flight
        before any await, so streaming callers can subscribe to progress
        without racing the computation.
        """
        flight = self._flights.get(key)
        if flight is None:
            flight = Flight(key)
            self._flights[key] = flight
            self.registry.counter("serve.coalesce.leader").inc()
            flight.task = asyncio.get_running_loop().create_task(
                self._lead(flight, start)
            )
        else:
            self.registry.counter("serve.coalesce.joined").inc()
        if flight_out is not None:
            flight_out.append(flight)
        flight.waiters += 1
        try:
            await flight.done.wait()
        finally:
            flight.waiters -= 1
        if flight.error is not None:
            raise flight.error
        return flight.result

    async def _lead(self, flight: Flight, start) -> None:
        try:
            flight.result = await start(flight)
        except BaseException as exc:
            flight.error = exc
        finally:
            self._flights.pop(flight.key, None)
            flight.publish({"event": "done", "ok": flight.error is None})
            flight.done.set()
