"""``repro serve`` — a long-running yield-analysis service.

A stdlib-only asyncio HTTP/JSON front end over the
:mod:`repro.engine` scheduler: population / simulation / experiment
queries keyed by the engine's deterministic job identities, answered
from the warm store when possible, coalesced when duplicated in flight,
batched into shared pool dispatches when compatible, and admission-
controlled (bounded queues, per-client round-robin fairness, 429/503 on
overload). Progress streams as chunked JSON lines; ``/metrics`` and
``/healthz`` expose the obs layer as a live dashboard; SIGTERM drains
in-flight jobs before exit.

See :mod:`repro.serve.server` for the architecture walk-through and
:mod:`repro.serve.client` for the stdlib client.
"""

from repro.serve.admission import AdmissionController, RejectedError
from repro.serve.batcher import SimulationBatcher
from repro.serve.client import ServeClient, ServeError
from repro.serve.coalescer import Coalescer, Flight
from repro.serve.protocol import ProtocolError
from repro.serve.router import RouteError, Router
from repro.serve.server import (
    Request,
    Response,
    ServeConfig,
    ServerThread,
    YieldServer,
    run_server,
)

__all__ = [
    "AdmissionController",
    "Coalescer",
    "Flight",
    "ProtocolError",
    "RejectedError",
    "Request",
    "Response",
    "RouteError",
    "Router",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "SimulationBatcher",
    "YieldServer",
    "run_server",
]
