"""Admission control: bounded queues with per-client fairness.

Compute-requiring requests must acquire a slot before they may schedule
work on the engine. The controller holds ``max_active`` concurrent
slots; beyond that, requests wait in per-client FIFO queues that are
drained **round-robin across clients**, so one client flooding the
service delays its own queue, not everyone's. Two rejection modes:

* a client exceeding its own queue bound is told to back off — HTTP 429;
* a full server-wide queue is genuine overload — HTTP 503.

Warm (cache-answerable) requests bypass admission entirely; they cost a
store read, not a pool dispatch.

Everything runs on the server's event loop — no locks, the loop is the
serialization point.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from repro.core.errors import ReproError
from repro.obs.metrics import MetricsRegistry

__all__ = ["AdmissionController", "RejectedError"]


class RejectedError(ReproError):
    """The controller refused a request (carries the HTTP status)."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


class AdmissionController:
    """Bounded, client-fair admission to the compute path.

    Parameters
    ----------
    max_active:
        Concurrent admitted requests (compute slots).
    max_queued:
        Server-wide bound on waiting requests; beyond it → 503.
    max_per_client:
        Per-client bound on waiting requests; beyond it → 429.
    registry:
        Metrics registry receiving ``serve.admit.*`` counters and the
        ``serve.active`` / ``serve.queued`` gauges.
    """

    def __init__(
        self,
        max_active: int = 8,
        max_queued: int = 64,
        max_per_client: int = 16,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.max_active = max_active
        self.max_queued = max_queued
        self.max_per_client = max_per_client
        self.registry = registry if registry is not None else MetricsRegistry()
        self.active = 0
        self.queued = 0
        # client id -> FIFO of waiter futures; OrderedDict gives us the
        # round-robin rotation (move_to_end after each grant).
        self._waiters: "OrderedDict[str, Deque[asyncio.Future]]" = OrderedDict()

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        self.registry.counter(name).inc()

    def _gauges(self) -> None:
        self.registry.gauge("serve.active").set(self.active)
        self.registry.gauge("serve.queued").set(self.queued)

    def queue_depth(self, client: str) -> int:
        """How many requests ``client`` currently has waiting."""
        queue = self._waiters.get(client)
        return len(queue) if queue else 0

    # ------------------------------------------------------------------
    async def acquire(self, client: str) -> None:
        """Wait for a slot, or raise :class:`RejectedError` (429/503)."""
        if self.active < self.max_active and not self._waiters:
            self.active += 1
            self._count("serve.admit.accepted")
            self._gauges()
            return
        if self.queued >= self.max_queued:
            self._count("serve.admit.rejected_503")
            raise RejectedError(
                503, f"server queue full ({self.max_queued} waiting)"
            )
        if self.queue_depth(client) >= self.max_per_client:
            self._count("serve.admit.rejected_429")
            raise RejectedError(
                429,
                f"client {client!r} has {self.max_per_client} requests "
                "queued; back off",
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.setdefault(client, deque()).append(waiter)
        self.queued += 1
        self._gauges()
        enqueued = time.perf_counter()
        try:
            await waiter
        except asyncio.CancelledError:
            # The client went away while queued: withdraw, and if the
            # grant already landed, pass the slot on.
            queue = self._waiters.get(client)
            if queue is not None and waiter in queue:
                queue.remove(waiter)
                if not queue:
                    self._waiters.pop(client, None)
                self.queued -= 1
            if waiter.cancelled() is False and waiter.done():
                self.active -= 1
                self._grant_next()
            self._gauges()
            raise
        self._count("serve.admit.accepted")
        self.registry.histogram("serve.queue_wait_seconds").observe(
            time.perf_counter() - enqueued
        )
        self._gauges()

    def release(self) -> None:
        """Return a slot and hand it to the next queued client (RR)."""
        self.active -= 1
        self._grant_next()
        self._gauges()

    def _grant_next(self) -> None:
        while self._waiters and self.active < self.max_active:
            client, queue = next(iter(self._waiters.items()))
            waiter = queue.popleft()
            self.queued -= 1
            if not queue:
                self._waiters.pop(client)
            else:
                self._waiters.move_to_end(client)
            if waiter.cancelled():
                continue
            self.active += 1
            waiter.set_result(None)
