"""Method/path routing for the serve HTTP surface.

A deliberately small router: exact-path matching over a handful of
endpoints, returning 404 for unknown paths and 405 (with ``Allow``) for
known paths asked with the wrong method. Handlers are coroutine
functions ``handler(server, request)`` returning a
:class:`~repro.serve.server.Response`.
"""

from __future__ import annotations

from typing import Awaitable, Callable, Dict, List, Optional, Tuple

__all__ = ["Router", "RouteError"]

Handler = Callable[..., Awaitable[object]]


class RouteError(Exception):
    """No handler for this request (carries status and detail)."""

    def __init__(self, status: int, reason: str, allow: Optional[List[str]] = None):
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.allow = allow or []


class Router:
    """Exact-match request routing table."""

    def __init__(self) -> None:
        self._routes: Dict[str, Dict[str, Handler]] = {}

    def add(self, method: str, path: str, handler: Handler) -> None:
        """Register ``handler`` for ``method path``."""
        self._routes.setdefault(path, {})[method.upper()] = handler

    def known(self, path: str) -> bool:
        """Is ``path`` a registered endpoint (any method)?

        The rollup layer uses this to keep its per-endpoint series
        bounded: unknown paths collapse to one synthetic endpoint
        instead of letting a scanner mint unbounded label values.
        """
        return path in self._routes

    def routes(self) -> List[Tuple[str, str]]:
        """Every registered (method, path), sorted — for docs/healthz."""
        return sorted(
            (method, path)
            for path, methods in self._routes.items()
            for method in methods
        )

    def resolve(self, method: str, path: str) -> Handler:
        """The handler for ``method path``; raises :class:`RouteError`."""
        methods = self._routes.get(path)
        if methods is None:
            raise RouteError(404, f"no such endpoint: {path}")
        handler = methods.get(method.upper())
        if handler is None:
            raise RouteError(
                405,
                f"{method} not allowed on {path}",
                allow=sorted(methods),
            )
        return handler
