"""The yield-analysis service: a stdlib asyncio HTTP/1.1 server.

``repro serve`` turns the engine into a long-running scheduler behind an
HTTP/JSON API. The request path composes the rest of this package:

1. **Routing** (:mod:`repro.serve.router`) — exact method/path table.
2. **Warm classification** — every query is keyed by its deterministic
   job identity; :meth:`Engine.has_cached` decides (memo check + store
   file existence, no decode) whether the request is answerable without
   compute. Warm requests bypass admission entirely.
3. **Admission** (:mod:`repro.serve.admission`) — cold requests acquire
   a compute slot or are told 429/503; per-client round-robin keeps one
   flooding client from starving the rest.
4. **Coalescing** (:mod:`repro.serve.coalescer`) — concurrent identical
   queries share one flight and one computation.
5. **Batching** (:mod:`repro.serve.batcher`) — compatible simulation
   jobs landing within the batch window ride one pool dispatch.
6. **Observability** — every request runs inside a ``serve.request``
   trace span (the existing JSONL format) carrying a request id that is
   echoed back as ``X-Repro-Request-Id``, recorded into the rolling
   window rollup (:mod:`repro.obs.rollup`), retained in a bounded span
   ring (``GET /debug/traces``) and optionally appended to a JSONL
   request log. ``/metrics`` is content-negotiated: JSON for
   ``Accept: application/json`` (registry snapshots + the rollup),
   Prometheus text exposition otherwise; ``/healthz`` reports
   engine/store/cache/admission state; ``/dashboard`` serves a
   self-contained live HTML dashboard; a /proc resource sampler runs
   for the server's lifetime.

Progress streams as chunked ``application/x-ndjson``: one JSON object
per line (``accepted``, ``progress``, ``result`` / ``error`` events).

Graceful shutdown: SIGTERM/SIGINT stops the listener, refuses new work
with 503, lets every in-flight flight settle (bounded by
``drain_timeout``), then exits — a supervisor can roll the service
without dropping accepted jobs.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.engine.store import canonical_json
from repro.obs.promtext import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.obs.promtext import render_exposition
from repro.obs.reqlog import RequestLog, SpanRing, new_request_id
from repro.obs.rollup import RequestRollup
from repro.obs.sampler import ResourceSampler
from repro.obs.trace import span as trace_span
from repro.serve.admission import AdmissionController, RejectedError
from repro.serve.batcher import SimulationBatcher
from repro.serve.coalescer import Coalescer, Flight
from repro.serve.protocol import (
    ProtocolError,
    estimate_payload,
    experiment_payload,
    parse_estimate,
    parse_experiment,
    parse_population,
    parse_simulation,
    population_payload,
    simulation_payload,
)
from repro.serve.router import RouteError, Router

__all__ = ["ServeConfig", "Request", "Response", "YieldServer",
           "ServerThread", "run_server"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of the service (see the CLI's ``repro serve``)."""

    host: str = "127.0.0.1"
    port: int = 8787
    max_active: int = 8
    max_queued: int = 64
    max_per_client: int = 16
    batch_window: float = 0.01
    drain_timeout: float = 30.0
    body_limit: int = 1 << 20
    keepalive_timeout: float = 75.0
    window_seconds: float = 10.0
    window_count: int = 6
    request_log: Optional[str] = None
    dashboard: bool = True
    trace_ring: int = 256
    sampler_interval: float = 1.0


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body", "client",
                 "request_id", "disposition")

    def __init__(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        client: str,
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.client = client
        self.request_id = new_request_id()
        # Filled in along the compute path (warm/coalesced/batched) and
        # consumed by the rollup middleware when the response settles.
        self.disposition: Dict[str, bool] = {}

    def json(self) -> object:
        """The JSON body (an empty body parses as ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError:
            raise ProtocolError("request body is not valid JSON") from None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


class Response:
    """A response: JSON payload, raw body, or a stream of NDJSON events."""

    __slots__ = ("status", "payload", "stream", "body", "content_type",
                 "headers", "request_id")

    def __init__(
        self,
        status: int = 200,
        payload: Optional[dict] = None,
        stream: Optional[AsyncIterator[dict]] = None,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.payload = payload
        self.stream = stream
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}
        self.request_id: Optional[str] = None

    @staticmethod
    def error(
        status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> "Response":
        return Response(
            status, {"error": message, "status": status}, headers=headers
        )

    @staticmethod
    def text(
        status: int, body: str, content_type: str = "text/plain; charset=utf-8"
    ) -> "Response":
        return Response(
            status, body=body.encode("utf-8"), content_type=content_type
        )


class _BadRequest(Exception):
    """Malformed HTTP framing (connection-fatal)."""


class YieldServer:
    """Long-running yield-analysis service over one :class:`Engine`."""

    def __init__(self, engine, config: Optional[ServeConfig] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.metrics = engine.metrics
        self.admission = AdmissionController(
            max_active=self.config.max_active,
            max_queued=self.config.max_queued,
            max_per_client=self.config.max_per_client,
            registry=self.metrics,
        )
        self.coalescer = Coalescer(registry=self.metrics)
        self.batcher = SimulationBatcher(
            engine, window=self.config.batch_window, registry=self.metrics
        )
        self.rollup = RequestRollup(
            window_seconds=self.config.window_seconds,
            windows=self.config.window_count,
        )
        self.span_ring = SpanRing(capacity=self.config.trace_ring)
        self.request_log: Optional[RequestLog] = (
            RequestLog(self.config.request_log)
            if self.config.request_log else None
        )
        self.sampler = ResourceSampler(
            registry=self.metrics, interval=self.config.sampler_interval
        )
        self.router = Router()
        self.router.add("GET", "/healthz", _handle_healthz)
        self.router.add("GET", "/metrics", _handle_metrics)
        self.router.add("GET", "/debug/traces", _handle_debug_traces)
        if self.config.dashboard:
            self.router.add("GET", "/dashboard", _handle_dashboard)
        self.router.add("POST", "/v1/population", _handle_population)
        self.router.add("POST", "/v1/estimate", _handle_estimate)
        self.router.add("POST", "/v1/simulate", _handle_simulate)
        self.router.add("POST", "/v1/experiment", _handle_experiment)
        self.draining = False
        self.started = 0.0
        self.host = self.config.host
        self.port = self.config.port
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = asyncio.Event()
        self._connections: set = set()
        self._shutdown_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        name = self._server.sockets[0].getsockname()
        self.host, self.port = name[0], name[1]
        self.started = time.time()
        # The /proc sampler runs for the server's whole life so the
        # RSS/CPU gauges on /metrics and /dashboard are always current;
        # shutdown() stops the thread before the loop is released.
        self.sampler.start()
        return self.host, self.port

    async def wait_closed(self) -> None:
        """Block until a shutdown completes."""
        await self._closed.wait()

    def request_shutdown(self) -> None:
        """Idempotently begin a graceful drain (signal-handler safe)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight jobs, then release the loop."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._drain(), timeout=self.config.drain_timeout
            )
        except asyncio.TimeoutError:
            self.metrics.counter("serve.drain.timeout").inc()
        # Whatever connections remain are idle keep-alives: cut them.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        # Stop the sampler thread *after* the drain (its gauges stay live
        # for late /metrics scrapes) but before releasing the loop, so no
        # thread outlives the server and no gauge writes land afterwards.
        self.sampler.stop()
        if self.request_log is not None:
            self.request_log.close()
        self._closed.set()

    async def _drain(self) -> None:
        """Wait out accepted work: admission queues, batches, flights."""
        while (
            self.admission.active
            or self.admission.queued
            or self.coalescer.flight_count()
            or self.batcher.pending()
        ):
            await self.batcher.flush_all()
            await self.coalescer.drain()
            await asyncio.sleep(0.02)
        # Let drained handlers write their final responses out.
        await asyncio.sleep(0.05)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, TimeoutError, OSError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else str(peer)
        while True:
            try:
                request = await self._read_request(reader, peer_host)
            except _BadRequest as exc:
                await self._write_json(
                    writer, Response.error(400, str(exc)), keep_alive=False
                )
                return
            except asyncio.TimeoutError:
                return
            if request is None:
                return
            response = await self._dispatch(request)
            keep_alive = (
                request.keep_alive
                and not self.draining
                and response.stream is None
            )
            if response.stream is not None:
                await self._write_stream(writer, response)
                return
            await self._write_json(writer, response, keep_alive=keep_alive)
            if not keep_alive:
                return

    async def _read_request(self, reader, peer_host: str) -> Optional[Request]:
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.keepalive_timeout
            )
        except asyncio.IncompleteReadError:
            return None
        except ValueError:  # request line beyond the stream limit
            raise _BadRequest("request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _BadRequest("malformed request line")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except asyncio.IncompleteReadError:
                raise _BadRequest("truncated headers") from None
            except ValueError:
                raise _BadRequest("header line too long") from None
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _BadRequest("truncated headers")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line {raw!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if length < 0 or length > self.config.body_limit:
            raise _BadRequest(
                f"body too large ({length} > {self.config.body_limit} bytes)"
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _BadRequest("truncated body") from None
        path = target.partition("?")[0]
        client = headers.get("x-repro-client", peer_host)
        return Request(method, path, headers, body, client)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> Response:
        self.metrics.counter("serve.requests").inc()
        start = time.perf_counter()
        wall = time.time()
        with trace_span(
            "serve.request",
            method=request.method,
            path=request.path,
            client=request.client,
            request_id=request.request_id,
        ) as sp:
            response = await self._route(request)
            sp.set(status=response.status)
        elapsed = time.perf_counter() - start
        self.metrics.histogram("serve.request_seconds").observe(elapsed)
        self.metrics.counter(f"serve.responses.{response.status}").inc()
        self._observe(request, response, elapsed, wall)
        response.request_id = request.request_id
        return response

    def _observe(
        self, request: Request, response: Response,
        elapsed: float, wall: float,
    ) -> None:
        """Rollup + span ring + request log for one finished request.

        Unknown paths collapse into one ``<other>`` endpoint so a port
        scanner cannot mint unbounded rollup series.
        """
        endpoint = (
            request.path if self.router.known(request.path) else "<other>"
        )
        disposition = request.disposition
        self.rollup.record(
            endpoint,
            response.status,
            elapsed,
            warm=disposition.get("warm", False),
            coalesced=disposition.get("coalesced", False),
            batched=disposition.get("batched", False),
        )
        record = {
            "name": "serve.request",
            "request_id": request.request_id,
            "ts": wall,
            "dur": elapsed,
            "attrs": {
                "method": request.method,
                "path": request.path,
                "client": request.client,
                "status": response.status,
                **{flag: True for flag, on in disposition.items() if on},
            },
        }
        self.span_ring.append(record)
        if self.request_log is not None:
            self.request_log.record({
                "request_id": request.request_id,
                "ts": round(wall, 6),
                "client": request.client,
                "method": request.method,
                "path": request.path,
                "status": response.status,
                "seconds": round(elapsed, 6),
                "warm": disposition.get("warm", False),
                "coalesced": disposition.get("coalesced", False),
                "batched": disposition.get("batched", False),
            })

    async def _route(self, request: Request) -> Response:
        if self.draining and request.path not in (
            "/healthz", "/metrics", "/debug/traces", "/dashboard"
        ):
            return Response.error(503, "draining")
        try:
            handler = self.router.resolve(request.method, request.path)
        except RouteError as exc:
            headers = (
                {"Allow": ", ".join(exc.allow)} if exc.allow else None
            )
            return Response.error(exc.status, exc.reason, headers=headers)
        try:
            return await handler(self, request)
        except ProtocolError as exc:
            return Response.error(400, str(exc))
        except RejectedError as exc:
            return Response.error(exc.status, exc.reason)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.metrics.counter("serve.errors").inc()
            return Response.error(500, f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------
    async def _write_json(
        self, writer, response: Response, keep_alive: bool
    ) -> None:
        if response.body is not None:
            body = response.body
            content_type = response.content_type
        else:
            body = canonical_json(response.payload).encode("utf-8")
            content_type = "application/json"
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in response.headers.items()
        )
        if response.request_id:
            extra += f"X-Repro-Request-Id: {response.request_id}\r\n"
        head = (
            f"HTTP/1.1 {response.status} "
            f"{_REASONS.get(response.status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _write_stream(self, writer, response: Response) -> None:
        head = (
            f"HTTP/1.1 {response.status} "
            f"{_REASONS.get(response.status, 'Unknown')}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        try:
            async for event in response.stream:
                data = (canonical_json(event) + "\n").encode("utf-8")
                writer.write(
                    f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"
                )
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            # Run the generator's cleanup now (admission release), not
            # whenever the GC gets to it.
            await response.stream.aclose()

    # ------------------------------------------------------------------
    # shared compute plumbing (used by the endpoint handlers)
    # ------------------------------------------------------------------
    async def _admitted(self, key: str, kind: str, request: Request) -> bool:
        """Acquire a compute slot when this request needs one.

        Warm queries (cache-answerable) and joiners of an existing
        flight don't add compute, so they bypass admission; returns
        whether a slot was actually acquired (and must be released).
        Annotates the request's disposition for the rollup middleware.
        """
        if self.coalescer.get(key) is not None:
            request.disposition["coalesced"] = True
            return False
        if self.engine.has_cached(kind, key):
            self.metrics.counter("serve.request.warm").inc()
            request.disposition["warm"] = True
            return False
        self.metrics.counter("serve.request.cold").inc()
        await self.admission.acquire(request.client)
        return True

    async def _run_flight(self, key: str, kind: str, request: Request, start):
        held = await self._admitted(key, kind, request)
        try:
            return await self.coalescer.run(key, start)
        finally:
            if held:
                self.admission.release()

    def _stream_flight(
        self, key: str, kind: str, request: Request, start, payload,
        held: bool,
    ) -> AsyncIterator[dict]:
        """NDJSON event stream for one job (accepted → progress → result).

        Admission (``held``) was acquired by the handler *before* the
        200 header went out, so an overloaded server still rejects the
        request with a plain 429/503 response; the slot is released when
        the stream finishes (or the client goes away).
        """

        async def events() -> AsyncIterator[dict]:
            try:
                flights: List[Flight] = []
                task = asyncio.get_running_loop().create_task(
                    self.coalescer.run(key, start, flight_out=flights)
                )
                await asyncio.sleep(0)  # let the flight register
                flight = flights[0] if flights else None
                queue = (
                    flight.subscribe()
                    if flight is not None and not flight.done.is_set()
                    else None
                )
                yield {
                    "event": "accepted",
                    "key": key,
                    "kind": kind,
                    "coalesced": flight is not None and flight.waiters > 1,
                }
                if queue is not None:
                    while True:
                        event = await queue.get()
                        if event.get("event") == "done":
                            break
                        yield event
                try:
                    result = await task
                except Exception as exc:
                    yield {"event": "error", "status": 500,
                           "error": f"{type(exc).__name__}: {exc}"}
                    return
                yield {"event": "result", "payload": payload(result)}
            finally:
                if held:
                    self.admission.release()

        return events()

    def _progress_publisher(self, flight: Flight):
        """A thread-safe ``progress(done, total)`` that feeds the flight."""
        loop = asyncio.get_running_loop()

        def progress(done: int, total: int) -> None:
            loop.call_soon_threadsafe(
                flight.publish,
                {"event": "progress", "done": done, "total": total},
            )

        return progress


# ----------------------------------------------------------------------
# endpoint handlers
# ----------------------------------------------------------------------
async def _handle_healthz(server: YieldServer, request: Request) -> Response:
    from repro.workloads.compiled import trace_cache_info

    store = server.engine.store
    counters = server.engine.metrics
    return Response(200, {
        "status": "draining" if server.draining else "ok",
        "pid": os.getpid(),
        "uptime_seconds": round(time.time() - server.started, 3),
        "engine": {
            "workers": server.engine.config.workers,
            "inflight": server.engine.inflight_count(),
        },
        "store": store.info() if store is not None else None,
        "compiled_traces": trace_cache_info(),
        "admission": {
            "active": server.admission.active,
            "queued": server.admission.queued,
            "max_active": server.admission.max_active,
            "max_queued": server.admission.max_queued,
        },
        "flights": server.coalescer.flight_count(),
        "batch_pending": server.batcher.pending(),
        "requests": {
            "total": counters.counter("serve.requests").value,
            "warm": counters.counter("serve.request.warm").value,
            "cold": counters.counter("serve.request.cold").value,
            "windowed": server.rollup.recorded(),
        },
        "request_log": (
            server.request_log.stats()
            if server.request_log is not None else None
        ),
    })


def _metrics_payload(server: YieldServer) -> dict:
    """The JSON form of /metrics (also the dashboard's data source)."""
    from repro.obs.metrics import get_metrics

    return {
        "engine": server.engine.metrics.snapshot(),
        "process": get_metrics().snapshot(),
        "rollup": server.rollup.snapshot(),
        "server": {
            "draining": server.draining,
            "uptime_seconds": round(time.time() - server.started, 3),
        },
    }


async def _handle_metrics(server: YieldServer, request: Request) -> Response:
    from repro.obs.metrics import get_metrics

    accept = request.headers.get("accept", "")
    if "application/json" in accept.lower():
        return Response(200, _metrics_payload(server))
    # Default (and anything Prometheus-shaped): text exposition. The
    # engine registry leads so its instruments win name collisions with
    # the process-wide one.
    text = render_exposition(
        [
            ("engine", server.engine.metrics.snapshot()),
            ("process", get_metrics().snapshot()),
        ],
        rollup=server.rollup.snapshot(),
        extra_gauges={
            "serve.uptime_seconds": time.time() - server.started,
            "serve.draining": 1.0 if server.draining else 0.0,
            "serve.connections": float(len(server._connections)),
            "serve.flights": float(server.coalescer.flight_count()),
        },
    )
    return Response.text(200, text, content_type=PROM_CONTENT_TYPE)


async def _handle_debug_traces(
    server: YieldServer, request: Request
) -> Response:
    return Response(200, server.span_ring.snapshot())


async def _handle_dashboard(server: YieldServer, request: Request) -> Response:
    from repro.obs.dashboard import dashboard_html

    return Response.text(
        200,
        dashboard_html(_metrics_payload(server)),
        content_type="text/html; charset=utf-8",
    )


async def _handle_population(server: YieldServer, request: Request) -> Response:
    query = parse_population(request.json())

    async def start(flight: Flight):
        future = server.engine.submit_population(
            query.settings, query.policy,
            progress=server._progress_publisher(flight),
        )
        return await asyncio.wrap_future(future)

    def payload(result) -> dict:
        return population_payload(result, query.detail)

    if query.stream:
        held = await server._admitted(query.key, "population", request)
        return Response(200, stream=server._stream_flight(
            query.key, "population", request, start, payload, held
        ))
    result = await server._run_flight(
        query.key, "population", request, start
    )
    return Response(200, payload(result))


async def _handle_estimate(server: YieldServer, request: Request) -> Response:
    query = parse_estimate(request.json())

    async def start(flight: Flight):
        future = server.engine.submit_estimate(
            query.settings, query.policy, estimator=query.spec,
            progress=server._progress_publisher(flight),
        )
        return await asyncio.wrap_future(future)

    if query.stream:
        held = await server._admitted(query.key, "estimate", request)
        return Response(200, stream=server._stream_flight(
            query.key, "estimate", request, start, estimate_payload, held
        ))
    result = await server._run_flight(query.key, "estimate", request, start)
    return Response(200, estimate_payload(result))


async def _handle_simulate(server: YieldServer, request: Request) -> Response:
    query = parse_simulation(request.json())

    async def start(flight: Flight):
        return await server.batcher.simulate(
            query.settings, query.spec,
            progress=server._progress_publisher(flight),
        )

    if query.stream:
        held = await server._admitted(query.key, "simulation", request)
        if held:
            request.disposition["batched"] = True
        return Response(200, stream=server._stream_flight(
            query.key, "simulation", request, start,
            simulation_payload, held,
        ))
    held = await server._admitted(query.key, "simulation", request)
    if held:
        request.disposition["batched"] = True
    try:
        result = await server.coalescer.run(query.key, start)
    finally:
        if held:
            server.admission.release()
    return Response(200, simulation_payload(result))


async def _handle_experiment(server: YieldServer, request: Request) -> Response:
    from repro.experiments import run_experiment

    query = parse_experiment(request.json())

    async def start(flight: Flight):
        return await asyncio.get_running_loop().run_in_executor(
            None, run_experiment, query.name, query.settings
        )

    result = await server._run_flight(
        query.key, "experiment", request, start
    )
    return Response(200, experiment_payload(result))


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
async def _amain(config: ServeConfig, engine=None, announce=None) -> None:
    from repro.engine import get_engine

    engine = engine if engine is not None else get_engine()
    server = YieldServer(engine, config)
    host, port = await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    if announce is not None:
        announce(server)
    await server.wait_closed()


def run_server(
    config: Optional[ServeConfig] = None, engine=None, announce=None
) -> None:
    """Run the service until SIGTERM/SIGINT completes a graceful drain.

    ``announce(server)`` (optional) is called once the socket is bound —
    the CLI prints the listening address through it.
    """
    asyncio.run(_amain(config or ServeConfig(), engine, announce))


class ServerThread:
    """A :class:`YieldServer` on a background thread (tests, benchmarks).

    Usage::

        thread = ServerThread(engine, ServeConfig(port=0))
        host, port = thread.start()
        ...
        thread.stop()
    """

    def __init__(self, engine, config: Optional[ServeConfig] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig(port=0)
        self.server: Optional[YieldServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start the server; returns the bound (host, port)."""
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        assert self.server is not None
        return self.server.host, self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain, then join the thread."""
        if self._loop is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(
                    lambda: self.server.request_shutdown()
                )
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(timeout)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._main())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        self.server = YieldServer(self.engine, self.config)
        await self.server.start()
        self._ready.set()
        await self.server.wait_closed()
