"""Wire protocol of the yield-analysis service.

Translates between JSON request bodies and the engine's native job
vocabulary (:class:`~repro.experiments.common.ExperimentSettings`,
simulation specs, constraint policies), and between native results and
JSON response payloads. Everything here is deterministic: the same query
always produces the same key and — via the engine's codecs, whose floats
round-trip exactly — the same payload bytes, which is what lets repeat
queries be answered from the warm store bit-identically.

A malformed body raises :class:`ProtocolError`, which the server maps to
a 400 with the message in the JSON error body.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.errors import ReproError
from repro.engine.codec import encode_population, encode_simulation
from repro.yieldmodel.constraints import ConstraintPolicy, PAPER_POLICIES

__all__ = [
    "ProtocolError",
    "EstimateQuery",
    "PopulationQuery",
    "SimulationQuery",
    "ExperimentQuery",
    "parse_estimate",
    "parse_population",
    "parse_simulation",
    "parse_experiment",
    "estimate_payload",
    "population_payload",
    "simulation_payload",
    "experiment_payload",
    "policy_by_name",
]

#: Named constraint policies a query may select.
POLICIES: Dict[str, ConstraintPolicy] = {p.name: p for p in PAPER_POLICIES}

#: Acceptable population detail levels.
DETAILS = ("summary", "full")


class ProtocolError(ReproError):
    """A request body the service cannot interpret (HTTP 400)."""


def policy_by_name(name: str) -> ConstraintPolicy:
    """The named paper policy, or a :class:`ProtocolError`."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ProtocolError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None


def _require_dict(body: object) -> dict:
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    return body


def _int_field(body: dict, name: str, default: Optional[int]) -> Optional[int]:
    value = body.get(name, default)
    if value is default:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {name!r} must be an integer")
    return value


def _settings_from(body: dict):
    """Build (validated) experiment settings from a request body."""
    from repro.experiments.common import ExperimentSettings

    defaults = ExperimentSettings()
    benchmarks = body.get("benchmarks")
    if benchmarks is not None:
        if not isinstance(benchmarks, list) or not all(
            isinstance(b, str) for b in benchmarks
        ):
            raise ProtocolError("field 'benchmarks' must be a list of strings")
        benchmarks = tuple(benchmarks)
    else:
        benchmarks = defaults.benchmarks
    try:
        return ExperimentSettings(
            seed=_int_field(body, "seed", defaults.seed),
            chips=_int_field(body, "chips", defaults.chips),
            trace_length=_int_field(body, "trace_length", defaults.trace_length),
            warmup=_int_field(body, "warmup", defaults.warmup),
            benchmarks=benchmarks,
        )
    except (ValueError, ReproError) as exc:
        raise ProtocolError(str(exc)) from None


class PopulationQuery:
    """One parsed population request."""

    __slots__ = ("settings", "policy", "detail", "stream", "key")

    def __init__(self, settings, policy, detail: str, stream: bool) -> None:
        from repro.engine.core import Engine

        self.settings = settings
        self.policy = policy
        self.detail = detail
        self.stream = stream
        self.key = Engine.population_key(settings, policy)


class SimulationQuery:
    """One parsed simulation request."""

    __slots__ = ("settings", "spec", "stream", "key")

    def __init__(self, settings, spec, stream: bool) -> None:
        from repro.engine.core import Engine

        self.settings = settings
        self.spec = spec
        self.stream = stream
        self.key = Engine.simulation_key(settings, spec)


class EstimateQuery:
    """One parsed yield-estimate request."""

    __slots__ = ("settings", "policy", "spec", "stream", "key")

    def __init__(self, settings, policy, spec, stream: bool) -> None:
        from repro.engine.core import Engine

        self.settings = settings
        self.policy = policy
        self.spec = spec
        self.stream = stream
        self.key = Engine.estimate_key(settings, policy, spec)


class ExperimentQuery:
    """One parsed experiment request."""

    __slots__ = ("name", "settings", "key")

    def __init__(self, name: str, settings) -> None:
        from repro.obs.provenance import config_hash

        self.name = name
        self.settings = settings
        self.key = "experiment:" + config_hash(
            {
                "name": name,
                "seed": settings.seed,
                "chips": settings.chips,
                "trace_length": settings.trace_length,
                "warmup": settings.warmup,
                "benchmarks": (
                    list(settings.benchmarks)
                    if settings.benchmarks is not None
                    else None
                ),
            }
        )


def parse_population(body: object) -> PopulationQuery:
    """Parse a ``POST /v1/population`` body."""
    body = _require_dict(body)
    policy = policy_by_name(str(body.get("policy", "nominal")))
    detail = str(body.get("detail", "summary"))
    if detail not in DETAILS:
        raise ProtocolError(f"field 'detail' must be one of {DETAILS}")
    return PopulationQuery(
        settings=_settings_from(body),
        policy=policy,
        detail=detail,
        stream=bool(body.get("stream", False)),
    )


def parse_simulation(body: object) -> SimulationQuery:
    """Parse a ``POST /v1/simulate`` body."""
    body = _require_dict(body)
    benchmark = body.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise ProtocolError("field 'benchmark' (string) is required")
    way_cycles = body.get("way_cycles")
    if way_cycles is not None:
        if not isinstance(way_cycles, list) or not all(
            entry is None or (isinstance(entry, int) and not isinstance(entry, bool))
            for entry in way_cycles
        ):
            raise ProtocolError(
                "field 'way_cycles' must be a list of integers / nulls"
            )
        way_cycles = tuple(way_cycles)
    uniform_latency = _int_field(body, "uniform_latency", None)
    settings = _settings_from(body)
    from repro.workloads import get_profile

    try:
        get_profile(benchmark)
    except ReproError as exc:
        raise ProtocolError(str(exc)) from None
    return SimulationQuery(
        settings=settings,
        spec=(benchmark, way_cycles, uniform_latency),
        stream=bool(body.get("stream", False)),
    )


def parse_estimate(body: object) -> EstimateQuery:
    """Parse a ``POST /v1/estimate`` body.

    The optional ``estimator`` object carries the spec fields
    (``kind``, ``ci_target``, ``pilot_chips``, ...); its identity joins
    the job key, so warm repeats of the same spec are byte-identical.
    """
    from repro.yieldmodel.estimators import EstimatorSpec

    body = _require_dict(body)
    policy = policy_by_name(str(body.get("policy", "nominal")))
    try:
        spec = EstimatorSpec.from_payload(body.get("estimator", {}))
    except ReproError as exc:
        raise ProtocolError(str(exc)) from None
    return EstimateQuery(
        settings=_settings_from(body),
        policy=policy,
        spec=spec,
        stream=bool(body.get("stream", False)),
    )


def parse_experiment(body: object) -> ExperimentQuery:
    """Parse a ``POST /v1/experiment`` body."""
    from repro.experiments import available_experiments

    body = _require_dict(body)
    name = body.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("field 'name' (string) is required")
    if name not in available_experiments():
        raise ProtocolError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        )
    return ExperimentQuery(name=name, settings=_settings_from(body))


# ----------------------------------------------------------------------
# response payloads
# ----------------------------------------------------------------------
def population_payload(result, detail: str = "summary") -> dict:
    """JSON payload for a population result.

    ``summary`` reports per-architecture base yield and the loss-reason
    histogram (the cheap, dashboard-shaped view); ``full`` embeds the
    complete store codec payload — bit-identical to what a direct
    :meth:`Engine.population` call would encode.
    """
    if detail == "full":
        return {"kind": "population", "detail": "full",
                "result": encode_population(result)}
    summary: Dict[str, object] = {
        "kind": "population",
        "detail": "summary",
        "population": result.population,
        "policy": result.policy.name,
        "constraints": {
            "delay_limit": result.constraints.delay_limit,
            "leakage_limit": result.constraints.leakage_limit,
        },
    }
    for label, horizontal in (("regular", False), ("horizontal", True)):
        breakdown = result.breakdown([], horizontal=horizontal)
        summary[label] = {
            "base_yield": breakdown.yield_with(None),
            "losses": {
                reason.name.lower(): count
                for reason, count in sorted(
                    breakdown.base_counts.items(), key=lambda kv: kv[0].name
                )
            },
        }
    return summary


def estimate_payload(report) -> dict:
    """JSON payload for one yield estimate (the store codec's shape)."""
    from repro.engine.codec import encode_estimate

    return {"kind": "estimate", "result": encode_estimate(report)}


def simulation_payload(result) -> dict:
    """JSON payload for one simulation result (the store codec's shape)."""
    return {"kind": "simulation", "result": encode_simulation(result)}


def experiment_payload(result) -> dict:
    """JSON payload for one experiment result (rows plus rendered text)."""
    return {
        "kind": "experiment",
        "experiment": result.experiment,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
        "text": result.text,
    }
