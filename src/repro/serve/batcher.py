"""Micro-batching of compatible simulation jobs.

Simulation requests that share the same settings identity (seed, trace
length, warmup) are *compatible*: the engine can run any number of them
through one :meth:`Engine.simulate_many` call — and so one pool
dispatch. The batcher holds each arriving request for a short window
(default 10 ms); everything compatible that lands inside the window
rides the same dispatch. Under a bursty sweep this turns N near-
simultaneous requests into one trip through the process pool; under
light load it costs at most the window.

Per-spec deduplication happens beneath us in
:meth:`Engine.submit_simulations` (its in-flight table), so a batch may
even contain duplicates — they collapse onto one future.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["SimulationBatcher"]


class _Bucket:
    """Requests sharing one settings identity, awaiting the next flush."""

    __slots__ = ("settings", "entries", "handle")

    def __init__(self, settings) -> None:
        self.settings = settings
        #: (spec, future, progress callback or None) per request.
        self.entries: List[Tuple[object, asyncio.Future, Optional[Callable]]] = []
        self.handle: Optional[asyncio.TimerHandle] = None


class SimulationBatcher:
    """Groups simulation requests into single engine dispatches."""

    def __init__(
        self,
        engine,
        window: float = 0.01,
        max_batch: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.window = window
        self.max_batch = max_batch
        self.registry = (
            registry if registry is not None else engine.metrics
        )
        self._buckets: Dict[str, _Bucket] = {}
        self._pending = 0

    def pending(self) -> int:
        """Requests currently waiting for a flush."""
        return self._pending

    @staticmethod
    def _settings_key(settings) -> str:
        return (
            f"{settings.seed}:{settings.trace_length}:{settings.warmup}"
        )

    async def simulate(
        self,
        settings,
        spec,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        """One simulation result, batched with compatible neighbours."""
        loop = asyncio.get_running_loop()
        key = self._settings_key(settings)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(settings)
        future: asyncio.Future = loop.create_future()
        bucket.entries.append((spec, future, progress))
        self._pending += 1
        self.registry.gauge("serve.batch.pending").set(self._pending)
        if len(bucket.entries) >= self.max_batch:
            self._flush(key)
        elif bucket.handle is None:
            bucket.handle = loop.call_later(self.window, self._flush, key)
        try:
            return await future
        finally:
            self._pending -= 1
            self.registry.gauge("serve.batch.pending").set(self._pending)

    async def flush_all(self) -> None:
        """Dispatch every waiting bucket now (drain path)."""
        for key in list(self._buckets):
            self._flush(key)
        # Futures resolve via call_soon_threadsafe; yield until none wait.
        while self._pending:
            await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    def _flush(self, key: str) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None or not bucket.entries:
            return
        if bucket.handle is not None:
            bucket.handle.cancel()
        loop = asyncio.get_running_loop()
        specs = [spec for spec, _, _ in bucket.entries]
        callbacks = [cb for _, _, cb in bucket.entries if cb is not None]

        def progress(done: int, total: int) -> None:
            for callback in callbacks:
                callback(done, total)

        self.registry.counter("serve.batch.dispatches").inc()
        self.registry.counter("serve.batch.jobs").inc(len(specs))
        self.registry.histogram(
            "serve.batch.size", bounds=(1, 2, 4, 8, 16, 32, 64, 128)
        ).observe(len(specs))
        # How full the last dispatched batch was relative to max_batch —
        # a live proxy for whether the window is catching bursts.
        self.registry.gauge("serve.batch.fill_ratio").set(
            len(specs) / self.max_batch
        )
        futures = self.engine.submit_simulations(
            bucket.settings, specs, progress=progress if callbacks else None
        )
        for (_, waiter, _), engine_future in zip(bucket.entries, futures):
            engine_future.add_done_callback(
                lambda ef, w=waiter: loop.call_soon_threadsafe(
                    self._resolve, w, ef
                )
            )

    @staticmethod
    def _resolve(waiter: asyncio.Future, engine_future) -> None:
        if waiter.cancelled():
            return
        error = engine_future.exception()
        if error is not None:
            waiter.set_exception(error)
        else:
            waiter.set_result(engine_future.result())
