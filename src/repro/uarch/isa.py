"""Operation classes of the trace ISA.

The simulator is trace-driven; instructions carry an operation class that
determines which functional unit executes them and with what latency. The
classes and latencies follow SimpleScalar's defaults for a 4-wide core.
"""

from __future__ import annotations

import enum
from typing import Dict

__all__ = ["OpClass", "FU_LATENCIES", "FU_KIND", "MEMORY_OPS"]


class OpClass(enum.Enum):
    """Dynamic operation classes."""

    IALU = "int-alu"
    IMULT = "int-mult"
    FALU = "fp-alu"
    FMULT = "fp-mult"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


#: Execute latency (cycles) per class. Loads add the cache latency on top
#: of their address-generation cycle; stores retire through the store
#: buffer after one cycle.
FU_LATENCIES: Dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMULT: 3,
    OpClass.FALU: 2,
    OpClass.FMULT: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}

#: Functional-unit pool each class issues to (pool sizes live in
#: :class:`repro.uarch.config.CoreConfig`).
FU_KIND: Dict[OpClass, str] = {
    OpClass.IALU: "ialu",
    OpClass.IMULT: "imult",
    OpClass.FALU: "falu",
    OpClass.FMULT: "fmult",
    OpClass.LOAD: "mem",
    OpClass.STORE: "mem",
    OpClass.BRANCH: "ialu",
}

#: Classes that touch the data memory hierarchy.
MEMORY_OPS = frozenset({OpClass.LOAD, OpClass.STORE})
