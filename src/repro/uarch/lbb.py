"""Load-bypass buffer accounting (paper Section 4.3, Figure 7).

The VACA hardware adds a small buffer at each functional-unit input. A
dependent that was scheduled assuming a 4-cycle load but whose load
resolves in 5 cycles waits in the buffer for one cycle and then executes;
the buffer compares the forwarded destination register against its stored
operand tag and latches the value — from the data cache or, for
transitively delayed instructions, from another functional unit.

For timing purposes what matters is (a) how many extra cycles one entry
can absorb (one), and (b) how often entries are occupied. This class
tracks per-cycle occupancy against the configured capacity so the
simulator can detect (rare) structural overflows and report utilisation.
"""

from __future__ import annotations

from typing import Dict

from repro.core.validation import require_non_negative, require_positive

__all__ = ["LoadBypassBuffers"]


class LoadBypassBuffers:
    """Occupancy tracker for the per-FU-input bypass buffers.

    Parameters
    ----------
    capacity:
        Total entries across all functional-unit inputs that may hold a
        stalled instruction in the same cycle. The paper's design has one
        entry per FU input operand; with ~8 FUs and two operand buffers
        each, 16 is the matching default.
    slack:
        Extra cycles one entry can absorb (single-entry buffers: 1).
    """

    __slots__ = (
        "capacity",
        "slack",
        "_occupancy",
        "total_stalls",
        "overflows",
        "peak",
    )

    def __init__(self, capacity: int = 16, slack: int = 1) -> None:
        require_positive(capacity, "capacity")
        require_non_negative(slack, "slack")
        self.capacity = capacity
        self.slack = slack
        self._occupancy: Dict[int, int] = {}
        self.total_stalls = 0
        self.overflows = 0
        self.peak = 0

    def try_hold(self, cycle: int, duration: int) -> bool:
        """Reserve one entry for ``duration`` cycles starting at ``cycle``.

        Returns False (an overflow: the instruction must replay instead)
        when every entry is already occupied in any of those cycles, or
        when the duration exceeds what one entry can absorb.
        """
        if duration > self.slack:
            return False
        cycles = range(cycle, cycle + duration)
        if any(self._occupancy.get(c, 0) >= self.capacity for c in cycles):
            self.overflows += 1
            return False
        for c in cycles:
            occupancy = self._occupancy.get(c, 0) + 1
            self._occupancy[c] = occupancy
            self.peak = max(self.peak, occupancy)
        self.total_stalls += 1
        return True

    def release_before(self, cycle: int) -> None:
        """Drop bookkeeping for cycles before ``cycle`` (memory hygiene)."""
        stale = [c for c in self._occupancy if c < cycle]
        for c in stale:
            del self._occupancy[c]
