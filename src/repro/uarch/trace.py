"""Dynamic instruction records for the trace-driven simulator.

A trace is any iterable of :class:`TraceInstruction`. Traces model the
*correct path* only (standard trace-driven practice): a mispredicted
branch is marked, and the pipeline charges the misprediction by stalling
fetch until the branch resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import TraceError
from repro.uarch.isa import OpClass, MEMORY_OPS

__all__ = ["TraceInstruction", "validate_trace", "count_classes"]

#: Number of architectural registers the traces may reference.
NUM_REGISTERS = 32


@dataclass(frozen=True)
class TraceInstruction:
    """One dynamic instruction.

    Attributes
    ----------
    op:
        Operation class.
    dest:
        Destination architectural register, or ``None`` (stores,
        branches).
    srcs:
        Source architectural registers (0-2).
    address:
        Data address for loads/stores, else ``None``.
    pc:
        Instruction address (drives the L1I model).
    mispredicted:
        For branches: whether the branch predictor missed.
    """

    op: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    address: Optional[int] = None
    pc: int = 0
    mispredicted: bool = False

    def __post_init__(self) -> None:
        if self.dest is not None and not 0 <= self.dest < NUM_REGISTERS:
            raise TraceError(f"dest register {self.dest} out of range")
        for src in self.srcs:
            if not 0 <= src < NUM_REGISTERS:
                raise TraceError(f"source register {src} out of range")
        if len(self.srcs) > 2:
            raise TraceError("at most two source registers are supported")
        if self.op in MEMORY_OPS and self.address is None:
            raise TraceError(f"{self.op.value} needs a data address")
        if self.op not in MEMORY_OPS and self.address is not None:
            raise TraceError(f"{self.op.value} must not carry a data address")
        if self.mispredicted and self.op is not OpClass.BRANCH:
            raise TraceError("only branches can be mispredicted")
        if self.op is OpClass.STORE and self.dest is not None:
            raise TraceError("stores do not write a register")


def validate_trace(trace: Iterable[TraceInstruction]) -> List[TraceInstruction]:
    """Materialise and validate a trace; raises :class:`TraceError`."""
    items = list(trace)
    if not items:
        raise TraceError("empty trace")
    return items


def count_classes(trace: Iterable[TraceInstruction]) -> dict:
    """Histogram of operation classes (useful in tests and reports)."""
    counts: dict = {}
    for instr in trace:
        counts[instr.op] = counts.get(instr.op, 0) + 1
    return counts
