"""Top-level simulator interface and results.

:class:`Simulator` wires a core configuration, a memory hierarchy (with a
yield-aware L1D way configuration) and a trace into the pipeline engine
and returns a :class:`SimResult` with CPI and the counters the paper's
performance experiments need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy, PAPER_HIERARCHY
from repro.cache.setassoc import WayConfig
from repro.core.errors import SimulationError
from repro.obs.metrics import get_metrics
from repro.obs.trace import span as trace_span
from repro.uarch.config import CoreConfig, PAPER_CORE
from repro.uarch.pipeline import PipelineEngine
from repro.uarch.trace import TraceInstruction

__all__ = ["SimResult", "Simulator"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    instructions:
        Committed instruction count.
    cycles:
        Total execution cycles.
    replays:
        Speculatively issued instructions squashed and reissued.
    lbb_stalls:
        Instructions that absorbed a late load in a load-bypass buffer.
    slow_way_hits:
        L1D hits served by a slower-than-predicted (5-cycle) way.
    branch_mispredicts:
        Mispredicted branches executed.
    loads, stores:
        Memory operations executed.
    hierarchy_stats:
        Flat cache counters (see ``MemoryHierarchy.statistics``).
    """

    instructions: int
    cycles: int
    replays: int
    lbb_stalls: int
    slow_way_hits: int
    branch_mispredicts: int
    loads: int
    stores: int
    hierarchy_stats: Dict[str, float]

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        if self.instructions == 0:
            raise SimulationError("no instructions committed")
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return 1.0 / self.cpi

    def degradation_vs(self, baseline: "SimResult") -> float:
        """Fractional CPI increase relative to ``baseline``."""
        return self.cpi / baseline.cpi - 1.0


class Simulator:
    """Convenience front door for one pipeline simulation.

    Parameters
    ----------
    core:
        Core configuration (defaults to the paper's 4-wide machine).
    hierarchy_config:
        Cache/memory parameters (defaults to the paper's Section 5.2).
    l1d_config:
        Yield-aware L1D way configuration (defaults to healthy).
    uniform_load_latency:
        Naive-binning latency override (Section 4.5), if any.
    """

    def __init__(
        self,
        core: CoreConfig = PAPER_CORE,
        hierarchy_config: HierarchyConfig = PAPER_HIERARCHY,
        l1d_config: Optional[WayConfig] = None,
        uniform_load_latency: Optional[int] = None,
    ) -> None:
        self.core = core
        self.hierarchy_config = hierarchy_config
        self.l1d_config = l1d_config
        self.uniform_load_latency = uniform_load_latency

    def run(
        self,
        trace: Iterable[TraceInstruction],
        warmup: int = 0,
    ) -> SimResult:
        """Simulate ``trace`` to completion and return the result.

        ``trace`` may be a plain iterable of :class:`TraceInstruction`
        or a :class:`repro.workloads.compiled.CompiledTrace`; a compiled
        trace replays through the pipeline's packed fast path under a
        ``ctrace.replay`` span, so flamegraphs attribute time to compile
        vs replay.

        ``warmup`` instructions are executed first to warm the caches;
        CPI and all counters cover only the instructions after them.
        """
        hierarchy = MemoryHierarchy(
            config=self.hierarchy_config,
            l1d_config=self.l1d_config,
            uniform_load_latency=self.uniform_load_latency,
        )
        engine = PipelineEngine(
            self.core, hierarchy, trace, warmup_instructions=warmup
        )
        compiled = getattr(trace, "is_compiled_trace", False)
        with trace_span("simulator.run", warmup=warmup) as sp:
            start = time.perf_counter()
            if compiled:
                with trace_span(
                    "ctrace.replay", instructions=trace.length
                ):
                    engine.run()
            else:
                engine.run()
            elapsed = time.perf_counter() - start
        if engine.committed <= warmup:
            raise SimulationError(
                "trace too short: nothing committed after warmup"
            )
        # Throughput instruments: visible via the process-wide registry
        # even when this runs inside a pool worker.
        metrics = get_metrics()
        metrics.counter("simulator.runs").inc()
        metrics.counter("simulator.instructions").inc(engine.committed)
        metrics.counter("simulator.cycles").inc(engine.cycle)
        if elapsed > 0.0:
            rate = engine.committed / elapsed
            metrics.gauge("simulator.events_per_second").set(rate)
            metrics.histogram(
                "simulator.run_seconds"
            ).observe(elapsed)
            sp.set(
                instructions=engine.committed,
                cycles=engine.cycle,
                events_per_second=round(rate, 1),
            )
        return SimResult(
            instructions=engine.committed - warmup,
            cycles=engine.cycle - engine.warmup_cycle,
            replays=engine.replay_count,
            lbb_stalls=engine.lbb.total_stalls,
            slow_way_hits=engine.slow_way_hits,
            branch_mispredicts=engine.branch_mispredicts,
            loads=engine.load_count,
            stores=engine.store_count,
            hierarchy_stats=hierarchy.statistics(),
        )
