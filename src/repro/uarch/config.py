"""Core configuration (paper Section 5.2).

The base processor: 4-wide fetch/issue/commit, a 128-entry issue queue, a
256-entry ROB, and 7 pipeline stages between the schedule and execute
stages — the window within which load dependents are scheduled
speculatively and must be replayed on a miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.validation import require_positive
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["CoreConfig", "PAPER_CORE"]


def _default_fu_pools() -> Dict[str, int]:
    return {"ialu": 4, "imult": 1, "falu": 2, "fmult": 1, "mem": 2}


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of the simulated out-of-order core.

    Attributes
    ----------
    fetch_width, issue_width, commit_width:
        Per-cycle bandwidths (the paper's core is 4-wide).
    iq_size, rob_size:
        Issue-queue and reorder-buffer capacities (128 / 256).
    sched_to_exec_stages:
        Pipeline stages between schedule and execute (7): the speculative
        scheduling shadow.
    frontend_stages:
        Fetch-to-dispatch depth; sets the misprediction refill bubble.
    fu_pools:
        Functional units available per kind per cycle.
    predicted_load_latency:
        Latency the scheduler assumes when waking load dependents
        (the L1D hit latency: 4; naive binning raises it).
    lbb_slack:
        Extra cycles a load-bypass buffer can absorb (1 entry = 1 cycle;
        0 disables VACA support, forcing a replay on any late hit).
    """

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    iq_size: int = 128
    rob_size: int = 256
    sched_to_exec_stages: int = 7
    frontend_stages: int = 4
    fu_pools: Dict[str, int] = field(default_factory=_default_fu_pools)
    predicted_load_latency: int = BASE_ACCESS_CYCLES
    lbb_slack: int = 1

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "issue_width",
            "commit_width",
            "iq_size",
            "rob_size",
            "sched_to_exec_stages",
            "frontend_stages",
            "predicted_load_latency",
        ):
            require_positive(getattr(self, name), name)
        if self.lbb_slack < 0:
            raise ValueError("lbb_slack must be >= 0")
        for kind, count in self.fu_pools.items():
            require_positive(count, f"fu_pools[{kind}]")

    def replace(self, **changes) -> "CoreConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


#: The paper's base processor.
PAPER_CORE = CoreConfig()
