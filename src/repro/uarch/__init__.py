"""Out-of-order pipeline simulator (the paper's SimpleScalar substitute).

The paper measures performance with a modified SimpleScalar 3.0: a 4-wide
out-of-order core (issue queue 128, ROB 256) with 7 pipeline stages
between the schedule and execute stages, speculative scheduling of load
dependents, selective replay on misses, and — for VACA — load-bypass
buffers in front of every functional unit that let a dependent stall one
cycle when its load resolves in 5 cycles instead of 4.

This subpackage implements that machine as a trace-driven, cycle-level
simulator:

* :mod:`repro.uarch.isa` — operation classes and functional-unit kinds.
* :mod:`repro.uarch.trace` — the dynamic instruction record.
* :mod:`repro.uarch.config` — core parameters (paper Section 5.2).
* :mod:`repro.uarch.lbb` — load-bypass buffer accounting.
* :mod:`repro.uarch.pipeline` — the scheduling/replay engine.
* :mod:`repro.uarch.simulator` — top-level simulator and results.
"""

from repro.uarch.isa import OpClass, FU_LATENCIES
from repro.uarch.trace import TraceInstruction
from repro.uarch.config import CoreConfig, PAPER_CORE
from repro.uarch.simulator import SimResult, Simulator

__all__ = [
    "OpClass",
    "FU_LATENCIES",
    "TraceInstruction",
    "CoreConfig",
    "PAPER_CORE",
    "SimResult",
    "Simulator",
]
