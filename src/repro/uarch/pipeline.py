"""The out-of-order scheduling engine.

Timing model
------------

The engine is trace-driven and cycle-level. Every dynamic instruction
moves through: fetch -> (frontend_stages) -> dispatch (ROB + issue queue)
-> schedule -> (sched_to_exec_stages) -> execute -> complete -> commit.

The paper's two key mechanisms are modelled faithfully:

* **Speculative scheduling.** When a producer issues at cycle T with
  execute latency L, its dependents may issue from cycle T + L so they
  reach the execute stage exactly when the result forwards. Loads
  broadcast their *predicted* latency (the 4-cycle L1D hit), so a
  dependent may be in flight when the load turns out to be slow.

* **Load-bypass buffers and selective replay.** A dependent arriving at
  execute before its data stalls in a load-bypass buffer if the shortfall
  is within the buffer's slack (one cycle for the paper's single-entry
  buffers — the 5-cycle VACA way). A larger shortfall (an L1 miss) means
  the speculatively issued dependent is squashed and reissued when the
  data is actually available, having wasted its issue slot and functional
  unit — the paper's replay mechanism. Dependents that have not issued
  when the miss is discovered (the load's execute stage) are simply
  re-woken for the refill time.

Mispredicted branches stall fetch from the moment they are fetched until
they resolve at execute; the front-end depth then refills naturally.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.cache.hierarchy import MemoryHierarchy
from repro.core.errors import SimulationError
from repro.uarch.config import CoreConfig
from repro.uarch.isa import FU_KIND, FU_LATENCIES, OpClass
from repro.uarch.lbb import LoadBypassBuffers
from repro.uarch.trace import NUM_REGISTERS, TraceInstruction

__all__ = ["PipelineEngine"]

#: Safety valve: cycles without any commit before declaring deadlock.
_DEADLOCK_LIMIT = 200_000


class _Inst:
    """Mutable per-instruction pipeline state."""

    __slots__ = (
        "seq",
        "op",
        "dest",
        "srcs",
        "address",
        "pc",
        "mispredicted",
        "fetch_cycle",
        "producers",
        "waiters",
        "remaining",
        "ready_time",
        "issued",
        "done",
        "wake_time",
        "completed",
        "replays",
    )

    def __init__(
        self,
        seq: int,
        op: OpClass,
        dest: Optional[int],
        srcs: tuple,
        address: Optional[int],
        pc: int,
        mispredicted: bool,
    ) -> None:
        self.seq = seq
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.address = address
        self.pc = pc
        self.mispredicted = mispredicted
        self.fetch_cycle = 0
        self.producers: List["_Inst"] = []
        self.waiters: List["_Inst"] = []
        self.remaining = 0
        self.ready_time = 0
        self.issued = False
        self.done = -1
        self.wake_time = -1
        self.completed = False
        self.replays = 0


#: Op-code -> OpClass decode table for packed traces; the order is the
#: enum definition order, matching ``repro.workloads.compiled.OP_CODES``.
_OP_TABLE = tuple(OpClass)


class PipelineEngine:
    """Runs one trace through the configured core and hierarchy.

    Parameters
    ----------
    config:
        Core parameters.
    hierarchy:
        The memory hierarchy (carries the yield-aware L1D configuration).
    trace:
        Iterable of :class:`TraceInstruction` (consumed lazily), or a
        :class:`repro.workloads.compiled.CompiledTrace` — the packed
        fast path reads instruction fields straight out of the compiled
        buffers, skipping per-instruction object construction and
        re-validation (the trace was validated when compiled).
    """

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        trace: Iterable[TraceInstruction],
        warmup_instructions: int = 0,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        # Detected by attribute, not isinstance: importing the compiled
        # module here would be circular (workloads.generator imports
        # repro.uarch.isa while repro.uarch's own __init__ runs).
        if getattr(trace, "is_compiled_trace", False):
            self._compiled = trace
            self._compiled_pos = 0
            self._trace: Optional[Iterator[TraceInstruction]] = None
        else:
            self._compiled = None
            self._compiled_pos = 0
            self._trace = iter(trace)
        self.lbb = LoadBypassBuffers(slack=config.lbb_slack)
        self.warmup_instructions = warmup_instructions
        self.warmup_cycle = 0
        self._warm = warmup_instructions == 0

        self.cycle = 0
        self._fetch_seq = 0
        self._trace_exhausted = False
        self._fetch_blocked_on: Optional[_Inst] = None
        self._fetch_stall_until = 0
        self._last_fetch_block: Optional[int] = None

        self._frontend: Deque[_Inst] = deque()  # fetched, awaiting dispatch
        self._rob: Deque[_Inst] = deque()
        self._iq_used = 0
        self._last_writer: List[Optional[_Inst]] = [None] * NUM_REGISTERS

        self._ready: List = []  # heap of (time, seq, inst)
        self._events: List = []  # heap of (time, kind, seq, inst)
        #: Latest revised wake-up of any miss-discovered load. While
        #: ``cycle >= _revision_horizon`` — every instruction window with
        #: no pending slow load — the issue stage can skip the
        #: producer-revision re-check entirely: an unrevised producer's
        #: wake time is always folded into the consumer's ready time
        #: before it enters the ready heap.
        self._revision_horizon = 0
        self._fu_reserved: Dict[int, Dict[str, int]] = {}
        self._commit_count = 0
        self._last_commit_cycle = 0

        # statistics
        self.committed = 0
        self.issued = 0
        self.replay_count = 0
        self.branch_mispredicts = 0
        self.load_count = 0
        self.store_count = 0
        self.slow_way_hits = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _push_ready(self, inst: _Inst, time: int) -> None:
        inst.ready_time = max(inst.ready_time, time)
        heapq.heappush(self._ready, (inst.ready_time, inst.seq, inst))

    def _wake_consumers(self, inst: _Inst, wake_time: int) -> None:
        """Producer ``inst`` issued (or revised): wake waiting consumers."""
        inst.wake_time = wake_time
        for consumer in inst.waiters:
            if consumer.issued:
                continue
            consumer.remaining -= 1
            consumer.ready_time = max(consumer.ready_time, wake_time)
            if consumer.remaining <= 0:
                self._push_ready(consumer, consumer.ready_time)
        inst.waiters = []

    def _end_warmup(self) -> None:
        """Reset measurement counters once the warmup window commits.

        Cache *contents* are kept (that is the point of warming up); only
        the statistics are zeroed, and the CPI window starts here.
        """
        self._warm = True
        self.warmup_cycle = self.cycle
        self.replay_count = 0
        self.branch_mispredicts = 0
        self.load_count = 0
        self.store_count = 0
        self.slow_way_hits = 0
        self.issued = 0
        self.lbb.total_stalls = 0
        self.lbb.overflows = 0
        self.hierarchy.l1d.reset_statistics()
        self.hierarchy.l1i.reset_statistics()
        self.hierarchy.l2.reset_statistics()
        self.hierarchy.l2_accesses = 0
        self.hierarchy.memory_accesses = 0

    def _revise_load_wakeup(self, load: _Inst) -> None:
        """Miss discovered at the load's execute stage: re-wake consumers.

        Consumers that issued inside the shadow replay on their own; the
        rest are re-timed for the refill.
        """
        new_wake = max(load.done - self.config.sched_to_exec_stages, self.cycle + 1)
        load.wake_time = new_wake
        if new_wake > self._revision_horizon:
            self._revision_horizon = new_wake

    # ------------------------------------------------------------------
    # pipeline stages (called in reverse order each cycle)
    # ------------------------------------------------------------------
    def _do_commit(self) -> None:
        count = 0
        while (
            self._rob
            and count < self.config.commit_width
            and self._rob[0].completed
            and self._rob[0].done <= self.cycle
        ):
            self._rob.popleft()
            self.committed += 1
            self._last_commit_cycle = self.cycle
            count += 1
            if not self._warm and self.committed >= self.warmup_instructions:
                self._end_warmup()

    def _process_events(self) -> None:
        while self._events and self._events[0][0] <= self.cycle:
            _, kind, _, inst = heapq.heappop(self._events)
            if kind == 0:  # completion
                inst.completed = True
            else:  # miss discovery: revise consumer wake-up
                self._revise_load_wakeup(inst)

    def _issue_load(self, inst: _Inst, exec_start: int) -> int:
        """Access the hierarchy; returns the data-available cycle."""
        assert inst.address is not None
        access = self.hierarchy.data_access(inst.address, write=False)
        self.load_count += 1
        done = exec_start + access.latency
        predicted = self.config.predicted_load_latency
        if access.l1_hit and access.latency > predicted:
            # A 5-cycle way occupies its cache port one cycle longer,
            # blocking one memory issue slot next cycle.
            self.slow_way_hits += 1
            reserved = self._fu_reserved.setdefault(self.cycle + 1, {})
            reserved["mem"] = reserved.get("mem", 0) + 1
        if access.latency > predicted + self.config.lbb_slack:
            # Effectively a miss for the scheduler: consumers issued in
            # the shadow will replay; the rest are re-woken when the miss
            # is discovered at our execute stage.
            heapq.heappush(self._events, (exec_start, 1, inst.seq, inst))
        return done

    def _do_issue(self) -> None:
        # Load-bypass-buffer occupancy blocks the functional-unit input it
        # sits in front of, so reservations made by earlier stalls count
        # against this cycle's pool.
        cycle = self.cycle
        config = self.config
        ready = self._ready
        fu_kind = FU_KIND
        fu_pools = config.fu_pools
        issue_width = config.issue_width
        sched_stages = config.sched_to_exec_stages
        heappop = heapq.heappop
        # No pending slow load means no producer wake-up can have been
        # revised past this cycle — skip the re-check per pop.
        check_revised = self._revision_horizon > cycle
        fu_used: Dict[str, int] = self._fu_reserved.pop(cycle, {})
        issued = 0
        deferred: List[_Inst] = []
        while ready and issued < issue_width:
            time, _, inst = ready[0]
            if time > cycle:
                break
            heappop(ready)
            if inst.issued or time < inst.ready_time:
                continue  # stale heap entry
            # A producer's wake-up may have been revised after this entry
            # was queued (miss discovery): the scheduler was informed, so
            # re-time the consumer without spending an issue slot.
            if check_revised:
                revised = max(
                    (p.wake_time for p in inst.producers), default=0
                )
                if revised > cycle:
                    self._push_ready(inst, revised)
                    continue
            kind = fu_kind[inst.op]
            if fu_used.get(kind, 0) >= fu_pools[kind]:
                deferred.append(inst)
                continue

            # Will the data actually be there when we reach execute?
            exec_start = cycle + sched_stages
            data_ready = 0
            for producer in inst.producers:
                if not producer.issued:
                    raise SimulationError(
                        "consumer scheduled before its producer issued"
                    )
                data_ready = max(data_ready, producer.done)
            shortfall = data_ready - exec_start

            fu_used[kind] = fu_used.get(kind, 0) + 1
            issued += 1
            self.issued += 1

            if shortfall > 0:
                if shortfall > config.lbb_slack or not self.lbb.try_hold(
                    exec_start, shortfall
                ):
                    # Speculatively issued under a miss (or no buffer
                    # space): squash and replay when the data arrives.
                    self.replay_count += 1
                    inst.replays += 1
                    retry = max(data_ready - sched_stages, cycle + 1)
                    self._push_ready(inst, retry)
                    continue
                # Absorbed by a load-bypass buffer: the buffered operand
                # occupies this FU's input, blocking one issue of the same
                # kind next cycle.
                exec_start += shortfall
                reserved = self._fu_reserved.setdefault(cycle + 1, {})
                reserved[kind] = reserved.get(kind, 0) + 1

            inst.issued = True
            self._iq_used -= 1
            # If this instruction itself slipped into a bypass buffer, the
            # scheduler knows and delays its dependents by the same slip.
            slip = exec_start - (cycle + sched_stages)
            if inst.op is OpClass.LOAD:
                inst.done = self._issue_load(inst, exec_start)
                wake = cycle + config.predicted_load_latency + slip
            elif inst.op is OpClass.STORE:
                assert inst.address is not None
                self.hierarchy.data_access(inst.address, write=True)
                self.store_count += 1
                inst.done = exec_start + FU_LATENCIES[inst.op]
                wake = inst.done
            else:
                latency = FU_LATENCIES[inst.op]
                inst.done = exec_start + latency
                wake = inst.done - sched_stages
            heapq.heappush(self._events, (inst.done, 0, inst.seq, inst))
            self._wake_consumers(inst, wake)
            if inst.mispredicted:
                self.branch_mispredicts += 1
                self._fetch_stall_until = max(
                    self._fetch_stall_until, inst.done + 1
                )
                if self._fetch_blocked_on is inst:
                    self._fetch_blocked_on = None
        for inst in deferred:  # structural hazard: retry next cycle
            self._push_ready(inst, cycle + 1)

    def _do_dispatch(self) -> None:
        count = 0
        while (
            self._frontend
            and count < self.config.fetch_width
            and len(self._rob) < self.config.rob_size
            and self._iq_used < self.config.iq_size
        ):
            inst = self._frontend[0]
            if inst.fetch_cycle + self.config.frontend_stages > self.cycle:
                break
            self._frontend.popleft()
            self._rob.append(inst)
            self._iq_used += 1
            count += 1

            inst.ready_time = self.cycle + 1
            for src in inst.srcs:
                producer = self._last_writer[src]
                if producer is None or producer.completed:
                    continue
                inst.producers.append(producer)
                if producer.issued:
                    inst.ready_time = max(inst.ready_time, producer.wake_time)
                else:
                    inst.remaining += 1
                    producer.waiters.append(inst)
            if inst.dest is not None:
                self._last_writer[inst.dest] = inst
            if inst.remaining == 0:
                self._push_ready(inst, inst.ready_time)

    def _do_fetch(self) -> None:
        if self._fetch_blocked_on is not None:
            return
        if self.cycle < self._fetch_stall_until:
            return
        if self._trace_exhausted:
            return
        if len(self._frontend) >= 3 * self.config.fetch_width:
            return
        compiled = self._compiled
        fetched = 0
        while fetched < self.config.fetch_width:
            if compiled is not None:
                # Packed fast path: read fields straight from the
                # compiled buffers (validated once, at compile time).
                pos = self._compiled_pos
                if pos >= compiled.length:
                    self._trace_exhausted = True
                    break
                self._compiled_pos = pos + 1
                dest = compiled.dests[pos]
                s0 = compiled.src0[pos]
                s1 = compiled.src1[pos]
                address = compiled.addresses[pos]
                inst = _Inst(
                    self._fetch_seq,
                    _OP_TABLE[compiled.ops[pos]],
                    None if dest < 0 else dest,
                    () if s0 < 0 else ((s0,) if s1 < 0 else (s0, s1)),
                    None if address < 0 else address,
                    compiled.pcs[pos],
                    bool(compiled.mispredicts[pos]),
                )
            else:
                try:
                    raw = next(self._trace)
                except StopIteration:
                    self._trace_exhausted = True
                    break
                inst = _Inst(
                    self._fetch_seq,
                    raw.op,
                    raw.dest,
                    raw.srcs,
                    raw.address,
                    raw.pc,
                    raw.mispredicted,
                )
            self._fetch_seq += 1
            fetched += 1

            # Instruction cache: pay the miss latency when entering a new
            # block; the 2-cycle hit latency is part of the front end.
            block = self.hierarchy.l1i.geometry.block_address(inst.pc)
            if block != self._last_fetch_block:
                self._last_fetch_block = block
                latency = self.hierarchy.instruction_fetch(inst.pc)
                extra = latency - self.hierarchy.config.l1i_latency
                if extra > 0:
                    self._fetch_stall_until = max(
                        self._fetch_stall_until, self.cycle + extra
                    )
            self._frontend.append(inst)
            inst.fetch_cycle = self.cycle
            if inst.mispredicted:
                self._fetch_blocked_on = inst
                break
            if self.cycle < self._fetch_stall_until:
                break

    # ------------------------------------------------------------------
    def _next_event_time(self) -> Optional[int]:
        """Earliest future cycle at which anything can happen."""
        candidates: List[int] = []
        if self._events:
            candidates.append(self._events[0][0])
        if self._ready:
            candidates.append(self._ready[0][0])
        if self._frontend:
            candidates.append(
                self._frontend[0].fetch_cycle + self.config.frontend_stages
            )
        if (
            not self._trace_exhausted
            and self._fetch_blocked_on is None
            and len(self._frontend) < 3 * self.config.fetch_width
        ):
            candidates.append(max(self._fetch_stall_until, self.cycle + 1))
        future = [c for c in candidates if c > self.cycle]
        return min(future) if future else None

    def run(self) -> None:
        """Simulate until every fetched instruction has committed."""
        while True:
            self._process_events()
            self._do_commit()
            self._do_issue()
            self._do_dispatch()
            self._do_fetch()
            if (
                self._trace_exhausted
                and not self._rob
                and not self._frontend
            ):
                break
            if self.cycle - self._last_commit_cycle > _DEADLOCK_LIMIT:
                raise SimulationError(
                    f"no commit for {_DEADLOCK_LIMIT} cycles "
                    f"(cycle {self.cycle}, committed {self.committed})"
                )
            nxt = self._next_event_time()
            self.cycle = nxt if nxt is not None else self.cycle + 1
            if self.cycle % 50_000 == 0:
                self.lbb.release_before(self.cycle)
