"""Structured request logging and bounded span retention for serve.

Two small, serve-facing pieces:

* :class:`RequestLog` — an append-only JSONL log of finished requests
  (one object per line: request id, client, method, path, status,
  latency, disposition flags). Writes happen under a lock with
  ``O_APPEND`` semantics so the file stays line-atomic even if a future
  change moves handling off the event-loop thread; a failed write
  disables the log rather than failing requests.
* :class:`SpanRing` — a bounded in-memory ring of the most recent
  ``serve.request`` span records, backing ``GET /debug/traces``. Unlike
  the JSONL trace file (which needs ``--trace`` and a filesystem), the
  ring is always on and answers "what just happened" without tooling.

:func:`new_request_id` mints ids that are short enough for log lines
but unique enough to correlate a client response header with its span
and log entry.
"""

from __future__ import annotations

import collections
import json
import os
import threading
from typing import Deque, Dict, List, Optional

__all__ = ["new_request_id", "RequestLog", "SpanRing"]


def new_request_id() -> str:
    """A 16-hex-char id, e.g. ``"a3f19c0b4d2e8710"``."""
    return os.urandom(8).hex()


class RequestLog:
    """Thread-safe JSONL request log.

    The file is opened lazily on the first record so constructing a
    server with ``request_log=...`` costs nothing until traffic arrives,
    and opening failures surface on the first request instead of at
    configuration time (where serve would have to abort).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._failed = False
        self.written = 0
        self.dropped = 0

    def record(self, entry: Dict[str, object]) -> None:
        """Append one entry; never raises into the request path."""
        line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            if self._failed:
                self.dropped += 1
                return
            try:
                if self._fd is None:
                    parent = os.path.dirname(os.path.abspath(self.path))
                    os.makedirs(parent, exist_ok=True)
                    self._fd = os.open(
                        self.path,
                        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                        0o644,
                    )
                os.write(self._fd, line)
                self.written += 1
            except OSError:
                self._failed = True
                self.dropped += 1
                if self._fd is not None:
                    try:
                        os.close(self._fd)
                    except OSError:
                        pass
                    self._fd = None

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "path": self.path,
                "written": self.written,
                "dropped": self.dropped,
                "failed": self._failed,
            }


class SpanRing:
    """Bounded ring buffer of recent span records (most recent last)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, object]] = collections.deque(
            maxlen=self.capacity
        )
        self._appended = 0

    def append(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._ring.append(record)
            self._appended += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The retained spans plus retention accounting.

        ``dropped`` counts spans aged out of the ring, so a consumer can
        tell "quiet server" from "busy server whose history scrolled".
        """
        with self._lock:
            spans: List[Dict[str, object]] = list(self._ring)
            appended = self._appended
        dropped = appended - len(spans)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return {
            "capacity": self.capacity,
            "appended": appended,
            "retained": len(spans),
            "dropped": dropped,
            "spans": spans,
        }
