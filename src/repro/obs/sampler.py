"""Background resource sampler (RSS and CPU time into gauges).

A daemon thread wakes every ``interval`` seconds, reads this process's
``/proc/self/status`` (``VmRSS``/``VmHWM``) and ``os.times()``, and
writes the readings into gauges on a :class:`MetricsRegistry`:

* ``proc.rss_bytes`` — resident set size at the last sample;
* ``proc.rss_peak_bytes`` — largest RSS seen (kernel high-water mark
  when available, else the max of our own samples);
* ``proc.cpu_user_seconds`` / ``proc.cpu_system_seconds`` — cumulative
  CPU time (children included, so pool workers count);
* ``proc.samples`` — counter of completed sampling sweeps.

``repro run`` and ``repro bench run`` start one around their work so
every run leaves a memory/CPU footprint next to its timings. On
platforms without ``/proc`` the RSS gauges simply stay at zero — CPU
times still work everywhere.

Instrument mutation is thread-safe (counters, gauges and histograms
lock internally — see :mod:`repro.obs.metrics`), so the sampler can
share a registry with experiment code without corrupting either side.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry, get_metrics

__all__ = ["ResourceSampler"]

_STATUS_PATH = "/proc/self/status"

#: /proc/self/status fields we read, and their unit multiplier to bytes.
_STATUS_FIELDS = {"VmRSS:": 1024, "VmHWM:": 1024}


def _read_status() -> Dict[str, int]:
    """``{field: bytes}`` from /proc/self/status; empty off-Linux."""
    values: Dict[str, int] = {}
    try:
        with open(_STATUS_PATH, "r", encoding="ascii", errors="replace") as fh:
            for line in fh:
                field = line.split(None, 1)[0] if line.strip() else ""
                if field in _STATUS_FIELDS:
                    parts = line.split()
                    try:
                        values[field] = int(parts[1]) * _STATUS_FIELDS[field]
                    except (IndexError, ValueError):
                        continue
    except OSError:
        return {}
    return values


class ResourceSampler:
    """Samples process memory and CPU usage into registry gauges.

    Use as a context manager (the CLI does) or via explicit
    :meth:`start`/:meth:`stop`; both are idempotent. One final sweep runs
    on stop so even a shorter-than-``interval`` region gets a reading.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval: float = 0.05,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry if registry is not None else get_metrics()
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._peak_seen = 0.0

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        status = _read_status()
        rss = status.get("VmRSS:")
        if rss is not None:
            self.registry.gauge("proc.rss_bytes").set(rss)
            self._peak_seen = max(self._peak_seen, float(rss))
        peak = float(status.get("VmHWM:", 0)) or self._peak_seen
        if peak:
            self.registry.gauge("proc.rss_peak_bytes").set(peak)
        times = os.times()
        self.registry.gauge("proc.cpu_user_seconds").set(
            times.user + times.children_user
        )
        self.registry.gauge("proc.cpu_system_seconds").set(
            times.system + times.children_system
        )
        self.registry.counter("proc.samples").inc()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sweep()

    def sample_now(self) -> None:
        """Take one sweep immediately (callers about to read the gauges)."""
        self._sweep()

    # ------------------------------------------------------------------
    def start(self) -> "ResourceSampler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-resource-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> Dict[str, float]:
        """Stop the thread, take a final sample, and return a summary."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._sweep()
        return self.summary()

    def summary(self) -> Dict[str, float]:
        """The current gauge readings as a plain dict."""
        return {
            "rss_bytes": self.registry.gauge("proc.rss_bytes").value,
            "rss_peak_bytes": self.registry.gauge("proc.rss_peak_bytes").value,
            "cpu_user_seconds": self.registry.gauge(
                "proc.cpu_user_seconds"
            ).value,
            "cpu_system_seconds": self.registry.gauge(
                "proc.cpu_system_seconds"
            ).value,
            "samples": self.registry.counter("proc.samples").value,
        }

    # ------------------------------------------------------------------
    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
