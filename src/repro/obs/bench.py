"""Benchmark harness and provenance-stamped trend store.

The repo's hot paths — engine dispatch, the pipeline simulator, the
YAPD/H-YAPD/VACA classification sweeps — had no recorded perf
trajectory, so a regression would ship silently. This module gives them
one:

* **Suites** (:data:`SUITES`) — small, deterministic benchmark sets that
  exercise one hot path each through the real :class:`Engine` (a scratch,
  non-persistent engine, memo cleared between repeats, so every timed
  run recomputes).
* **Harness** (:func:`run_suite`) — warmup + repeated timed runs on
  ``time.perf_counter``, a per-benchmark engine ``MetricsRegistry``
  snapshot, and resource gauges from the background sampler.
* **Trend store** (:func:`load_history` / :func:`append_history`) — a
  schema-versioned ``BENCH_history.json`` holding one provenance-stamped
  record per benchmark per run, plus ``BENCH_<suite>.json`` latest-result
  files. Individual garbled records are skipped with a count (the same
  corruption-tolerance policy as the result store); a wrong *file*
  schema version refuses loudly, because silently reinterpreting old
  timings would poison every later comparison.

``repro bench run|compare|report`` is the CLI surface;
:mod:`repro.obs.regress` turns two runs into verdicts and
:mod:`repro.obs.report` renders the history as a self-contained HTML
page.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.obs.provenance import config_hash, provenance_stamp

__all__ = [
    "Benchmark",
    "BenchResult",
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "SUITES",
    "append_history",
    "available_suites",
    "bench_run",
    "latest_path",
    "load_history",
    "make_record",
    "new_run_id",
    "run_ids",
    "run_suite",
    "samples_by_bench",
    "save_history",
    "write_latest",
]

#: Bump when the record layout changes incompatibly; gates every load.
HISTORY_SCHEMA_VERSION = 1

#: Default trend-store location (repo root, committed-friendly).
DEFAULT_HISTORY_PATH = pathlib.Path("BENCH_history.json")


# ----------------------------------------------------------------------
# benchmark definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Benchmark:
    """One named benchmark.

    ``prepare(engine)`` does the untimed setup (building settings,
    computing a population the timed body only *classifies*, ...) and
    returns the zero-argument thunk the harness times. A ``cleanup``
    attribute on the thunk, when present, runs after the last repeat.
    """

    name: str
    prepare: Callable[["object"], Callable[[], object]]


def _bench_settings(**overrides):
    from repro.experiments.common import ExperimentSettings

    base = {
        "seed": 2006,
        "chips": 64,
        "trace_length": 2500,
        "warmup": 500,
        "benchmarks": ("gzip",),
    }
    base.update(overrides)
    return ExperimentSettings(**base)


def _prepare_population(engine):
    settings = _bench_settings(chips=64)

    def run():
        engine.clear_memory()
        return engine.population(settings)

    return run


def _prepare_population_path(value: str):
    """Population benchmark with the columnar path forced on ("1") or
    off ("0") via ``REPRO_COLUMNAR``, so one bench run reports both
    paths side by side; the prior env value is restored on cleanup."""

    def prepare(engine):
        settings = _bench_settings(chips=64)
        previous = os.environ.get("REPRO_COLUMNAR")
        os.environ["REPRO_COLUMNAR"] = value

        def run():
            engine.clear_memory()
            return engine.population(settings)

        def cleanup():
            if previous is None:
                os.environ.pop("REPRO_COLUMNAR", None)
            else:
                os.environ["REPRO_COLUMNAR"] = previous

        run.cleanup = cleanup
        return run

    return prepare


def _prepare_store_roundtrip(engine):
    from repro.engine.store import ResultStore

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
    store = ResultStore(pathlib.Path(tmp.name))
    payload = {"rows": [[i, i * 0.5, f"cfg-{i}"] for i in range(200)]}
    keys = [
        ResultStore.key_for("bench", {"index": i, "payload": "fixed"})
        for i in range(40)
    ]

    def run():
        for key in keys:
            store.save("bench", key, payload)
        loaded = 0
        for key in keys:
            if store.load("bench", key) is not None:
                loaded += 1
        return loaded

    run.cleanup = tmp.cleanup
    return run


def _prepare_simulation(benchmark: str):
    def prepare(engine):
        settings = _bench_settings(chips=16, benchmarks=(benchmark,))

        def run():
            engine.clear_memory()
            return engine.simulate(settings, benchmark)

        return run

    return prepare


def _prepare_breakdown(horizontal: bool):
    def prepare(engine):
        from repro.experiments.common import scheme_set

        settings = _bench_settings(chips=96)
        pop = engine.population(settings)
        schemes = scheme_set(horizontal=horizontal)

        def run():
            return pop.breakdown(schemes, horizontal=horizontal)

        return run

    return prepare


def _prepare_serve_warm(engine):
    """Warm-store query latency through the full HTTP stack."""
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    thread = ServerThread(engine, ServeConfig(port=0))
    host, port = thread.start()
    client = ServeClient(host, port)
    client.population(seed=2006, chips=64)  # make the query warm

    def run():
        return client.population(seed=2006, chips=64)

    def cleanup():
        client.close()
        thread.stop()

    run.cleanup = cleanup
    return run


def _prepare_serve_burst(engine):
    """Coalesced-burst throughput: N identical cold queries at once.

    Each timed run clears the memo, so the burst is cold every repeat;
    the single-flight path should collapse it onto one dispatch.
    """
    import threading as _threading

    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    thread = ServerThread(engine, ServeConfig(port=0))
    host, port = thread.start()
    clients = 8

    def run():
        engine.clear_memory()
        barrier = _threading.Barrier(clients)

        def one(index: int) -> None:
            barrier.wait()
            with ServeClient(host, port, client_id=f"bench-{index}") as c:
                c.population(seed=2006, chips=128)

        workers = [
            _threading.Thread(target=one, args=(i,)) for i in range(clients)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        return clients

    run.cleanup = thread.stop
    return run


#: The tail-yield constraint policy of the estimator suite: permissive
#: limits (mean + 3 sigma delay, 8x mean leakage) push the yield to
#: ~0.985, where brute force wastes chips measuring an almost-sure pass
#: — the regime the smart estimators exist for.
_TAIL_POLICY_PARAMS = ("tail", 3.0, 8.0)


def _prepare_estimator(kind: str):
    """Estimator benchmark: one kind at a matched CI target on the tail.

    Every kind gets the same 2000-chip budget and (for the sequential
    kinds) the same 0.02 CI target, so the sample counts in the recorded
    ``metrics.estimator`` snapshot are directly comparable — the
    fixed-vs-adaptive-vs-IS samples ratio is the suite's headline.
    """

    def prepare(engine):
        from repro.yieldmodel.constraints import ConstraintPolicy
        from repro.yieldmodel.estimators import EstimatorSpec

        settings = _bench_settings(chips=2000)
        policy = ConstraintPolicy(*_TAIL_POLICY_PARAMS)
        spec = {
            "fixed": EstimatorSpec(kind="fixed"),
            "adaptive": EstimatorSpec(kind="adaptive", ci_target=0.02),
            "stratified": EstimatorSpec(
                kind="stratified", ci_target=0.02, pilot_chips=160
            ),
            "is": EstimatorSpec(
                kind="is", ci_target=0.02, pilot_chips=150
            ),
        }[kind]

        def run():
            engine.clear_memory()
            return engine.estimate(settings, policy, estimator=spec)

        return run

    return prepare


#: Suite name -> benchmark list. Each suite is one hot path the ROADMAP
#: cares about; every suite stays in CI-smoke territory (seconds).
SUITES: Dict[str, List[Benchmark]] = {
    "engine": [
        Benchmark("engine.population", _prepare_population),
        Benchmark("population.columnar", _prepare_population_path("1")),
        Benchmark("population.reference", _prepare_population_path("0")),
        Benchmark("engine.store_roundtrip", _prepare_store_roundtrip),
    ],
    "pipeline": [
        Benchmark("pipeline.sim_gzip", _prepare_simulation("gzip")),
        Benchmark("pipeline.sim_mcf", _prepare_simulation("mcf")),
    ],
    "schemes": [
        Benchmark("schemes.breakdown_vertical", _prepare_breakdown(False)),
        Benchmark("schemes.breakdown_horizontal", _prepare_breakdown(True)),
    ],
    "serve": [
        Benchmark("serve.warm_query", _prepare_serve_warm),
        Benchmark("serve.coalesced_burst", _prepare_serve_burst),
    ],
    "estimators": [
        Benchmark("estimators.fixed_tail", _prepare_estimator("fixed")),
        Benchmark("estimators.adaptive_tail", _prepare_estimator("adaptive")),
        Benchmark(
            "estimators.stratified_tail", _prepare_estimator("stratified")
        ),
        Benchmark("estimators.is_tail", _prepare_estimator("is")),
    ],
}


def available_suites() -> List[str]:
    """All suite names, in presentation order."""
    return list(SUITES)


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
@dataclass
class BenchResult:
    """Raw outcome of one benchmark: timing samples plus context."""

    suite: str
    bench: str
    samples: List[float]
    warmup: int
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)


def run_suite(
    suite: str,
    repeats: int = 5,
    warmup: int = 1,
    workers: int = 1,
) -> List[BenchResult]:
    """Run every benchmark of ``suite`` and return raw results.

    A scratch non-persistent :class:`Engine` is built per suite run (the
    process-wide engine and its ``.repro_cache/`` are never touched), and
    its memo is cleared by the benchmarks that must recompute, so the
    numbers measure compute — not cache reads.
    """
    from repro.engine.core import Engine, EngineConfig

    if suite not in SUITES:
        raise ConfigurationError(
            f"unknown bench suite {suite!r}; available: {available_suites()}"
        )
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    if warmup < 0:
        raise ConfigurationError("warmup must be >= 0")
    engine = Engine(EngineConfig(workers=workers, persistent=False))
    results: List[BenchResult] = []
    for benchmark in SUITES[suite]:
        thunk = benchmark.prepare(engine)
        try:
            for _ in range(warmup):
                thunk()
            samples: List[float] = []
            for _ in range(repeats):
                start = time.perf_counter()
                thunk()
                samples.append(time.perf_counter() - start)
        finally:
            cleanup = getattr(thunk, "cleanup", None)
            if cleanup is not None:
                cleanup()
        snapshot = engine.metrics.snapshot()
        metrics: Dict[str, object] = {"counters": snapshot["counters"]}
        # Engine gauges lead; breakdown-level estimates land in the
        # process-wide registry (scheme benches publish there).
        estimator = _estimator_snapshot(
            {**get_metrics().snapshot()["gauges"], **snapshot["gauges"]}
        )
        if estimator:
            metrics["estimator"] = estimator
        results.append(
            BenchResult(
                suite=suite,
                bench=benchmark.name,
                samples=samples,
                warmup=warmup,
                metrics=metrics,
            )
        )
        engine.metrics.reset()
    return results


def _estimator_snapshot(gauges: Dict[str, float]) -> Dict[str, object]:
    """Statistical-efficiency readout from the ``yield.*`` gauges.

    For every published estimate: the point value, the 95% CI
    half-width, the sample count, and ``samples_per_ci_width`` — how
    many Monte Carlo chips bought one unit of interval width (higher is
    costlier; a smarter estimator drives it down). Recorded into the
    bench history so estimator efficiency trends alongside wall-clock.
    """
    out: Dict[str, object] = {}
    for name, value in gauges.items():
        if not name.startswith("yield.estimate."):
            continue
        key = name[len("yield.estimate."):]
        half = gauges.get(f"yield.ci_halfwidth.{key}")
        samples = gauges.get(f"yield.samples.{key}")
        if half is None or samples is None:
            continue
        width = 2.0 * float(half)
        entry: Dict[str, object] = {
            "estimate": round(float(value), 6),
            "ci_halfwidth": round(float(half), 6),
            "samples": int(samples),
            "samples_per_ci_width": (
                round(float(samples) / width, 3) if width > 0 else None
            ),
        }
        ess = gauges.get(f"yield.ess.{key}")
        if ess is not None:
            entry["ess"] = round(float(ess), 3)
        out[key] = entry
    return out


def _resource_snapshot() -> Dict[str, float]:
    """Resource gauges from the process-wide registry (sampler output)."""
    registry = get_metrics()
    snap = {
        "rss_peak_bytes": registry.gauge("proc.rss_peak_bytes").value,
        "cpu_user_seconds": registry.gauge("proc.cpu_user_seconds").value,
        "cpu_system_seconds": registry.gauge("proc.cpu_system_seconds").value,
    }
    return {key: value for key, value in snap.items() if value}


# ----------------------------------------------------------------------
# records and the trend store
# ----------------------------------------------------------------------
def make_record(
    result: BenchResult,
    run_id: str,
    created: float,
    provenance: Dict[str, object],
) -> Dict[str, object]:
    """One schema-versioned, provenance-stamped history record."""
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "run_id": run_id,
        "suite": result.suite,
        "bench": result.bench,
        "created": round(created, 3),
        "repeats": len(result.samples),
        "warmup": result.warmup,
        "samples": [round(s, 9) for s in result.samples],
        "median": round(result.median, 9),
        "mean": round(result.mean, 9),
        "min": round(min(result.samples), 9),
        "max": round(max(result.samples), 9),
        "provenance": provenance,
        "metrics": result.metrics,
        "resources": _resource_snapshot(),
    }


def new_run_id(
    suite: str, created: float, provenance: Dict[str, object]
) -> str:
    """Stable short id tying one suite run's records together."""
    return config_hash(
        {"suite": suite, "created": created, "provenance": provenance}
    )


def _valid_record(record: object) -> bool:
    if not isinstance(record, dict):
        return False
    samples = record.get("samples")
    return (
        isinstance(record.get("run_id"), str)
        and isinstance(record.get("suite"), str)
        and isinstance(record.get("bench"), str)
        and isinstance(samples, list)
        and len(samples) > 0
        and all(isinstance(s, (int, float)) for s in samples)
        and isinstance(record.get("provenance"), dict)
    )


def load_history(path: pathlib.Path) -> Tuple[List[Dict[str, object]], int]:
    """Load the trend store: ``(records, skipped_record_count)``.

    A missing file is an empty history. A file that is not JSON, not the
    expected shape, or carries a different schema version raises
    :class:`ConfigurationError` — old histories must be migrated or moved
    aside explicitly, never silently reinterpreted. Records that are
    individually malformed are skipped and counted.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return [], 0
    except OSError as exc:
        raise ConfigurationError(f"cannot read bench history {path}: {exc}")
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(
            f"bench history {path} is not valid JSON ({exc}); "
            "move it aside to start a fresh history"
        )
    if not isinstance(document, dict) or "records" not in document:
        raise ConfigurationError(
            f"bench history {path} has an unexpected shape "
            "(expected an object with a 'records' list)"
        )
    version = document.get("version")
    if version != HISTORY_SCHEMA_VERSION:
        raise ConfigurationError(
            f"bench history {path} has schema version {version!r}, "
            f"this build writes {HISTORY_SCHEMA_VERSION}; "
            "move the file aside to start a fresh history"
        )
    records: List[Dict[str, object]] = []
    skipped = 0
    for record in document["records"]:
        if _valid_record(record):
            records.append(record)
        else:
            skipped += 1
    return records, skipped


def save_history(path: pathlib.Path, records: Sequence[Dict[str, object]]) -> None:
    """Atomically write the whole trend store."""
    path = pathlib.Path(path)
    document = {
        "version": HISTORY_SCHEMA_VERSION,
        "records": list(records),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-bench-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def append_history(
    path: pathlib.Path, new_records: Sequence[Dict[str, object]]
) -> int:
    """Append records to the store; returns the total record count."""
    records, _skipped = load_history(path)
    records.extend(new_records)
    save_history(path, records)
    return len(records)


def latest_path(suite: str, directory: pathlib.Path) -> pathlib.Path:
    """Where the latest-result file of ``suite`` lives."""
    return pathlib.Path(directory) / f"BENCH_{suite}.json"


def write_latest(
    suite: str,
    records: Sequence[Dict[str, object]],
    directory: pathlib.Path = pathlib.Path("."),
) -> pathlib.Path:
    """Write ``BENCH_<suite>.json`` holding just this run's records."""
    path = latest_path(suite, directory)
    save_history(path, records)
    return path


# ----------------------------------------------------------------------
# history queries (the compare/report verbs build on these)
# ----------------------------------------------------------------------
def run_ids(records: Sequence[Dict[str, object]]) -> List[str]:
    """Distinct run ids in first-appearance (chronological) order."""
    seen: List[str] = []
    for record in records:
        run_id = record["run_id"]
        if run_id not in seen:
            seen.append(run_id)
    return seen


def samples_by_bench(
    records: Sequence[Dict[str, object]],
    run_id: Optional[str] = None,
    suite: Optional[str] = None,
) -> Dict[str, List[float]]:
    """``{bench: samples}`` for one run (or the whole history slice)."""
    out: Dict[str, List[float]] = {}
    for record in records:
        if run_id is not None and record["run_id"] != run_id:
            continue
        if suite is not None and record["suite"] != suite:
            continue
        out[record["bench"]] = [float(s) for s in record["samples"]]
    return out


def bench_run(
    suite: str,
    repeats: int = 5,
    warmup: int = 1,
    workers: int = 1,
    history: pathlib.Path = DEFAULT_HISTORY_PATH,
    latest_dir: pathlib.Path = pathlib.Path("."),
    created: Optional[float] = None,
) -> Tuple[str, List[Dict[str, object]]]:
    """Run one suite and persist its records (harness + store in one call).

    Returns ``(run_id, records)``; the records are appended to
    ``history`` and mirrored into ``BENCH_<suite>.json``.
    """
    results = run_suite(suite, repeats=repeats, warmup=warmup, workers=workers)
    created = time.time() if created is None else created
    provenance = provenance_stamp(
        workers=workers,
        config={
            "suite": suite,
            "repeats": repeats,
            "warmup": warmup,
            "workers": workers,
        },
    )
    run_id = new_run_id(suite, created, provenance)
    records = [
        make_record(result, run_id, created, provenance) for result in results
    ]
    append_history(history, records)
    write_latest(suite, records, latest_dir)
    return run_id, records
