"""Provenance stamps for benchmark records.

A perf number with no provenance is noise: a regression report must say
*which code* (git SHA, dirty or not), *which interpreter* (version and
implementation), and *which configuration* (worker count, config hash)
produced each sample, or trend comparisons silently mix apples and
oranges. :func:`provenance_stamp` gathers exactly that — and nothing
host-identifying: records are meant to be committed and shared, so no
hostname, username, or absolute path ever lands in a stamp.

Git facts come from ``git`` subprocesses with short timeouts; outside a
repository (or without git on PATH) the SHA degrades to ``"unknown"``
and the dirty flag to ``None`` rather than failing the run.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from typing import Dict, Optional

__all__ = [
    "config_hash",
    "git_revision",
    "provenance_stamp",
    "working_tree_dirty",
]


def _git(args, cwd: Optional[str] = None) -> Optional[str]:
    """Run one git query; ``None`` when git or the repo is unavailable."""
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def git_revision(cwd: Optional[str] = None) -> str:
    """The HEAD commit SHA, or ``"unknown"`` outside a git checkout."""
    out = _git(["rev-parse", "HEAD"], cwd=cwd)
    sha = (out or "").strip()
    return sha if sha else "unknown"


def working_tree_dirty(cwd: Optional[str] = None) -> Optional[bool]:
    """Whether tracked files carry uncommitted changes.

    Untracked files do not count (same semantics as ``git describe
    --dirty``): the bench harness itself drops ``BENCH_*.json`` artifacts
    into the tree, and those must not block the next run. ``None`` means
    "cannot tell" (no git, no repository) — callers that enforce a clean
    tree should treat that as clean rather than block runs from exported
    tarballs.
    """
    out = _git(["status", "--porcelain", "--untracked-files=no"], cwd=cwd)
    if out is None:
        return None
    return bool(out.strip())


def config_hash(identity: Dict[str, object]) -> str:
    """Short stable digest of a configuration identity (12 hex chars)."""
    body = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]


def provenance_stamp(
    workers: int = 1,
    config: Optional[Dict[str, object]] = None,
    cwd: Optional[str] = None,
) -> Dict[str, object]:
    """Everything a trend record needs to be comparable later.

    Parameters
    ----------
    workers:
        Configured worker-process count of the run.
    config:
        Identity of the benchmark configuration (settings, repeats, ...);
        hashed into a short ``config_hash`` so records group cheaply.
    cwd:
        Directory whose git checkout is stamped (default: process cwd).
    """
    return {
        "git_sha": git_revision(cwd=cwd),
        "dirty": working_tree_dirty(cwd=cwd),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "workers": int(workers),
        "config_hash": config_hash(config or {}),
    }
