"""Self-contained HTML reports: bench trends and trace flamegraphs.

Both renderers emit one HTML file with **zero network references** — no
external scripts, stylesheets, fonts or images (not even an ``xmlns``
URL: inline SVG in HTML needs none). A report must stay readable years
later, attached to a CI run, on a machine with no network.

* :func:`render_bench_report` — per-benchmark trend sparklines (inline
  SVG polylines over the run history's medians), the latest medians, and
  the provenance of the newest record; optionally a verdict table from
  :mod:`repro.obs.regress`.
* :func:`render_flamegraph` — a collapsible flamegraph over JSONL trace
  spans. Sibling spans with the same name merge (durations sum, counts
  shown), which is what makes a 10k-span worker trace readable. Nodes
  are nested ``<details>`` elements — collapsing works with no
  JavaScript at all.
"""

from __future__ import annotations

import html
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.regress import Comparison

__all__ = [
    "build_flame_tree",
    "flamegraph_html",
    "bench_report_html",
    "render_bench_report",
    "render_flamegraph",
    "sparkline_svg",
    "html_document",
]

_STYLE = """
body { font-family: monospace; margin: 1.5em; background: #fdfdfd; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: left; }
th { background: #eee; }
.improved { color: #117733; font-weight: bold; }
.regressed { color: #cc3311; font-weight: bold; }
.neutral { color: #555; }
.warn { color: #996600; }
.frame { margin-left: 1.1em; }
.frame summary { cursor: pointer; white-space: nowrap; }
.bar { display: inline-block; height: 0.7em; background: #4477aa; vertical-align: baseline; }
.dim { color: #777; }
"""


def _document(title: str, body: str, head_extra: str = "") -> str:
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_STYLE}</style>\n{head_extra}"
        f"</head><body>\n<h1>{html.escape(title)}</h1>\n{body}\n</body></html>\n"
    )


def html_document(title: str, body: str, head_extra: str = "") -> str:
    """Public wrapper over the shared self-contained document shell.

    ``head_extra`` lets callers (the live dashboard) add inline
    ``<style>``/``<script>`` blocks — never external references.
    """
    return _document(title, body, head_extra)


# ----------------------------------------------------------------------
# bench trend report
# ----------------------------------------------------------------------
def sparkline_svg(
    values: Sequence[float], width: int = 180, height: int = 36
) -> str:
    """Inline-SVG polyline of ``values`` (chronological, left to right).

    Shared by the bench trend report and the live serve dashboard — one
    sparkline idiom everywhere, zero network references.
    """
    return _sparkline(values, width, height)


def _sparkline(values: Sequence[float], width: int = 180, height: int = 36) -> str:
    """Inline-SVG polyline of ``values`` (chronological, left to right)."""
    if not values:
        return '<span class="dim">no data</span>'
    if len(values) == 1:
        values = [values[0], values[0]]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    pad = 3.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - low) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    last_x = pad + (len(values) - 1) * step
    last_y = height - pad - (values[-1] - low) / span * (height - 2 * pad)
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" stroke="#4477aa" '
        'stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" fill="#cc3311"/>'
        "</svg>"
    )


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def _provenance_row(provenance: Dict[str, object]) -> str:
    sha = str(provenance.get("git_sha", "unknown"))[:12]
    dirty = provenance.get("dirty")
    dirty_text = {True: " (dirty)", False: "", None: " (dirty: unknown)"}[dirty]
    return (
        f"commit <b>{html.escape(sha)}</b>{dirty_text}, "
        f"python {html.escape(str(provenance.get('python', '?')))}, "
        f"{html.escape(str(provenance.get('platform', '?')))}, "
        f"workers {html.escape(str(provenance.get('workers', '?')))}, "
        f"config {html.escape(str(provenance.get('config_hash', '?')))}"
    )


def bench_report_html(
    records: Sequence[Dict[str, object]],
    skipped: int = 0,
    comparisons: Optional[Sequence[Comparison]] = None,
    title: str = "Benchmark trends",
) -> str:
    """The trend report as an HTML string."""
    parts: List[str] = []
    if skipped:
        parts.append(
            f'<p class="warn">warning: skipped {skipped} malformed history '
            "record(s)</p>"
        )
    if not records:
        parts.append("<p>No benchmark records yet — run "
                     "<b>repro bench run</b> first.</p>")
        return _document(title, "\n".join(parts))

    newest = max(records, key=lambda r: float(r.get("created", 0.0)))
    parts.append(
        f"<p>{len(records)} records · latest run "
        f"<b>{html.escape(str(newest['run_id']))}</b> · "
        f"{_provenance_row(newest.get('provenance', {}))}</p>"
    )

    if comparisons:
        rows = "\n".join(
            f'<tr><td>{html.escape(c.bench)}</td>'
            f'<td class="{c.verdict}">{c.verdict}</td>'
            f"<td>{_fmt_ms(c.baseline_median)}</td>"
            f"<td>{_fmt_ms(c.current_median)}</td>"
            f"<td>{c.percent:+.2f}%</td>"
            f"<td>[{c.ci_low * 100:+.2f}%, {c.ci_high * 100:+.2f}%]</td></tr>"
            for c in comparisons
        )
        parts.append(
            "<h2>Verdicts vs baseline</h2>\n<table>"
            "<tr><th>benchmark</th><th>verdict</th><th>baseline</th>"
            "<th>current</th><th>&Delta; median</th><th>95% CI</th></tr>\n"
            f"{rows}</table>"
        )

    by_bench: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        by_bench.setdefault(str(record["bench"]), []).append(record)
    parts.append("<h2>Trends (median seconds per run, oldest &rarr; newest)"
                 "</h2>\n<table><tr><th>benchmark</th><th>trend</th>"
                 "<th>runs</th><th>latest median</th><th>latest range</th>"
                 "</tr>")
    for bench in sorted(by_bench):
        history = sorted(
            by_bench[bench], key=lambda r: float(r.get("created", 0.0))
        )
        medians = [float(r.get("median", 0.0)) for r in history]
        latest = history[-1]
        low = float(latest.get("min", medians[-1]))
        high = float(latest.get("max", medians[-1]))
        parts.append(
            f"<tr><td>{html.escape(bench)}</td>"
            f"<td>{_sparkline(medians)}</td>"
            f"<td>{len(history)}</td>"
            f"<td>{_fmt_ms(medians[-1])}</td>"
            f"<td>{_fmt_ms(low)} &ndash; {_fmt_ms(high)}</td></tr>"
        )
    parts.append("</table>")
    return _document(title, "\n".join(parts))


def render_bench_report(
    records: Sequence[Dict[str, object]],
    out: pathlib.Path,
    skipped: int = 0,
    comparisons: Optional[Sequence[Comparison]] = None,
) -> pathlib.Path:
    """Write the trend report to ``out`` and return the path."""
    out = pathlib.Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        bench_report_html(records, skipped=skipped, comparisons=comparisons),
        encoding="utf-8",
    )
    return out


# ----------------------------------------------------------------------
# flamegraph
# ----------------------------------------------------------------------
class FlameNode:
    """One merged frame: all same-named siblings under one parent path."""

    __slots__ = ("name", "total", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self.children: Dict[str, "FlameNode"] = {}

    def child(self, name: str) -> "FlameNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = FlameNode(name)
        return node


def build_flame_tree(spans: Sequence[Dict[str, object]]) -> FlameNode:
    """Merge spans into a name-keyed tree rooted at a synthetic node.

    Spans whose ``parent_id`` is unknown (the parent record was lost to
    truncation, or they are genuine roots) attach to the root — a
    corrupted trace still renders, it just shows flatter stacks.
    """
    by_id = {
        str(s["span_id"]): s
        for s in spans
        if isinstance(s.get("span_id"), str)
    }

    def path_names(span: Dict[str, object]) -> List[str]:
        names = [str(span["name"])]
        seen = {str(span.get("span_id", ""))}
        parent_id = span.get("parent_id")
        while isinstance(parent_id, str) and parent_id in by_id:
            if parent_id in seen:  # corrupt trace: defensive cycle break
                break
            seen.add(parent_id)
            parent = by_id[parent_id]
            names.append(str(parent["name"]))
            parent_id = parent.get("parent_id")
        names.reverse()
        return names

    root = FlameNode("trace")
    for span in spans:
        node = root
        for name in path_names(span):
            node = node.child(name)
        node.total += float(span["dur"])
        node.count += 1
    # Self time propagates up only implicitly: a parent's recorded span
    # already covers its children, so the root total is the sum of the
    # top-level frames alone.
    root.total = sum(child.total for child in root.children.values())
    root.count = sum(child.count for child in root.children.values())
    return root


def _render_node(
    node: FlameNode, scale_total: float, depth: int, out: List[str]
) -> None:
    share = (node.total / scale_total) if scale_total > 0 else 0.0
    bar = max(1, int(round(share * 320)))
    label = (
        f"<span class=\"bar\" style=\"width:{bar}px\"></span> "
        f"{html.escape(node.name)} "
        f"<span class=\"dim\">{node.total * 1e3:.3f} ms · "
        f"{share * 100:.1f}% · ×{node.count}</span>"
    )
    children = sorted(
        node.children.values(), key=lambda n: n.total, reverse=True
    )
    if children and depth < 64:
        open_attr = " open" if depth < 2 else ""
        out.append(
            f'<details class="frame"{open_attr}><summary>{label}</summary>'
        )
        for child in children:
            _render_node(child, scale_total, depth + 1, out)
        out.append("</details>")
    else:
        out.append(f'<div class="frame">{label}</div>')


def flamegraph_html(
    spans: Sequence[Dict[str, object]],
    skipped: int = 0,
    source: str = "",
    title: str = "Trace flamegraph",
) -> str:
    """The flamegraph as an HTML string."""
    parts: List[str] = []
    if source:
        parts.append(f'<p class="dim">source: {html.escape(source)}</p>')
    if skipped:
        parts.append(
            f'<p class="warn">warning: skipped {skipped} malformed trace '
            "line(s)</p>"
        )
    if not spans:
        parts.append("<p>No spans in the trace.</p>")
        return _document(title, "\n".join(parts))
    root = build_flame_tree(spans)
    pids = {s.get("pid") for s in spans if s.get("pid") is not None}
    parts.append(
        f"<p>{len(spans)} spans · {len(pids)} process(es) · "
        f"total {root.total * 1e3:.3f} ms (sum of top-level frames). "
        "Click a frame to fold or unfold its children; bar widths are "
        "the share of the total.</p>"
    )
    body: List[str] = []
    for child in sorted(
        root.children.values(), key=lambda n: n.total, reverse=True
    ):
        _render_node(child, root.total, 0, body)
    parts.extend(body)
    return _document(title, "\n".join(parts))


def render_flamegraph(
    spans: Sequence[Dict[str, object]],
    out: pathlib.Path,
    skipped: int = 0,
    source: str = "",
) -> pathlib.Path:
    """Write the flamegraph to ``out`` and return the path."""
    out = pathlib.Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        flamegraph_html(spans, skipped=skipped, source=source),
        encoding="utf-8",
    )
    return out
