"""Hierarchical trace spans with JSONL export.

A *span* measures one named region of work. Spans nest: entering a span
pushes it on a per-thread stack, so a span opened inside another records
that parent's id, and a trace viewer (or ``repro trace summary``) can
rebuild the hierarchy. Durations come from ``time.perf_counter`` (a
monotonic clock — immune to wall-clock steps); each record also carries a
``ts`` wall-clock start so spans from different processes interleave
sensibly.

Export is one JSON object per line, appended with a single ``os.write``
to an ``O_APPEND`` descriptor. On Linux such small appends are atomic, so
pool workers (forked children inherit the configured tracer) and the
parent can share one output file and their lines never interleave — the
whole run merges into a single trace. The file descriptor is re-opened
after a fork (the pid is checked on every emit) so offsets are never
shared.

Tracing is **off** by default and the disabled path is a few attribute
loads returning a shared no-op span — cheap enough to leave :func:`span`
calls on hot-ish paths permanently. Enable with
:func:`configure_tracing` (the CLI's ``--trace out.jsonl``) or the
``REPRO_TRACE_FILE`` environment variable.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "Span",
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "get_tracer",
    "span",
    "tracing_enabled",
]

#: Environment variable naming the JSONL destination (enables tracing).
TRACE_FILE_ENV = "REPRO_TRACE_FILE"


class Span:
    """One open trace region; used as a context manager."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id", "_wall", "_perf"
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self._wall = 0.0
        self._perf = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.span_id, self.parent_id = self.tracer._push()
        self._wall = time.time()
        self._perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._perf
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._pop()
        self.tracer._emit(self, duration)
        return False


class _NullSpan:
    """Shared no-op stand-in when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Appends finished spans to a JSONL file, one process-safe line each."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._fd: Optional[int] = None
        self._fd_pid: Optional[int] = None

    # ------------------------------------------------------------------
    # span stack (per thread)
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self) -> tuple:
        stack = self._stack()
        parent = stack[-1] if stack else None
        span_id = f"{os.getpid():x}.{next(self._ids):x}"
        stack.append(span_id)
        return span_id, parent

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        return Span(self, name, attrs)

    def _emit(self, span: Span, duration: float) -> None:
        record = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "pid": os.getpid(),
            "ts": round(span._wall, 6),
            "dur": round(duration, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        try:
            line = json.dumps(record, separators=(",", ":"), default=str)
        except (TypeError, ValueError):  # unserialisable attrs: keep timing
            record.pop("attrs", None)
            line = json.dumps(record, separators=(",", ":"))
        try:
            os.write(self._descriptor(), (line + "\n").encode("utf-8"))
        except OSError:
            return  # tracing must never fail the run

    def _descriptor(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._fd_pid != pid:
            # First use in this process (or we are a fork): open our own
            # descriptor so the O_APPEND offset is never shared.
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._fd_pid = pid
        return self._fd

    def close(self) -> None:
        if self._fd is not None and self._fd_pid == os.getpid():
            try:
                os.close(self._fd)
            except OSError:
                pass
        self._fd = None
        self._fd_pid = None


# ----------------------------------------------------------------------
# the process-wide tracer
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None
_INITIALIZED = False


def _active_tracer() -> Optional[Tracer]:
    global _TRACER, _INITIALIZED
    if not _INITIALIZED:
        _INITIALIZED = True
        path = os.environ.get(TRACE_FILE_ENV)
        if path:
            _TRACER = Tracer(path)
    return _TRACER


def configure_tracing(path: os.PathLike) -> Tracer:
    """Enable tracing to ``path`` (JSONL, appended) for this process.

    Also exported via ``REPRO_TRACE_FILE`` so worker processes created
    under any multiprocessing start method pick the same file up.
    """
    global _TRACER, _INITIALIZED
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(str(path))
    _INITIALIZED = True
    os.environ[TRACE_FILE_ENV] = str(path)
    return _TRACER


def disable_tracing() -> None:
    """Turn tracing off (and stop exporting it to workers)."""
    global _TRACER, _INITIALIZED
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None
    _INITIALIZED = True
    os.environ.pop(TRACE_FILE_ENV, None)


def tracing_enabled() -> bool:
    """Is a tracer currently active (or configured via the environment)?"""
    return _active_tracer() is not None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _active_tracer()


def span(name: str, **attrs: object):
    """A span under the active tracer, or a shared no-op when disabled.

    The disabled path is one module lookup returning a shared singleton,
    so callers can wrap hot regions unconditionally::

        with span("engine.dispatch", jobs=len(jobs)) as s:
            ...
            s.set(misses=misses)
    """
    tracer = _active_tracer()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)
