"""Rolling time-window request aggregation with streaming quantiles.

The cumulative :class:`~repro.obs.metrics.MetricsRegistry` answers "how
much since boot"; an operator watching live traffic needs "how much *in
the last minute*" — rates, latency percentiles and error ratios that
decay as traffic changes. This module provides that layer for the serve
surface:

* :class:`QuantileSketch` — a bounded reservoir sampler with exact
  count/sum/min/max. Up to ``capacity`` observations the quantiles are
  exact; beyond it the reservoir is a uniform sample of the stream
  (Vitter's algorithm R with a seeded, per-sketch RNG, so runs are
  reproducible), giving p50/p95/p99 estimates whose rank error shrinks
  as ``1/sqrt(capacity)``.
* :class:`RequestRollup` — a ring of fixed-width time windows per
  endpoint. Every request records its latency, status class and
  disposition (warm/cold, coalesced, batched) into the current window;
  windows older than the ring's span are recycled in place, so memory is
  bounded by ``endpoints × windows × capacity`` regardless of uptime.

Thread safety: the serve layer records from its event-loop thread while
``/metrics`` scrapes snapshot from request handlers and tests hammer it
from many threads, so every mutation and snapshot takes the rollup's
lock. The lock is held for microseconds (a reservoir poke), never across
I/O.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence

__all__ = ["QuantileSketch", "RequestRollup"]

#: Quantiles every snapshot reports, in exposition order.
SNAPSHOT_QUANTILES: Sequence[float] = (0.5, 0.95, 0.99)


class QuantileSketch:
    """Streaming quantile estimation over a bounded reservoir.

    Not thread-safe on its own — callers (the rollup) serialize access.
    """

    __slots__ = ("capacity", "count", "total", "min", "max", "_samples",
                 "_rng")

    def __init__(self, capacity: int = 512, seed: int = 2006) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            # Algorithm R: keep each of the `count` observations in the
            # reservoir with probability capacity/count.
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def samples(self) -> List[float]:
        """The current reservoir (a copy; merge fodder for snapshots)."""
        return list(self._samples)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (linear interpolation)."""
        return _quantile_of(sorted(self._samples), q)

    def quantiles(
        self, qs: Sequence[float] = SNAPSHOT_QUANTILES
    ) -> Dict[str, float]:
        """``{"0.5": ..., "0.95": ...}`` in one sort."""
        ordered = sorted(self._samples)
        return {f"{q:g}": _quantile_of(ordered, q) for q in qs}

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples.clear()


def _quantile_of(ordered: Sequence[float], q: float) -> float:
    """Interpolated quantile of an already-sorted sequence (0.0 if empty)."""
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    position = q * (len(ordered) - 1)
    low = int(position)
    if low + 1 >= len(ordered):
        return float(ordered[-1])
    fraction = position - low
    return float(ordered[low] * (1.0 - fraction) + ordered[low + 1] * fraction)


#: Disposition flags a request may carry (snapshot key order).
_DISPOSITIONS = ("warm", "cold", "coalesced", "batched")


class _Window:
    """One fixed-width time window of one endpoint's series."""

    __slots__ = ("index", "count", "sketch", "statuses", "dispositions")

    def __init__(self, capacity: int, seed: int) -> None:
        self.index = -1  # absolute window index; -1 = never used
        self.count = 0
        self.sketch = QuantileSketch(capacity=capacity, seed=seed)
        self.statuses: Dict[str, int] = {}
        self.dispositions: Dict[str, int] = {}

    def reset(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.sketch.reset()
        self.statuses.clear()
        self.dispositions.clear()


class RequestRollup:
    """Per-endpoint rolling-window request statistics.

    Parameters
    ----------
    window_seconds:
        Width of one window (the rotation period).
    windows:
        Ring length; the snapshot covers ``windows × window_seconds`` of
        history (the oldest window is partially aged out in place).
    sketch_capacity:
        Reservoir size per window (per endpoint).
    """

    def __init__(
        self,
        window_seconds: float = 10.0,
        windows: int = 6,
        sketch_capacity: int = 512,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if windows < 1:
            raise ValueError("windows must be >= 1")
        self.window_seconds = float(window_seconds)
        self.windows = int(windows)
        self.sketch_capacity = int(sketch_capacity)
        self._lock = threading.Lock()
        self._series: Dict[str, List[_Window]] = {}
        self._recorded = 0  # lifetime records (rotation-loss accounting)

    # ------------------------------------------------------------------
    def _ring_for(self, endpoint: str) -> List[_Window]:
        ring = self._series.get(endpoint)
        if ring is None:
            # Seed per (endpoint, slot) so reservoirs are independent but
            # a rerun of the same traffic reproduces the same estimates.
            ring = self._series[endpoint] = [
                _Window(self.sketch_capacity, seed=hash(endpoint) & 0xFFFF ^ i)
                for i in range(self.windows)
            ]
        return ring

    def record(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        warm: bool = False,
        coalesced: bool = False,
        batched: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Record one finished request into the current window."""
        now = time.time() if now is None else now
        index = int(now // self.window_seconds)
        status_class = f"{int(status) // 100}xx"
        with self._lock:
            self._recorded += 1
            window = self._ring_for(endpoint)[index % self.windows]
            if index > window.index:
                window.reset(index)
            # index < window.index means a late record (clock skew or a
            # completion straddling rotation): fold it into the newer
            # window occupying the slot rather than rewinding the ring —
            # rotation must be monotone or concurrent writers could
            # clobber each other's windows.
            window.count += 1
            window.sketch.observe(seconds)
            window.statuses[status_class] = (
                window.statuses.get(status_class, 0) + 1
            )
            for flag, on in (
                ("warm", warm), ("cold", not warm),
                ("coalesced", coalesced), ("batched", batched),
            ):
                if on:
                    window.dispositions[flag] = (
                        window.dispositions.get(flag, 0) + 1
                    )

    # ------------------------------------------------------------------
    def recorded(self) -> int:
        """Lifetime number of records (windows aged out included)."""
        with self._lock:
            return self._recorded

    def span_seconds(self) -> float:
        """How much history one snapshot covers."""
        return self.window_seconds * self.windows

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """Aggregate the live windows into a JSON-able summary.

        Per endpoint (and as a cross-endpoint ``total``): windowed
        request count, rate per second over the covered span, latency
        quantiles/mean/max from the merged reservoirs, status-class
        counts, error rate (4xx+5xx share) and disposition counts.
        """
        now = time.time() if now is None else now
        current = int(now // self.window_seconds)
        oldest = current - self.windows + 1
        with self._lock:
            endpoints: Dict[str, Dict[str, object]] = {}
            total_samples: List[float] = []
            total = _Aggregate()
            for endpoint, ring in sorted(self._series.items()):
                agg = _Aggregate()
                samples: List[float] = []
                for window in ring:
                    if not oldest <= window.index <= current:
                        continue  # recycled or stale slot
                    agg.add(window)
                    samples.extend(window.sketch._samples)
                if agg.count == 0:
                    continue
                endpoints[endpoint] = agg.summary(
                    samples, self.span_seconds()
                )
                total.merge(agg)
                total_samples.extend(samples)
            return {
                "window_seconds": self.window_seconds,
                "windows": self.windows,
                "span_seconds": self.span_seconds(),
                "recorded_total": self._recorded,
                "endpoints": endpoints,
                "total": total.summary(total_samples, self.span_seconds()),
            }


class _Aggregate:
    """Mutable accumulator merging windows into one summary."""

    __slots__ = ("count", "total", "max", "statuses", "dispositions")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.statuses: Dict[str, int] = {}
        self.dispositions: Dict[str, int] = {}

    def add(self, window: _Window) -> None:
        self.count += window.count
        self.total += window.sketch.total
        if window.sketch.count and window.sketch.max > self.max:
            self.max = window.sketch.max
        for status, n in window.statuses.items():
            self.statuses[status] = self.statuses.get(status, 0) + n
        for flag, n in window.dispositions.items():
            self.dispositions[flag] = self.dispositions.get(flag, 0) + n

    def merge(self, other: "_Aggregate") -> None:
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max
        for status, n in other.statuses.items():
            self.statuses[status] = self.statuses.get(status, 0) + n
        for flag, n in other.dispositions.items():
            self.dispositions[flag] = self.dispositions.get(flag, 0) + n

    def summary(
        self, samples: List[float], span: float
    ) -> Dict[str, object]:
        errors = sum(
            n for status, n in self.statuses.items()
            if status in ("4xx", "5xx")
        )
        ordered = sorted(samples)
        return {
            "count": self.count,
            "rate": self.count / span if span > 0 else 0.0,
            "mean": self.total / self.count if self.count else 0.0,
            "max": self.max,
            "quantiles": {
                f"{q:g}": _quantile_of(ordered, q)
                for q in SNAPSHOT_QUANTILES
            },
            "statuses": dict(sorted(self.statuses.items())),
            "error_rate": errors / self.count if self.count else 0.0,
            "dispositions": {
                flag: self.dispositions.get(flag, 0)
                for flag in _DISPOSITIONS
            },
        }
