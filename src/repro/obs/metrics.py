"""Zero-dependency metrics primitives.

A :class:`MetricsRegistry` hands out named :class:`Counter`,
:class:`Gauge` and :class:`Histogram` instruments. Instruments are
created on first use and shared by name, so any layer can say
``registry.counter("store.load.hit").inc()`` without coordination.

Two registries exist in practice:

* every :class:`~repro.engine.core.Engine` owns one, which backs its
  :class:`~repro.engine.stats.EngineStats` view and its store counters;
* a process-wide registry (:func:`get_metrics`) collects instrument
  readings from code that has no engine in reach — notably the pipeline
  simulator running inside a pool worker.

Everything here is plain Python on purpose: instruments sit on hot-ish
paths (once per job, never per simulated cycle) and must not pull in
anything the container lacks.

Thread safety: mutation through :meth:`Counter.inc`, :meth:`Gauge.set`
and :meth:`Histogram.observe` takes a per-instrument lock, and the
registry locks instrument creation — the background resource sampler
(:mod:`repro.obs.sampler`) shares registries with experiment threads.
Direct writes to ``Counter.value`` (the :class:`EngineStats` property
setters) stay unlocked and remain confined to the engine's own thread.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
]


class Counter:
    """Monotonically increasing value (floats allowed for seconds)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (e.g. events per second of the latest run)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


#: Default histogram bucket upper bounds (seconds-oriented, log-spaced).
DEFAULT_BUCKETS: Sequence[float] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Buckets are upper bounds; observations beyond the last bound land in
    an implicit overflow bucket. Good enough for latency distributions
    without keeping every sample.
    """

    __slots__ = (
        "name", "bounds", "bucket_counts", "count", "total", "min", "max",
        "_lock",
    )

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.bounds: List[float] = sorted(bounds or DEFAULT_BUCKETS)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                f"le_{bound:g}": count
                for bound, count in zip(self.bounds, self.bucket_counts)
            },
            "overflow": self.bucket_counts[-1],
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    A name identifies exactly one instrument; asking for the same name
    with a different instrument type is a programming error and raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Guards first-use creation: two threads asking for the same
        # name must end up sharing one instrument, not racing on it.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    self._check_free(name, self._counters)
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    self._check_free(name, self._gauges)
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    self._check_free(name, self._histograms)
                    instrument = self._histograms[name] = Histogram(
                        name, bounds
                    )
        return instrument

    def _check_free(self, name: str, own: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered as a different type"
                )

    # ------------------------------------------------------------------
    def histograms(self) -> Dict[str, Histogram]:
        """The registered histograms, by name (a shallow copy)."""
        return dict(self._histograms)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict dump of every instrument (JSON-able)."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument (instances stay registered and shared)."""
        for counter in self._counters.values():
            counter.value = 0.0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for hist in self._histograms.values():
            hist.bucket_counts = [0] * (len(hist.bounds) + 1)
            hist.count = 0
            hist.total = 0.0
            hist.min = float("inf")
            hist.max = float("-inf")


# ----------------------------------------------------------------------
# the process-wide registry
# ----------------------------------------------------------------------
_METRICS: Optional[MetricsRegistry] = None


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (for code with no engine in reach)."""
    global _METRICS
    if _METRICS is None:
        _METRICS = MetricsRegistry()
    return _METRICS


def reset_metrics() -> None:
    """Forget the process-wide registry (tests)."""
    global _METRICS
    _METRICS = None
