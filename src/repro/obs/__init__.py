"""Observability: hierarchical trace spans and a metrics registry.

Zero-dependency instrumentation threaded through the hot layers — engine
dispatch, the persistent store, pool workers, the pipeline simulator and
every experiment entry point. Tracing is off by default (the disabled
:func:`span` path is a no-op object); enable it with
``repro run ... --trace out.jsonl`` or ``REPRO_TRACE_FILE``. Metrics are
always on: instruments are plain counters touched once per job, and
:class:`~repro.engine.stats.EngineStats` is a thin view over the
engine's registry.

See :mod:`repro.obs.trace`, :mod:`repro.obs.metrics` and
:mod:`repro.obs.summary`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)
from repro.obs.summary import (
    load_spans,
    render_summary,
    summarize_spans,
    summary_text,
)
from repro.obs.trace import (
    Span,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "get_metrics",
    "get_tracer",
    "load_spans",
    "render_summary",
    "reset_metrics",
    "span",
    "summarize_spans",
    "summary_text",
    "tracing_enabled",
]
