"""Observability: tracing, metrics, benchmarks and perf-trend reports.

Zero-dependency instrumentation threaded through the hot layers — engine
dispatch, the persistent store, pool workers, the pipeline simulator and
every experiment entry point. Tracing is off by default (the disabled
:func:`span` path is a no-op object); enable it with
``repro run ... --trace out.jsonl`` or ``REPRO_TRACE_FILE``. Metrics are
always on: instruments are plain counters touched once per job (and
thread-safe, so the background :class:`ResourceSampler` can share a
registry with experiment code), and
:class:`~repro.engine.stats.EngineStats` is a thin view over the
engine's registry.

On top of those primitives sits the perf-regression layer:
:mod:`repro.obs.bench` (provenance-stamped benchmark harness and the
``BENCH_history.json`` trend store), :mod:`repro.obs.regress`
(bootstrap-CI change detection) and :mod:`repro.obs.report`
(self-contained HTML trend reports and trace flamegraphs), surfaced as
``repro bench run|compare|report`` and ``repro trace flamegraph``.

The live-serving layer adds :mod:`repro.obs.rollup` (rolling-window
SLO aggregation with streaming quantile sketches),
:mod:`repro.obs.promtext` (Prometheus text exposition + strict parser),
:mod:`repro.obs.reqlog` (JSONL request logs, request ids and the
bounded span ring behind ``GET /debug/traces``) and
:mod:`repro.obs.dashboard` (the self-contained live HTML page at
``GET /dashboard``).

See :mod:`repro.obs.trace`, :mod:`repro.obs.metrics`,
:mod:`repro.obs.summary`, :mod:`repro.obs.provenance`,
:mod:`repro.obs.sampler`, :mod:`repro.obs.bench`,
:mod:`repro.obs.regress` and :mod:`repro.obs.report`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)
from repro.obs.provenance import (
    config_hash,
    git_revision,
    provenance_stamp,
    working_tree_dirty,
)
from repro.obs.promtext import (
    parse_exposition,
    render_exposition,
)
from repro.obs.regress import (
    IMPROVED,
    NEUTRAL,
    REGRESSED,
    Comparison,
    classify,
    compare_runs,
)
from repro.obs.reqlog import RequestLog, SpanRing, new_request_id
from repro.obs.rollup import QuantileSketch, RequestRollup
from repro.obs.sampler import ResourceSampler
from repro.obs.summary import (
    load_spans,
    load_spans_counted,
    render_summary,
    summarize_spans,
    summary_text,
)
from repro.obs.trace import (
    Span,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Comparison",
    "Counter",
    "Gauge",
    "Histogram",
    "IMPROVED",
    "MetricsRegistry",
    "NEUTRAL",
    "QuantileSketch",
    "REGRESSED",
    "RequestLog",
    "RequestRollup",
    "ResourceSampler",
    "Span",
    "SpanRing",
    "Tracer",
    "classify",
    "compare_runs",
    "config_hash",
    "configure_tracing",
    "disable_tracing",
    "get_metrics",
    "get_tracer",
    "git_revision",
    "load_spans",
    "load_spans_counted",
    "new_request_id",
    "parse_exposition",
    "provenance_stamp",
    "render_exposition",
    "render_summary",
    "reset_metrics",
    "span",
    "summarize_spans",
    "summary_text",
    "tracing_enabled",
    "working_tree_dirty",
]
