"""The in-process live dashboard served at ``GET /dashboard``.

One self-contained HTML page — inline CSS, inline JavaScript, inline
SVG, **zero network references** (same contract as the bench reports in
:mod:`repro.obs.report`, whose document shell and sparkline idiom this
reuses). The page renders an initial server-side snapshot, then a small
inline script polls ``GET /metrics`` with ``Accept: application/json``
and redraws:

* per-endpoint windowed latency quantiles (p50/p95/p99), rates and
  error rates from the rollup;
* live sparklines (request rate, total p95) accumulated client-side;
* queue pressure (active/queued gauges, admission accept/reject
  counters), coalescing and batching effectiveness;
* yield-estimator quality gauges (``yield.estimate.*`` /
  ``yield.ci_halfwidth.*`` / ``yield.samples.*``) with CI bars;
* process RSS/CPU from the continuously running /proc sampler.

Everything dynamic lives in the script; the Python side only provides
the skeleton and the first snapshot, so the page keeps working (static)
even with JavaScript disabled.
"""

from __future__ import annotations

import html
import json
from typing import Dict, Optional

from repro.obs.report import html_document, sparkline_svg

__all__ = ["dashboard_html"]

_DASH_STYLE = """
.panels { display: flex; flex-wrap: wrap; gap: 1em; }
.panel { border: 1px solid #bbb; padding: 0.6em 0.9em; min-width: 240px;
         background: #fff; }
.panel h2 { margin: 0 0 0.4em 0; font-size: 1.0em; }
.big { font-size: 1.5em; font-weight: bold; }
.cibar { display: inline-block; height: 0.7em; background: #117733; }
.cierr { display: inline-block; height: 0.7em; background: #cc3311; }
.stale { color: #cc3311; font-weight: bold; }
"""

# The poller: fetch /metrics as JSON, update text nodes by id, append to
# bounded history arrays and redraw the two sparkline polylines.
_DASH_SCRIPT = """
(function () {
  "use strict";
  var HIST = 60, rates = [], p95s = [];
  function fmt(x, digits) {
    if (x === undefined || x === null || isNaN(x)) return "-";
    return Number(x).toFixed(digits === undefined ? 2 : digits);
  }
  function ms(x) { return x === undefined ? "-" : fmt(x * 1000, 2) + " ms"; }
  function text(id, value) {
    var node = document.getElementById(id);
    if (node) node.textContent = value;
  }
  function spark(id, values) {
    var svg = document.getElementById(id);
    if (!svg || values.length < 2) return;
    var w = svg.width.baseVal.value, h = svg.height.baseVal.value, pad = 3;
    var lo = Math.min.apply(null, values), hi = Math.max.apply(null, values);
    var span = (hi - lo) || 1, step = (w - 2 * pad) / (values.length - 1);
    var pts = values.map(function (v, i) {
      return (pad + i * step).toFixed(1) + "," +
             (h - pad - (v - lo) / span * (h - 2 * pad)).toFixed(1);
    }).join(" ");
    svg.innerHTML = '<polyline points="' + pts +
      '" fill="none" stroke="#4477aa" stroke-width="1.5"/>';
  }
  function counter(counters, name) { return counters[name] || 0; }
  function rows(tableId, rowsHtml) {
    var body = document.getElementById(tableId);
    if (body) body.innerHTML = rowsHtml;
  }
  function esc(s) {
    return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;");
  }
  function render(data) {
    var rollup = data.rollup || {}, total = rollup.total || {};
    var eng = data.engine || {}, proc = data.process || {};
    var gauges = eng.gauges || {}, counters = eng.counters || {};
    var pg = proc.gauges || {};
    var q = total.quantiles || {};
    text("win-count", fmt(total.count, 0));
    text("win-rate", fmt(total.rate, 2) + "/s");
    text("win-err", fmt((total.error_rate || 0) * 100, 1) + "%");
    text("lat-p50", ms(q["0.5"]));
    text("lat-p95", ms(q["0.95"]));
    text("lat-p99", ms(q["0.99"]));
    rates.push(total.rate || 0); if (rates.length > HIST) rates.shift();
    p95s.push((q["0.95"] || 0) * 1000); if (p95s.length > HIST) p95s.shift();
    spark("spark-rate", rates);
    spark("spark-p95", p95s);
    text("q-active", fmt(gauges["serve.active"], 0));
    text("q-queued", fmt(gauges["serve.queued"], 0));
    text("q-inflight", fmt(gauges["engine.inflight"], 0));
    text("q-batchpend", fmt(gauges["serve.batch.pending"], 0));
    text("q-fill", fmt(gauges["serve.batch.fill_ratio"], 2));
    text("adm-ok", fmt(counter(counters, "serve.admit.accepted"), 0));
    text("adm-429", fmt(counter(counters, "serve.admit.rejected_429"), 0));
    text("adm-503", fmt(counter(counters, "serve.admit.rejected_503"), 0));
    text("co-leader", fmt(counter(counters, "serve.coalesce.leader"), 0));
    text("co-joined", fmt(counter(counters, "serve.coalesce.joined"), 0));
    function pgauge(name) { return gauges[name] || pg[name] || 0; }
    text("proc-rss", fmt(pgauge("proc.rss_bytes") / 1048576, 1) + " MiB");
    text("proc-cpu", fmt(pgauge("proc.cpu_user_seconds") +
                         pgauge("proc.cpu_system_seconds"), 1) + " s");
    var eps = rollup.endpoints || {}, body = "";
    Object.keys(eps).sort().forEach(function (ep) {
      var s = eps[ep], sq = s.quantiles || {};
      body += "<tr><td>" + esc(ep) + "</td><td>" + fmt(s.count, 0) +
        "</td><td>" + fmt(s.rate, 2) + "</td><td>" + ms(sq["0.5"]) +
        "</td><td>" + ms(sq["0.95"]) + "</td><td>" + ms(sq["0.99"]) +
        "</td><td>" + fmt((s.error_rate || 0) * 100, 1) + "%</td></tr>";
    });
    rows("ep-rows", body);
    var allGauges = {};
    [pg, gauges].forEach(function (src) {
      Object.keys(src).forEach(function (k) { allGauges[k] = src[k]; });
    });
    var ybody = "", names = Object.keys(allGauges).filter(function (n) {
      return n.indexOf("yield.estimate.") === 0;
    }).sort();
    names.forEach(function (n) {
      var key = n.slice("yield.estimate.".length);
      var est = allGauges[n];
      var half = allGauges["yield.ci_halfwidth." + key];
      var samples = allGauges["yield.samples." + key];
      var bar = Math.round(Math.max(0, Math.min(1, est)) * 160);
      var err = Math.round(Math.max(0, Math.min(1, half || 0)) * 160);
      ybody += "<tr><td>" + esc(key) + "</td><td>" + fmt(est * 100, 2) +
        "%</td><td>&plusmn;" + fmt((half || 0) * 100, 2) + "%</td><td>" +
        fmt(samples, 0) + '</td><td><span class="cibar" style="width:' +
        bar + 'px"></span><span class="cierr" style="width:' + err +
        'px"></span></td></tr>';
    });
    rows("yield-rows", ybody);
    var server = data.server || {};
    text("uptime", fmt(server.uptime_seconds, 0) + " s");
    text("updated", new Date().toLocaleTimeString());
    var status = document.getElementById("status");
    if (status) { status.textContent = "live"; status.className = ""; }
  }
  function poll() {
    fetch("/metrics", { headers: { "Accept": "application/json" } })
      .then(function (r) { return r.json(); })
      .then(render)
      .catch(function () {
        var status = document.getElementById("status");
        if (status) { status.textContent = "stale"; status.className = "stale"; }
      });
  }
  function start() {
    poll();
    setInterval(poll, window.REPRO_REFRESH_MS || 2000);
  }
  if (document.readyState === "loading") {
    document.addEventListener("DOMContentLoaded", start);
  } else {
    start();
  }
})();
"""


def _panel(title: str, body: str) -> str:
    return (
        f'<div class="panel"><h2>{html.escape(title)}</h2>{body}</div>'
    )


def dashboard_html(
    snapshot: Optional[Dict[str, object]] = None,
    refresh_seconds: float = 2.0,
) -> str:
    """Render the dashboard page around an initial metrics ``snapshot``."""
    snapshot = snapshot or {}
    rollup = snapshot.get("rollup") or {}
    total = rollup.get("total") or {}
    quantiles = total.get("quantiles") or {}
    engine = snapshot.get("engine") or {}
    gauges = engine.get("gauges") or {}
    counters = engine.get("counters") or {}
    proc = (snapshot.get("process") or {}).get("gauges") or {}
    server = snapshot.get("server") or {}

    def g(name: str, default: float = 0.0) -> float:
        try:
            return float(gauges.get(name, default))
        except (TypeError, ValueError):
            return default

    def c(name: str) -> int:
        try:
            return int(counters.get(name, 0))
        except (TypeError, ValueError):
            return 0

    def pgauge(name: str) -> float:
        # The /proc sampler feeds the engine registry in serve mode, but
        # older snapshots kept proc.* in the process-wide one.
        try:
            return float(gauges.get(name, proc.get(name, 0.0)))
        except (TypeError, ValueError):
            return 0.0

    def q(key: str) -> str:
        value = quantiles.get(key)
        return f"{float(value) * 1e3:.2f} ms" if value is not None else "-"

    # Server-rendered first frame of each sparkline (reusing the bench
    # report's machinery); the poller redraws the polyline in place.
    rate_spark = sparkline_svg([float(total.get("rate", 0.0))]).replace(
        "<svg ", '<svg id="spark-rate" ', 1
    )
    p95_spark = sparkline_svg(
        [float(quantiles.get("0.95", 0.0) or 0.0) * 1e3]
    ).replace("<svg ", '<svg id="spark-p95" ', 1)
    panels = [
        _panel(
            "Requests (window)",
            f'<div><span class="big" id="win-count">'
            f'{int(total.get("count", 0))}</span> requests · '
            f'<span id="win-rate">{float(total.get("rate", 0.0)):.2f}/s'
            "</span> · errors "
            f'<span id="win-err">'
            f'{float(total.get("error_rate", 0.0)) * 100:.1f}%</span></div>'
            f"<div>rate {rate_spark}</div>",
        ),
        _panel(
            "Latency (window)",
            f'<div>p50 <b id="lat-p50">{q("0.5")}</b> · '
            f'p95 <b id="lat-p95">{q("0.95")}</b> · '
            f'p99 <b id="lat-p99">{q("0.99")}</b></div>'
            f"<div>p95 {p95_spark}</div>",
        ),
        _panel(
            "Queues &amp; batching",
            f'<div>active <b id="q-active">{g("serve.active"):.0f}</b> · '
            f'queued <b id="q-queued">{g("serve.queued"):.0f}</b> · '
            f'in-flight <b id="q-inflight">{g("engine.inflight"):.0f}</b>'
            "</div>"
            f'<div>batch pending <b id="q-batchpend">'
            f'{g("serve.batch.pending"):.0f}</b> · fill '
            f'<b id="q-fill">{g("serve.batch.fill_ratio"):.2f}</b></div>'
            f'<div>admitted <b id="adm-ok">{c("serve.admit.accepted")}</b> · '
            f'429 <b id="adm-429">{c("serve.admit.rejected_429")}</b> · '
            f'503 <b id="adm-503">{c("serve.admit.rejected_503")}</b></div>',
        ),
        _panel(
            "Coalescing",
            f'<div>leaders <b id="co-leader">{c("serve.coalesce.leader")}'
            "</b> · joined "
            f'<b id="co-joined">{c("serve.coalesce.joined")}</b></div>',
        ),
        _panel(
            "Process",
            f'<div>RSS <b id="proc-rss">'
            f'{pgauge("proc.rss_bytes") / 1048576:.1f} MiB</b> · '
            f'CPU <b id="proc-cpu">'
            f'{pgauge("proc.cpu_user_seconds") + pgauge("proc.cpu_system_seconds"):.1f}'
            " s</b></div>"
            f'<div>uptime <b id="uptime">'
            f'{float(server.get("uptime_seconds", 0.0)):.0f} s</b></div>',
        ),
    ]

    endpoints = rollup.get("endpoints") or {}
    endpoint_rows = "".join(
        f"<tr><td>{html.escape(ep)}</td>"
        f'<td>{int(s.get("count", 0))}</td>'
        f'<td>{float(s.get("rate", 0.0)):.2f}</td>'
        f'<td>{float((s.get("quantiles") or {}).get("0.5", 0.0)) * 1e3:.2f} ms</td>'
        f'<td>{float((s.get("quantiles") or {}).get("0.95", 0.0)) * 1e3:.2f} ms</td>'
        f'<td>{float((s.get("quantiles") or {}).get("0.99", 0.0)) * 1e3:.2f} ms</td>'
        f'<td>{float(s.get("error_rate", 0.0)) * 100:.1f}%</td></tr>'
        for ep, s in sorted(endpoints.items())
    )
    tables = (
        "<h2>Endpoints (rolling window)</h2>\n"
        "<table><thead><tr><th>endpoint</th><th>requests</th><th>rate/s</th>"
        "<th>p50</th><th>p95</th><th>p99</th><th>errors</th></tr></thead>"
        f'<tbody id="ep-rows">{endpoint_rows}</tbody></table>\n'
        "<h2>Yield estimator quality</h2>\n"
        "<table><thead><tr><th>scheme</th><th>yield</th><th>95% CI</th>"
        "<th>samples</th><th>estimate &amp; half-width</th></tr></thead>"
        '<tbody id="yield-rows"></tbody></table>'
    )

    body = (
        f'<p>status <b id="status">initial snapshot</b> · last update '
        f'<span id="updated">server render</span></p>\n'
        f'<div class="panels">{"".join(panels)}</div>\n{tables}'
    )
    refresh_ms = max(250, int(refresh_seconds * 1000))
    head_extra = (
        f"<style>{_DASH_STYLE}</style>\n"
        f"<script>window.REPRO_REFRESH_MS = {json.dumps(refresh_ms)};"
        "</script>\n"
        f"<script>{_DASH_SCRIPT}</script>\n"
    )
    return html_document("repro serve — live dashboard", body, head_extra)
