"""Prometheus text exposition (format 0.0.4) over the metrics substrate.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot — plus
the serve layer's :class:`~repro.obs.rollup.RequestRollup` windowed
summaries — as the plain-text format every Prometheus-compatible scraper
understands, with no third-party client library:

* counters become ``repro_<name>_total`` with a ``# TYPE ... counter``
  header;
* gauges become ``repro_<name>``;
* histograms become the full ``_bucket``/``_sum``/``_count`` family with
  **cumulative** ``le`` buckets ending in ``+Inf`` (the registry stores
  per-bucket counts, so the cumulation happens here);
* rollup summaries become ``repro_serve_latency_seconds`` with
  ``{endpoint,quantile}`` labels plus windowed request/rate/status
  gauges.

The module also ships :func:`parse_exposition`, a deliberately strict
parser used by the golden-format tests and the CI smoke job: it rejects
malformed names, duplicate samples, samples without a preceding ``TYPE``
line and non-float values — if our own parser accepts the output, a real
scraper will too (the reverse is not guaranteed, hence the strictness).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "metric_name",
    "render_exposition",
    "parse_exposition",
    "CONTENT_TYPE",
]

#: The content type Prometheus scrapers expect from /metrics.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Everything outside this set collapses to '_' in a metric name.
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Valid exposition metric name (the parser enforces it).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: One sample line: name, optional {labels}, value.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
)

#: One label inside a label set: name="escaped value".
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted registry name into an exposition name."""
    flat = _NAME_OK.sub("_", name.replace(".", "_"))
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat[0].isdigit():
        flat = "_" + flat
    return flat


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels(pairs: Dict[str, object]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in pairs.items()
    )
    return "{" + inner + "}"


class _Writer:
    """Accumulates families; guards against duplicate sample names."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._seen_families: set = set()

    def family(
        self, name: str, kind: str, help_text: str,
        samples: Sequence[Tuple[str, Dict[str, object], float]],
    ) -> None:
        """Emit one metric family: HELP/TYPE then its samples.

        ``samples`` entries are ``(suffix, labels, value)``; the suffix
        ("_bucket", "_sum", ...) is empty for plain counters/gauges.
        """
        if name in self._seen_families:
            return  # first writer wins (engine registry over process)
        self._seen_families.add(name)
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")
        for suffix, labels, value in samples:
            self.lines.append(
                f"{name}{suffix}{_labels(labels)} {_fmt(value)}"
            )

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _render_registry_snapshot(
    writer: _Writer, snapshot: Dict[str, object], source: str
) -> None:
    for name, value in snapshot.get("counters", {}).items():
        flat = metric_name(name)
        if not flat.endswith("_total"):
            flat += "_total"
        writer.family(
            flat, "counter", f"{name} ({source} registry counter)",
            [("", {}, float(value))],
        )
    for name, value in snapshot.get("gauges", {}).items():
        writer.family(
            metric_name(name), "gauge", f"{name} ({source} registry gauge)",
            [("", {}, float(value))],
        )
    for name, hist in snapshot.get("histograms", {}).items():
        flat = metric_name(name)
        samples: List[Tuple[str, Dict[str, object], float]] = []
        cumulative = 0
        for bound_key, count in hist.get("buckets", {}).items():
            cumulative += int(count)
            # snapshot keys look like "le_0.05"
            bound = bound_key.split("_", 1)[1]
            samples.append(("_bucket", {"le": bound}, float(cumulative)))
        samples.append(("_bucket", {"le": "+Inf"}, float(hist["count"])))
        samples.append(("_sum", {}, float(hist["sum"])))
        samples.append(("_count", {}, float(hist["count"])))
        writer.family(
            flat, "histogram", f"{name} ({source} registry histogram)",
            samples,
        )


def _render_rollup(writer: _Writer, rollup: Dict[str, object]) -> None:
    endpoints: Dict[str, Dict[str, object]] = dict(
        rollup.get("endpoints", {})
    )
    span = float(rollup.get("span_seconds", 0.0))
    latency: List[Tuple[str, Dict[str, object], float]] = []
    requests: List[Tuple[str, Dict[str, object], float]] = []
    rates: List[Tuple[str, Dict[str, object], float]] = []
    statuses: List[Tuple[str, Dict[str, object], float]] = []
    dispositions: List[Tuple[str, Dict[str, object], float]] = []
    errors: List[Tuple[str, Dict[str, object], float]] = []
    for endpoint, summary in endpoints.items():
        base = {"endpoint": endpoint}
        for q, value in summary.get("quantiles", {}).items():
            latency.append(
                ("", {"endpoint": endpoint, "quantile": q}, float(value))
            )
        latency.append(
            ("_sum", dict(base),
             float(summary["mean"]) * float(summary["count"]))
        )
        latency.append(("_count", dict(base), float(summary["count"])))
        requests.append(("", dict(base), float(summary["count"])))
        rates.append(("", dict(base), float(summary["rate"])))
        errors.append(("", dict(base), float(summary["error_rate"])))
        for status, count in summary.get("statuses", {}).items():
            statuses.append(
                ("", {"endpoint": endpoint, "class": status}, float(count))
            )
        for flag, count in summary.get("dispositions", {}).items():
            dispositions.append(
                ("", {"endpoint": endpoint, "kind": flag}, float(count))
            )
    writer.family(
        "repro_serve_latency_seconds", "summary",
        f"request latency quantiles over the last {span:g}s window",
        latency,
    )
    writer.family(
        "repro_serve_window_requests", "gauge",
        f"requests finished in the last {span:g}s, per endpoint", requests,
    )
    writer.family(
        "repro_serve_window_rate", "gauge",
        "windowed request rate per second, per endpoint", rates,
    )
    writer.family(
        "repro_serve_window_error_rate", "gauge",
        "windowed 4xx+5xx share of responses, per endpoint", errors,
    )
    writer.family(
        "repro_serve_window_responses", "gauge",
        "windowed responses per status class, per endpoint", statuses,
    )
    writer.family(
        "repro_serve_window_disposition", "gauge",
        "windowed warm/cold/coalesced/batched request counts", dispositions,
    )


def render_exposition(
    registry_snapshots: Sequence[Tuple[str, Dict[str, object]]],
    rollup: Optional[Dict[str, object]] = None,
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Render the whole exposition page.

    ``registry_snapshots`` is an ordered list of ``(source_label,
    registry.snapshot())`` pairs; when two registries carry the same
    instrument name (the serve engine registry and the process-wide one
    can both hold ``proc.*`` gauges) the **first** one wins, keeping the
    page free of duplicate samples. ``extra_gauges`` are pre-sanitized
    one-off values (server uptime, draining flag).
    """
    writer = _Writer()
    if extra_gauges:
        for name, value in extra_gauges.items():
            writer.family(
                metric_name(name), "gauge", f"{name} (server gauge)",
                [("", {}, float(value))],
            )
    if rollup is not None:
        _render_rollup(writer, rollup)
    for source, snapshot in registry_snapshots:
        _render_registry_snapshot(writer, snapshot, source)
    return writer.text()


# ----------------------------------------------------------------------
# strict parsing (tests, CI smoke)
# ----------------------------------------------------------------------
def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    return float(raw)  # raises ValueError on garbage


def parse_exposition(
    text: str,
) -> Dict[str, Dict[str, object]]:
    """Strictly parse exposition text into families.

    Returns ``{family_name: {"type": ..., "samples": [(sample_name,
    labels_dict, value), ...]}}``. Raises :class:`ValueError` on any
    deviation: unknown line shapes, samples before their TYPE header,
    invalid names, duplicate (name, labels) samples, unparsable values.
    """
    families: Dict[str, Dict[str, object]] = {}
    seen_samples: set = set()
    current: Optional[str] = None

    def family_of(sample_name: str) -> Optional[str]:
        for suffix in ("_bucket", "_sum", "_count", "_total", ""):
            if suffix and sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)] if suffix else sample_name
                if base in families or sample_name in families:
                    return sample_name if sample_name in families else base
        return sample_name if sample_name in families else None

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, name, kind = parts
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid family name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate family {name!r}")
            families[name] = {"type": kind, "samples": []}
            current = name
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name, label_blob, raw_value = match.groups()
        family = family_of(sample_name)
        if family is None or current is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no TYPE header"
            )
        labels: Dict[str, str] = {}
        if label_blob:
            inner = label_blob[1:-1]
            matched = _LABEL_RE.findall(inner)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in matched)
            if rebuilt != inner:
                raise ValueError(f"line {lineno}: malformed labels {label_blob!r}")
            for key, value in matched:
                labels[key] = (
                    value.replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
        try:
            value = _parse_value(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparsable value {raw_value!r}"
            ) from None
        dedup_key = (sample_name, tuple(sorted(labels.items())))
        if dedup_key in seen_samples:
            raise ValueError(f"line {lineno}: duplicate sample {dedup_key!r}")
        seen_samples.add(dedup_key)
        families[family]["samples"].append((sample_name, labels, value))

    # Histogram invariants: buckets cumulative, +Inf equals _count.
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        buckets = [
            (labels, value)
            for sample_name, labels, value in family["samples"]
            if sample_name == f"{name}_bucket"
        ]
        previous = 0.0
        for labels, value in buckets:
            if "le" not in labels:
                raise ValueError(f"{name}: bucket sample without le label")
            if value < previous:
                raise ValueError(f"{name}: buckets are not cumulative")
            previous = value
        counts = [
            value for sample_name, _, value in family["samples"]
            if sample_name == f"{name}_count"
        ]
        if buckets and counts and buckets[-1][1] != counts[0]:
            raise ValueError(f"{name}: +Inf bucket != count")
    return families
