"""Aggregate a JSONL trace into a human-readable report.

``repro trace summary out.jsonl`` goes through here: load every span
record (tolerating truncated/garbled lines — a killed run must still be
inspectable), aggregate wall time per span name, and list the top-N
slowest individual spans. The per-name totals line up with ``repro run
--stats``: the engine's stage timer emits a ``stage:<name>`` span around
exactly the region it books under ``stage_seconds``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "load_spans",
    "load_spans_counted",
    "summarize_spans",
    "render_summary",
    "summary_text",
]


def load_spans_counted(path: pathlib.Path) -> Tuple[List[dict], int]:
    """Parse a JSONL trace: ``(spans, skipped_line_count)``.

    Malformed, truncated or foreign lines are skipped *and counted* —
    matching the result store's corruption-tolerance policy, a killed
    run must stay inspectable, but the reader deserves to know how much
    of the trace was lost.
    """
    spans: List[dict] = []
    skipped = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if (
                isinstance(record, dict)
                and isinstance(record.get("name"), str)
                and isinstance(record.get("dur"), (int, float))
            ):
                spans.append(record)
            else:
                skipped += 1
    return spans, skipped


def load_spans(path: pathlib.Path) -> List[dict]:
    """Parse a JSONL trace; malformed or foreign lines are skipped."""
    return load_spans_counted(path)[0]


def summarize_spans(
    spans: Iterable[dict], top: int = 10, skipped: int = 0
) -> Dict[str, object]:
    """Per-name aggregates plus the ``top`` slowest individual spans."""
    by_name: Dict[str, Dict[str, float]] = {}
    pids = set()
    total = 0
    for record in spans:
        total += 1
        pid = record.get("pid")
        if pid is not None:
            pids.add(pid)
        entry = by_name.setdefault(
            record["name"],
            {"count": 0, "total_s": 0.0, "max_s": 0.0},
        )
        dur = float(record["dur"])
        entry["count"] += 1
        entry["total_s"] += dur
        if dur > entry["max_s"]:
            entry["max_s"] = dur
    for entry in by_name.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    slowest = sorted(spans, key=lambda r: float(r["dur"]), reverse=True)[:top]
    return {
        "spans": total,
        "skipped": skipped,
        "processes": sorted(pids),
        "by_name": by_name,
        "slowest": slowest,
    }


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return lines


def render_summary(summary: Dict[str, object]) -> str:
    """Text report for one :func:`summarize_spans` result."""
    lines = [
        "== trace summary ==",
        f"spans      {summary['spans']}",
        f"processes  {len(summary['processes'])} "
        f"(pids {', '.join(str(p) for p in summary['processes'])})",
    ]
    if summary.get("skipped"):
        lines.append(
            f"warning    skipped {summary['skipped']} malformed trace line(s)"
        )
    lines.extend(["", "per-span aggregates (by total time):"])
    by_name: Dict[str, Dict[str, float]] = summary["by_name"]  # type: ignore
    rows = [
        [
            name,
            str(int(entry["count"])),
            f"{entry['total_s']:.4f}",
            f"{entry['mean_s']:.4f}",
            f"{entry['max_s']:.4f}",
        ]
        for name, entry in sorted(
            by_name.items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
    ]
    lines.extend(_table(["span", "count", "total s", "mean s", "max s"], rows))
    slowest: List[dict] = summary["slowest"]  # type: ignore
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} slowest spans:")
        rows = [
            [
                record["name"],
                f"{float(record['dur']):.4f}",
                str(record.get("pid", "?")),
                json.dumps(record.get("attrs", {}), sort_keys=True),
            ]
            for record in slowest
        ]
        lines.extend(_table(["span", "dur s", "pid", "attrs"], rows))
    return "\n".join(lines)


def summary_text(path: pathlib.Path, top: int = 10) -> str:
    """Load, aggregate and render ``path`` in one call (the CLI path)."""
    spans, skipped = load_spans_counted(path)
    return render_summary(summarize_spans(spans, top=top, skipped=skipped))
