"""Statistical change detection for benchmark timings (stdlib only).

Timing samples are noisy and non-normal, so a bare "is the new median
bigger" check flags regressions on every scheduler hiccup. Instead we
bootstrap a confidence interval on the *relative median delta*
``(median(current) - median(baseline)) / median(baseline)`` and demand
that the whole interval clears a tolerance band before calling a change:

* CI entirely above ``+tolerance``  → **regressed** (slower);
* CI entirely below ``-tolerance``  → **improved** (faster);
* anything else                     → **neutral**.

The resampling RNG is seeded, so a given pair of sample sets always
yields the same verdict — CI reruns and the tests in
``tests/test_obs_bench.py`` rely on that determinism.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "IMPROVED",
    "NEUTRAL",
    "REGRESSED",
    "Comparison",
    "bootstrap_median_delta_ci",
    "classify",
    "compare_runs",
    "worst_verdict",
]

IMPROVED = "improved"
NEUTRAL = "neutral"
REGRESSED = "regressed"

#: Default half-width of the "no change" band (5% of the baseline median).
DEFAULT_TOLERANCE = 0.05

#: Default bootstrap resamples; enough for a stable 95% interval on the
#: handful-of-repeats sample sizes the bench harness produces.
DEFAULT_ITERATIONS = 2000


@dataclass(frozen=True)
class Comparison:
    """Verdict for one benchmark against its baseline."""

    bench: str
    verdict: str
    baseline_median: float
    current_median: float
    delta: float  # relative: (current - baseline) / baseline
    ci_low: float
    ci_high: float
    tolerance: float

    @property
    def percent(self) -> float:
        """The delta as a percentage (positive = slower)."""
        return self.delta * 100.0

    def describe(self) -> str:
        """One human-readable line for CLI output."""
        return (
            f"{self.bench:<28} {self.verdict:<9} "
            f"{self.baseline_median * 1e3:9.3f}ms -> "
            f"{self.current_median * 1e3:9.3f}ms  "
            f"{self.percent:+7.2f}%  "
            f"ci [{self.ci_low * 100:+.2f}%, {self.ci_high * 100:+.2f}%]"
        )


def _relative_median_delta(
    baseline: Sequence[float], current: Sequence[float]
) -> float:
    base = statistics.median(baseline)
    if base == 0.0:
        return 0.0
    return (statistics.median(current) - base) / base


def bootstrap_median_delta_ci(
    baseline: Sequence[float],
    current: Sequence[float],
    iterations: int = DEFAULT_ITERATIONS,
    confidence: float = 0.95,
    seed: int = 2006,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI on the relative median delta.

    Both sample sets are resampled with replacement ``iterations`` times;
    the ``(1 - confidence)`` tails of the resulting delta distribution
    are trimmed symmetrically. Deterministic for a given seed.
    """
    if not baseline or not current:
        raise ValueError("both sample sets must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    baseline = list(baseline)
    current = list(current)
    deltas = sorted(
        _relative_median_delta(
            rng.choices(baseline, k=len(baseline)),
            rng.choices(current, k=len(current)),
        )
        for _ in range(iterations)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = min(int(tail * iterations), iterations - 1)
    high_index = max(iterations - 1 - low_index, 0)
    return deltas[low_index], deltas[high_index]


def classify(
    baseline: Sequence[float],
    current: Sequence[float],
    bench: str = "",
    tolerance: float = DEFAULT_TOLERANCE,
    iterations: int = DEFAULT_ITERATIONS,
    confidence: float = 0.95,
    seed: int = 2006,
) -> Comparison:
    """Classify one benchmark's current samples against its baseline."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    ci_low, ci_high = bootstrap_median_delta_ci(
        baseline, current,
        iterations=iterations, confidence=confidence, seed=seed,
    )
    delta = _relative_median_delta(baseline, current)
    if ci_low > tolerance:
        verdict = REGRESSED
    elif ci_high < -tolerance:
        verdict = IMPROVED
    else:
        verdict = NEUTRAL
    return Comparison(
        bench=bench,
        verdict=verdict,
        baseline_median=statistics.median(baseline),
        current_median=statistics.median(current),
        delta=delta,
        ci_low=ci_low,
        ci_high=ci_high,
        tolerance=tolerance,
    )


def compare_runs(
    baseline: Dict[str, Sequence[float]],
    current: Dict[str, Sequence[float]],
    tolerance: float = DEFAULT_TOLERANCE,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = 2006,
) -> Tuple[List[Comparison], List[str]]:
    """Compare two runs' per-benchmark sample sets.

    Returns the comparisons for every benchmark present in both runs
    (sorted by name) plus the names present in only one of them — a
    renamed or dropped benchmark should be surfaced, not silently
    ignored.
    """
    comparisons = [
        classify(
            baseline[name], current[name], bench=name,
            tolerance=tolerance, iterations=iterations, seed=seed,
        )
        for name in sorted(set(baseline) & set(current))
    ]
    unmatched = sorted(set(baseline) ^ set(current))
    return comparisons, unmatched


def worst_verdict(comparisons: Sequence[Comparison]) -> Optional[str]:
    """The most severe verdict across ``comparisons`` (None when empty)."""
    if not comparisons:
        return None
    verdicts = {c.verdict for c in comparisons}
    if REGRESSED in verdicts:
        return REGRESSED
    if IMPROVED in verdicts:
        return IMPROVED
    return NEUTRAL
