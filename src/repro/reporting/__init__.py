"""Figure rendering without plotting dependencies.

The reproduction runs in offline environments, so the paper's figures are
rendered to standalone SVG with a small built-in canvas:

* :mod:`repro.reporting.svg` — minimal SVG document builder.
* :mod:`repro.reporting.charts` — scatter plots (Figure 8) and grouped
  bar charts (Figures 9/10) on top of it.

The CLI writes them next to the text artefacts:
``repro run fig8 --out results/`` produces ``results/fig8.svg``.
"""

from repro.reporting.svg import SvgCanvas
from repro.reporting.charts import bar_chart, scatter_chart

__all__ = ["SvgCanvas", "scatter_chart", "bar_chart"]
