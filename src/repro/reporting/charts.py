"""Chart builders for the paper's figure styles.

Two chart shapes cover the paper's evaluation figures:

* :func:`scatter_chart` — Figure 8's leakage-vs-latency cloud, with
  optional reference lines for the yield limits.
* :func:`bar_chart` — Figures 9/10's per-benchmark grouped bars.

Both return complete SVG documents as strings.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.reporting.svg import SvgCanvas

__all__ = ["scatter_chart", "bar_chart"]

#: Category palette (colour-blind safe).
PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee")

_MARGIN_LEFT = 64
_MARGIN_BOTTOM = 46
_MARGIN_TOP = 30
_MARGIN_RIGHT = 16


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    raw_step = (high - low) / count
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if step >= raw_step:
            break
    first = math.floor(low / step) * step
    ticks = []
    tick = first
    while tick <= high + step / 2:
        ticks.append(round(tick, 10))
        tick += step
    return ticks


def _axes(
    canvas: SvgCanvas,
    xlim: Tuple[float, float],
    ylim: Tuple[float, float],
    title: str,
    xlabel: str,
    ylabel: str,
):
    """Draw axes/ticks/labels; return data->pixel transforms."""
    plot_w = canvas.width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = canvas.height - _MARGIN_TOP - _MARGIN_BOTTOM

    def to_x(value: float) -> float:
        return _MARGIN_LEFT + (value - xlim[0]) / (xlim[1] - xlim[0]) * plot_w

    def to_y(value: float) -> float:
        return (
            canvas.height
            - _MARGIN_BOTTOM
            - (value - ylim[0]) / (ylim[1] - ylim[0]) * plot_h
        )

    canvas.text(canvas.width / 2, 18, title, size=13, anchor="middle")
    canvas.line(
        _MARGIN_LEFT, canvas.height - _MARGIN_BOTTOM,
        canvas.width - _MARGIN_RIGHT, canvas.height - _MARGIN_BOTTOM,
    )
    canvas.line(
        _MARGIN_LEFT, _MARGIN_TOP, _MARGIN_LEFT, canvas.height - _MARGIN_BOTTOM
    )
    for tick in _nice_ticks(*xlim):
        if not xlim[0] <= tick <= xlim[1]:
            continue
        x = to_x(tick)
        canvas.line(
            x, canvas.height - _MARGIN_BOTTOM,
            x, canvas.height - _MARGIN_BOTTOM + 4,
        )
        canvas.text(
            x, canvas.height - _MARGIN_BOTTOM + 16,
            f"{tick:g}", size=10, anchor="middle",
        )
    for tick in _nice_ticks(*ylim):
        if not ylim[0] <= tick <= ylim[1]:
            continue
        y = to_y(tick)
        canvas.line(_MARGIN_LEFT - 4, y, _MARGIN_LEFT, y)
        canvas.text(_MARGIN_LEFT - 8, y + 4, f"{tick:g}", size=10, anchor="end")
    canvas.text(
        canvas.width / 2, canvas.height - 8, xlabel, size=11, anchor="middle"
    )
    canvas.text(
        16, canvas.height / 2, ylabel, size=11, anchor="middle", rotate=-90.0
    )
    return to_x, to_y


def scatter_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    title: str,
    xlabel: str,
    ylabel: str,
    vline: Optional[float] = None,
    hline: Optional[float] = None,
    width: int = 640,
    height: int = 420,
) -> str:
    """Render a scatter plot; ``vline``/``hline`` mark yield limits."""
    if len(xs) != len(ys) or not xs:
        raise ConfigurationError("scatter needs equal, non-empty series")
    canvas = SvgCanvas(width, height)
    xlim = (min(xs), max(xs))
    ylim = (min(ys), max(ys))
    to_x, to_y = _axes(canvas, xlim, ylim, title, xlabel, ylabel)
    for x, y in zip(xs, ys):
        canvas.circle(to_x(x), to_y(y), 1.6, fill=PALETTE[0], opacity=0.45)
    if vline is not None and xlim[0] <= vline <= xlim[1]:
        canvas.line(
            to_x(vline), to_y(ylim[0]), to_x(vline), to_y(ylim[1]),
            stroke=PALETTE[1], dash="5,4",
        )
    if hline is not None and ylim[0] <= hline <= ylim[1]:
        canvas.line(
            to_x(xlim[0]), to_y(hline), to_x(xlim[1]), to_y(hline),
            stroke=PALETTE[1], dash="5,4",
        )
    return canvas.render()


def bar_chart(
    categories: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str,
    ylabel: str,
    width: int = 900,
    height: int = 420,
) -> str:
    """Render grouped bars (one group per category, one bar per series)."""
    if not categories or not series:
        raise ConfigurationError("bar chart needs categories and series")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ConfigurationError(
                f"series {name!r} length does not match categories"
            )
    canvas = SvgCanvas(width, height)
    top = max(max(values) for values in series.values())
    top = top if top > 0 else 1.0
    to_x, to_y = _axes(
        canvas,
        (0.0, float(len(categories))),
        (0.0, top * 1.1),
        title,
        "",
        ylabel,
    )
    group_width = to_x(1) - to_x(0)
    bar_width = group_width * 0.8 / len(series)
    base_y = to_y(0.0)
    for s, (name, values) in enumerate(series.items()):
        colour = PALETTE[s % len(PALETTE)]
        for c, value in enumerate(values):
            x = to_x(c) + group_width * 0.1 + s * bar_width
            y = to_y(value)
            canvas.rect(x, y, bar_width, base_y - y, fill=colour)
        # legend
        lx = canvas.width - _MARGIN_RIGHT - 120
        ly = _MARGIN_TOP + 16 * s
        canvas.rect(lx, ly, 10, 10, fill=colour)
        canvas.text(lx + 14, ly + 9, name, size=10)
    for c, label in enumerate(categories):
        canvas.text(
            to_x(c) + group_width / 2,
            canvas.height - _MARGIN_BOTTOM + 14,
            label,
            size=9,
            anchor="end",
            rotate=-40.0,
        )
    return canvas.render()
