"""A minimal SVG document builder (stdlib only).

Just enough vector drawing for the reproduction's charts: rectangles,
circles, lines, polylines and text, with numeric attributes rounded so
the output stays diff-friendly and deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.core.validation import require_positive

__all__ = ["SvgCanvas"]


def _fmt(value: float) -> str:
    """Compact, deterministic number formatting."""
    text = f"{value:.2f}".rstrip("0").rstrip(".")
    return text if text else "0"


class SvgCanvas:
    """An append-only SVG document.

    Parameters
    ----------
    width, height:
        Pixel dimensions of the viewport.
    """

    def __init__(self, width: int, height: int) -> None:
        require_positive(width, "width")
        require_positive(height, "height")
        self.width = width
        self.height = height
        self._elements: List[str] = []

    # ------------------------------------------------------------------
    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "#4477aa",
        opacity: float = 1.0,
        stroke: Optional[str] = None,
    ) -> None:
        """Append a rectangle."""
        stroke_attr = f' stroke="{stroke}"' if stroke else ""
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(width)}" '
            f'height="{_fmt(height)}" fill="{fill}" '
            f'fill-opacity="{_fmt(opacity)}"{stroke_attr}/>'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "#4477aa",
        opacity: float = 1.0,
    ) -> None:
        """Append a circle."""
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}" fill-opacity="{_fmt(opacity)}"/>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "#333333",
        width: float = 1.0,
        dash: Optional[str] = None,
    ) -> None:
        """Append a line segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}"{dash_attr}/>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: str = "#333333",
        width: float = 1.0,
    ) -> None:
        """Append an open polyline."""
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 11,
        anchor: str = "start",
        rotate: Optional[float] = None,
        fill: str = "#222222",
    ) -> None:
        """Append a text label."""
        transform = (
            f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
            if rotate is not None
            else ""
        )
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{escape(content)}</text>'
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The complete SVG document."""
        body = "\n".join(f"  {element}" for element in self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect x="0" y="0" width="{self.width}" '
            f'height="{self.height}" fill="#ffffff"/>\n'
            f"{body}\n</svg>\n"
        )

    @property
    def element_count(self) -> int:
        """Number of drawn elements (useful in tests)."""
        return len(self._elements)
