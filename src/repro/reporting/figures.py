"""SVG renderings of the paper's figures from experiment results."""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult
from repro.reporting.charts import bar_chart, scatter_chart

__all__ = ["figure_svg"]


def figure_svg(result: ExperimentResult) -> Optional[str]:
    """Render the SVG counterpart of an experiment, if it has one.

    Returns ``None`` for table-shaped experiments.
    """
    if result.experiment == "fig8":
        return scatter_chart(
            xs=result.data["latency_ns"],
            ys=result.data["normalized_leakage"],
            title="Figure 8: normalized leakage vs cache access latency",
            xlabel="access latency (ns)",
            ylabel="leakage / population average",
            hline=3.0,  # the nominal leakage limit
        )
    if result.experiment in ("fig9", "fig10", "sec45"):
        series = result.data["series"]
        categories = list(next(iter(series.values())))
        titles = {
            "fig9": "Figure 9: CPI increase for configuration 3-1-0",
            "fig10": "Figure 10: CPI increase for configuration 2-2-0",
            "sec45": "Section 4.5: naive binning CPI overhead",
        }
        return bar_chart(
            categories=categories,
            series={
                name: [100 * values[c] for c in categories]
                for name, values in series.items()
            },
            title=titles[result.experiment],
            ylabel="CPI increase [%]",
        )
    return None
