"""Estimator comparison — samples-per-CI-width across the four kinds.

Not a paper figure: this experiment quantifies the statistical
efficiency of the smart yield estimators against brute force. For every
paper constraint policy it runs the fixed, adaptive, stratified and
importance-sampling estimators at a matched CI target and tabulates the
estimate, interval, sample count and effective sample size — the
"how many chips bought how tight an interval" view the bench suite and
the obs gauges track over time.
"""

from __future__ import annotations

from repro.engine import get_engine
from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.yieldmodel.constraints import PAPER_POLICIES
from repro.yieldmodel.estimators import ESTIMATOR_KINDS, EstimatorSpec

__all__ = ["run", "DEFAULT_CI_TARGET"]

#: CI half-width every sequential estimator stops at (matched across
#: kinds so sample counts are comparable).
DEFAULT_CI_TARGET = 0.02


def _specs(base: EstimatorSpec, chips: int) -> dict:
    """One spec per kind, sharing the base's stopping parameters.

    Pilot sizes are clamped to the chip budget: the stratified pilot
    must leave at least half the budget for Neyman rounds and the IS
    pilot at least two thirds for tilted draws, or small smoke-test
    runs (``repro run all --chips 150``) would trip the estimators'
    no-room-beyond-the-pilot guards.
    """
    common = dict(
        ci_target=base.ci_target,
        batch_size=base.batch_size,
        confidence=base.confidence,
    )
    per_stratum = max(
        4, min(base.pilot_chips // base.strata, (chips // 2) // base.strata)
    )
    stratified_pilot = max(8, per_stratum * base.strata)
    is_pilot = max(8, min(base.pilot_chips, chips // 3))
    return {
        "fixed": EstimatorSpec(kind="fixed"),
        "adaptive": EstimatorSpec(kind="adaptive", **common),
        "stratified": EstimatorSpec(
            kind="stratified", pilot_chips=stratified_pilot,
            strata=base.strata, **common,
        ),
        "is": EstimatorSpec(
            kind="is", pilot_chips=is_pilot,
            tilt_scale=base.tilt_scale, **common,
        ),
    }


def run(settings: ExperimentSettings) -> ExperimentResult:
    """Compare all four estimators at a matched CI target."""
    engine = get_engine()
    base = engine.config.estimator
    if base is None or base.ci_target is None:
        ci_target = (
            base.ci_target if base is not None and base.ci_target is not None
            else DEFAULT_CI_TARGET
        )
        base = EstimatorSpec(kind="adaptive", ci_target=ci_target)
    specs = _specs(base, settings.chips)
    rows = []
    data: dict = {"ci_target": base.ci_target, "policies": {}}
    for policy in PAPER_POLICIES:
        policy_data: dict = {}
        for kind in ESTIMATOR_KINDS:
            report = engine.estimate(settings, policy, estimator=specs[kind])
            kind_data = {}
            for estimate in report.estimates:
                width = 2.0 * estimate.ci_halfwidth
                rows.append([
                    policy.name,
                    kind,
                    estimate.figure,
                    round(estimate.estimate, 4),
                    round(estimate.ci_low, 4),
                    round(estimate.ci_high, 4),
                    estimate.samples,
                    round(estimate.ess, 1),
                    round(estimate.samples / width, 1) if width > 0 else "",
                ])
                kind_data[estimate.figure] = {
                    "estimate": estimate.estimate,
                    "ci_low": estimate.ci_low,
                    "ci_high": estimate.ci_high,
                    "samples": estimate.samples,
                    "ess": estimate.ess,
                }
            policy_data[kind] = kind_data
        data["policies"][policy.name] = policy_data
    return ExperimentResult(
        experiment="estimators",
        title=(
            "Estimator comparison: fixed vs adaptive vs stratified vs IS "
            f"(matched CI target {base.ci_target})"
        ),
        headers=[
            "policy", "kind", "figure", "yield", "ci_low", "ci_high",
            "samples", "ess", "samples/width",
        ],
        rows=rows,
        notes=[
            "Lower samples at an equal (or tighter) interval is better;",
            "ess is the unweighted-chip equivalent of a weighted sample.",
            "All kinds are bit-deterministic for (seed, spec) at any",
            "worker count and are cached under their spec identity.",
        ],
        data=data,
    )
