"""Experiment registry and front door.

Maps experiment ids to their run functions; the CLI and the benchmark
harness go through :func:`run_experiment`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.engine import get_engine
from repro.experiments import estimators, fig1, fig8, sec42, sensor_study
from repro.experiments.designspace import (
    run_ablation_assoc,
    run_ablation_temperature,
)
from repro.experiments.ablations import run_ablation_corr, run_ablation_lbb
from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.experiments.losstables import (
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.percpi import run_fig9, run_fig10, run_sec45
from repro.experiments import table6

__all__ = ["EXPERIMENTS", "available_experiments", "run_experiment"]

#: Experiment id -> run function.
EXPERIMENTS: Dict[str, Callable[[ExperimentSettings], ExperimentResult]] = {
    "fig1": fig1.run,
    "fig8": fig8.run,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": table6.run,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "sec42": sec42.run,
    "sec45": run_sec45,
    "ablation_corr": run_ablation_corr,
    "ablation_lbb": run_ablation_lbb,
    "ablation_sensor": sensor_study.run,
    "ablation_assoc": run_ablation_assoc,
    "ablation_temperature": run_ablation_temperature,
    "estimators": estimators.run,
}


def available_experiments() -> List[str]:
    """All experiment ids, in presentation order."""
    return list(EXPERIMENTS)


def run_experiment(
    name: str, settings: Optional[ExperimentSettings] = None
) -> ExperimentResult:
    """Run one experiment by id."""
    if name not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        )
    if settings is None:
        settings = ExperimentSettings()
    # Book the experiment's wall time as an engine stage so both
    # `repro run --stats` and `repro trace summary` (the stage timer
    # emits a `stage:experiment:<name>` span) break a run down per
    # artefact.
    engine = get_engine()
    engine.metrics.counter(f"experiment.runs.{name}").inc()
    with engine.stats.stage(f"experiment:{name}"):
        return EXPERIMENTS[name](settings)
