"""Figure 1 — yield factors for different process technologies.

Figure 1 is background data the paper reproduces from Jones [18]: the
nominal yield of each technology generation and the attribution of the
losses to defect density, lithography, and parametric effects, showing
parametric loss becoming the dominant inhibitor from 0.18 um down. The
series below digitise that chart; the experiment renders the same stacked
breakdown and checks its internal consistency.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ExperimentSettings

__all__ = ["run", "TECHNOLOGY_NODES", "YIELD_FACTORS"]

#: Technology nodes (micron), oldest first — the paper's x axis.
TECHNOLOGY_NODES = ("0.35", "0.25", "0.18", "0.13", "0.09")

#: Digitised stacked percentages per node:
#: (defect-density loss, lithography loss, parametric loss, yield).
YIELD_FACTORS = {
    "0.35": (5.0, 2.0, 1.0, 92.0),
    "0.25": (7.0, 3.0, 4.0, 86.0),
    "0.18": (9.0, 5.0, 11.0, 75.0),
    "0.13": (10.0, 7.0, 19.0, 64.0),
    "0.09": (11.0, 9.0, 28.0, 52.0),
}


def run(settings: ExperimentSettings) -> ExperimentResult:
    """Render the Figure 1 breakdown."""
    rows = []
    for node in TECHNOLOGY_NODES:
        defect, litho, parametric, yield_pct = YIELD_FACTORS[node]
        rows.append(
            [node, defect, litho, parametric, yield_pct,
             defect + litho + parametric + yield_pct]
        )
    return ExperimentResult(
        experiment="fig1",
        title=(
            "Figure 1: yield factors by technology node "
            "(% of manufactured chips; literature data [18])"
        ),
        headers=[
            "node(um)", "defect", "litho", "parametric", "yield", "total",
        ],
        rows=rows,
        notes=[
            "Parametric loss overtakes defect+litho from the 0.13 um node,",
            "which is the motivation for the paper's yield-aware schemes.",
        ],
        data={"factors": dict(YIELD_FACTORS)},
    )
