"""Tables 2-5 — sources of yield loss and constraint sensitivity.

Tables 2 and 3 break the failing chips down by reason of loss (leakage;
delay with 1..4 violating ways) and report the residual losses under each
scheme, for the regular power-down cache (Table 2) and the horizontal
power-down cache (Table 3). Tables 4 and 5 repeat the totals under the
relaxed (4x leakage, mean+1.5 sigma) and strict (2x, mean+0.5 sigma)
constraint policies.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    population,
    scheme_set,
)
from repro.yieldmodel.analysis import LossBreakdown
from repro.yieldmodel.constraints import RELAXED_POLICY, STRICT_POLICY

__all__ = ["run_table2", "run_table3", "run_table4", "run_table5"]

#: Paper values for the notes (reason-ordered: leakage, delay 1..4, total).
_PAPER_TABLE2 = {
    "base": (138, 126, 36, 23, 16, 339),
    "YAPD": (33, 0, 36, 23, 16, 108),
    "VACA": (138, 34, 20, 19, 15, 226),
    "Hybrid": (33, 0, 7, 11, 13, 64),
}
_PAPER_TABLE3 = {
    "base": (138, 142, 33, 29, 20, 362),
    "H-YAPD": (26, 0, 33, 24, 17, 100),
    "VACA": (138, 38, 17, 21, 19, 233),
    "Hybrid-H": (26, 0, 6, 12, 16, 60),
}


def _breakdown_result(
    experiment: str,
    title: str,
    breakdown: LossBreakdown,
    paper: dict,
) -> ExperimentResult:
    scheme_names = list(breakdown.scheme_losses)
    headers = ["reason of loss", "# chips"] + scheme_names
    rows: List[List[object]] = []
    for reason, base, losses in breakdown.rows():
        rows.append(
            [reason.value, base] + [losses[name] for name in scheme_names]
        )
    rows.append(
        ["total", breakdown.base_total]
        + [breakdown.scheme_total(name) for name in scheme_names]
    )
    notes = [
        "Yield: base {:.1%}".format(breakdown.yield_with())
        + "".join(
            f", {name} {breakdown.yield_with(name):.1%}" for name in scheme_names
        ),
        "Loss reduction: "
        + ", ".join(
            f"{name} {breakdown.loss_reduction(name):.1%}"
            for name in scheme_names
        ),
        "Paper totals (2000 chips): "
        + ", ".join(f"{k} {v[-1]}" for k, v in paper.items()),
    ]
    return ExperimentResult(
        experiment=experiment,
        title=title,
        headers=headers,
        rows=rows,
        notes=notes,
        data={"breakdown": breakdown, "paper": paper},
    )


def run_table2(settings: ExperimentSettings) -> ExperimentResult:
    """Table 2: sources of yield loss, regular power-down cache."""
    pop = population(settings)
    breakdown = pop.breakdown(scheme_set(horizontal=False), horizontal=False)
    return _breakdown_result(
        "table2",
        "Table 2: sources of yield loss for regular power-down",
        breakdown,
        _PAPER_TABLE2,
    )


def run_table3(settings: ExperimentSettings) -> ExperimentResult:
    """Table 3: sources of yield loss, horizontal power-down cache."""
    pop = population(settings)
    breakdown = pop.breakdown(scheme_set(horizontal=True), horizontal=True)
    return _breakdown_result(
        "table3",
        "Table 3: sources of yield loss for horizontal power-down "
        "(H-YAPD organisation, +2.5% latency)",
        breakdown,
        _PAPER_TABLE3,
    )


def _totals_result(
    experiment: str, title: str, settings: ExperimentSettings, horizontal: bool
) -> ExperimentResult:
    pop = population(settings)
    schemes = scheme_set(horizontal)
    scheme_names = [scheme.name for scheme in schemes]
    headers = ["constraints", "# chips"] + scheme_names
    rows: List[List[object]] = []
    breakdowns = {}
    for policy in (RELAXED_POLICY, STRICT_POLICY):
        repop = pop.reconstrained(policy)
        breakdown = repop.breakdown(schemes, horizontal=horizontal)
        breakdowns[policy.name] = breakdown
        rows.append(
            [policy.name, breakdown.base_total]
            + [breakdown.scheme_total(name) for name in scheme_names]
        )
    paper = (
        "Paper (2000 chips): relaxed 191/51/131/25, strict 752/224/516/146"
        if horizontal
        else "Paper (2000 chips): relaxed 184/51/124/25, strict 727/234/503/144"
    )
    hybrid_name = scheme_names[-1]
    notes = [
        paper,
        "Hybrid yields: relaxed {:.1%}, strict {:.1%}".format(
            breakdowns["relaxed"].yield_with(hybrid_name),
            breakdowns["strict"].yield_with(hybrid_name),
        ),
    ]
    return ExperimentResult(
        experiment=experiment,
        title=title,
        headers=headers,
        rows=rows,
        notes=notes,
        data={"breakdowns": breakdowns},
    )


def run_table4(settings: ExperimentSettings) -> ExperimentResult:
    """Table 4: relaxed/strict totals, regular power-down."""
    return _totals_result(
        "table4",
        "Table 4: total yield losses for relaxed and strict constraints "
        "(regular power-down)",
        settings,
        horizontal=False,
    )


def run_table5(settings: ExperimentSettings) -> ExperimentResult:
    """Table 5: relaxed/strict totals, horizontal power-down."""
    return _totals_result(
        "table5",
        "Table 5: total yield losses for relaxed and strict constraints "
        "(horizontal power-down)",
        settings,
        horizontal=True,
    )
