"""Section 4.2 — the H-YAPD organisation's access-latency overhead.

The paper measures a 2.5% average access-latency increase for the H-YAPD
post-decoder organisation in HSPICE. In the reproduction that overhead is
a technology constant applied by the circuit model; this experiment
verifies it end to end: nominal path delays of both organisations and the
population-mean overhead under process variation (which stays 2.5% since
the overhead is multiplicative).
"""

from __future__ import annotations

from repro.circuit import CacheCircuitModel
from repro.core import units
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    population,
)

__all__ = ["run"]


def run(settings: ExperimentSettings) -> ExperimentResult:
    """Compare regular vs H-YAPD organisation delays."""
    regular = CacheCircuitModel(hyapd=False)
    horizontal = CacheCircuitModel(hyapd=True)
    nominal_regular = regular.nominal().access_delay
    nominal_horizontal = horizontal.nominal().access_delay

    pop = population(settings)
    mean_regular = sum(
        case.circuit.access_delay for case in pop.cases
    ) / len(pop.cases)
    mean_horizontal = sum(
        case.circuit.access_delay for case in pop.h_cases
    ) / len(pop.h_cases)

    base_losses = sum(1 for case in pop.cases if not case.passes)
    h_losses = sum(1 for case in pop.h_cases if not case.passes)

    rows = [
        ["nominal access delay, regular (ps)", round(units.to_ps(nominal_regular), 1)],
        ["nominal access delay, H-YAPD (ps)", round(units.to_ps(nominal_horizontal), 1)],
        ["nominal overhead", f"{nominal_horizontal / nominal_regular - 1:.2%}"],
        ["population mean delay, regular (ps)", round(units.to_ps(mean_regular), 1)],
        ["population mean delay, H-YAPD (ps)", round(units.to_ps(mean_horizontal), 1)],
        ["population overhead", f"{mean_horizontal / mean_regular - 1:.2%}"],
        ["base losses, regular architecture", base_losses],
        ["base losses, H-YAPD architecture", h_losses],
    ]
    return ExperimentResult(
        experiment="sec42",
        title="Section 4.2: H-YAPD organisation latency overhead",
        headers=["quantity", "value"],
        rows=rows,
        notes=[
            "Paper: +2.5% average access latency; base loss grows from "
            "16.9% to 18.1% of 2000 chips.",
        ],
        data={
            "nominal_overhead": nominal_horizontal / nominal_regular - 1,
            "base_losses": base_losses,
            "h_losses": h_losses,
        },
    )
