"""Design-space studies beyond the paper's fixed 4-way, 85C setup.

* ``ablation_assoc`` — associativity sweep. YAPD's granularity is one
  way, so its cost and its rescue reach scale with associativity: a
  2-way cache loses half its capacity per rescue, an 8-way only an
  eighth, and more ways mean more chances that all-but-one stay fast.
  The sweep re-runs the yield pipeline with 2-, 4- and 8-way
  organisations (per-way capacity held at the paper's 4 KB).
* ``ablation_temperature`` — binning temperature sweep. Leakage is
  measured at a binning temperature; the thermal models (leakage ~T^2
  with a T-scaled swing, mobility falling with T) shift both the leakage
  spread and the delay distribution, moving the balance between the two
  loss mechanisms.
"""

from __future__ import annotations

from typing import List

from repro.circuit.organization import CacheOrganization
from repro.circuit.technology import TECH45
from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.schemes import Hybrid, VACA, YAPD
from repro.variation.sampling import CacheVariationSampler
from repro.variation.spatial import MeshLayout
from repro.yieldmodel import LossReason, YieldStudy
from repro.yieldmodel.statistics import scheme_yield_interval

__all__ = ["run_ablation_assoc", "run_ablation_temperature"]

#: (ways, mesh rows, mesh cols) sweep points; per-way capacity fixed.
_ASSOC_SWEEP = ((2, 1, 2), (4, 2, 2), (8, 2, 4))


def run_ablation_assoc(settings: ExperimentSettings) -> ExperimentResult:
    """Yield pipeline at 2/4/8 ways (the paper evaluates only 4)."""
    chips = min(settings.chips, 800)
    rows: List[List[object]] = []
    data = {}
    for ways, mesh_rows, mesh_cols in _ASSOC_SWEEP:
        sampler = CacheVariationSampler(
            mesh=MeshLayout(rows=mesh_rows, cols=mesh_cols), num_ways=ways
        )
        organization = CacheOrganization(num_ways=ways)
        pop = YieldStudy(
            seed=settings.seed,
            count=chips,
            sampler=sampler,
            organization=organization,
        ).run()
        bd = pop.breakdown([YAPD(), VACA(), Hybrid()])
        low, high = scheme_yield_interval(pop, Hybrid())
        rows.append(
            [
                ways,
                organization.capacity_bytes // 1024,
                bd.base_total,
                f"{bd.loss_reduction('YAPD'):.1%}",
                f"{bd.loss_reduction('VACA'):.1%}",
                f"{bd.loss_reduction('Hybrid'):.1%}",
                f"[{low:.1%}, {high:.1%}]",
            ]
        )
        data[ways] = {
            "base": bd.base_total,
            "yapd": bd.loss_reduction("YAPD"),
            "vaca": bd.loss_reduction("VACA"),
            "hybrid": bd.loss_reduction("Hybrid"),
        }
    return ExperimentResult(
        experiment="ablation_assoc",
        title=(
            f"Ablation: associativity sweep ({chips} chips/point, "
            "per-way capacity fixed at 4 KB)"
        ),
        headers=[
            "ways",
            "capacity (KB)",
            "base losses",
            "YAPD",
            "VACA",
            "Hybrid",
            "Hybrid yield 95% CI",
        ],
        rows=rows,
        notes=[
            "Lower associativity makes one power-down *stronger* (one of "
            "two ways is half the leakage) but costlier in capacity; at "
            "high associativity more ways can violate at once, so the "
            "one-disable budget rescues a smaller share.",
        ],
        data=data,
    )


#: Binning temperatures (K): room, the calibration point (85C), and hot.
_TEMPERATURES = (300.0, 358.0, 400.0)


def run_ablation_temperature(settings: ExperimentSettings) -> ExperimentResult:
    """Yield-loss composition vs binning temperature."""
    chips = min(settings.chips, 800)
    rows: List[List[object]] = []
    data = {}
    for temperature in _TEMPERATURES:
        tech = TECH45.replace(temperature=temperature)
        pop = YieldStudy(seed=settings.seed, count=chips, tech=tech).run()
        bd = pop.breakdown([Hybrid()])
        leak = bd.base_counts.get(LossReason.LEAKAGE, 0)
        delay = bd.base_total - leak
        rows.append(
            [
                f"{temperature - 273.15:.0f}C",
                bd.base_total,
                leak,
                delay,
                f"{bd.loss_reduction('Hybrid'):.1%}",
                f"{bd.yield_with('Hybrid'):.1%}",
            ]
        )
        data[temperature] = {
            "base": bd.base_total,
            "leakage": leak,
            "delay": delay,
        }
    return ExperimentResult(
        experiment="ablation_temperature",
        title=(
            f"Ablation: binning temperature sweep ({chips} chips/point; "
            "limits re-derived per temperature)"
        ),
        headers=[
            "binning temp",
            "base losses",
            "leakage losses",
            "delay losses",
            "Hybrid reduction",
            "Hybrid yield",
        ],
        rows=rows,
        notes=[
            "Cold binning widens the *relative* leakage spread (the swing "
            "shrinks with T) while speeding paths up - the loss mix shifts "
            "toward leakage; hot binning does the opposite.",
        ],
        data=data,
    )
