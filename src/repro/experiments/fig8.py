"""Figure 8 — normalized leakage vs access latency scatter.

The paper plots, for the 2000 simulated caches, each chip's total leakage
power (normalized to the population average) against its access latency,
showing the wide leakage spread and the inverse leakage/delay correlation
(fast chips leak). We regenerate the same scatter, summarise it as an
ASCII density grid, and report the correlation and the chips beyond the
nominal limits.
"""

from __future__ import annotations

import math
from typing import List

from repro.core import units
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    population,
)

__all__ = ["run", "density_grid"]

_GRID_COLS = 48
_GRID_ROWS = 14
_SHADES = " .:-=+*#%@"


def density_grid(xs: List[float], ys: List[float]) -> str:
    """Render points as an ASCII density grid (y axis increasing upward)."""
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    counts = [[0] * _GRID_COLS for _ in range(_GRID_ROWS)]
    for x, y in zip(xs, ys):
        col = min(int((x - xmin) / xspan * _GRID_COLS), _GRID_COLS - 1)
        row = min(int((y - ymin) / yspan * _GRID_ROWS), _GRID_ROWS - 1)
        counts[row][col] += 1
    peak = max(max(row) for row in counts) or 1
    lines = []
    for row in reversed(counts):
        line = "".join(
            _SHADES[min(int(math.sqrt(c / peak) * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            for c in row
        )
        lines.append("|" + line + "|")
    return "\n".join(lines)


def run(settings: ExperimentSettings) -> ExperimentResult:
    """Regenerate the Figure 8 scatter for the regular architecture."""
    pop = population(settings)
    norm_leak, delays = pop.scatter(horizontal=False)
    delays_ns = [units.to_ns(d) for d in delays]

    n = len(norm_leak)
    mean_delay = sum(delays_ns) / n
    mx = sum(norm_leak) / n
    cov = sum((x - mx) * (y - mean_delay) for x, y in zip(norm_leak, delays_ns)) / n
    sx = math.sqrt(sum((x - mx) ** 2 for x in norm_leak) / n)
    sy = math.sqrt(sum((y - mean_delay) ** 2 for y in delays_ns) / n)
    corr = cov / (sx * sy) if sx and sy else 0.0

    delay_limit_ns = units.to_ns(pop.constraints.delay_limit)
    leak_violators = sum(1 for x in norm_leak if x > 3.0)
    delay_violators = sum(1 for y in delays_ns if y > delay_limit_ns)

    rows = [
        ["chips", n],
        ["normalized leakage: max", round(max(norm_leak), 2)],
        ["normalized leakage: p99", round(sorted(norm_leak)[int(0.99 * n)], 2)],
        ["access latency (ns): mean", round(mean_delay, 3)],
        ["access latency (ns): sigma/mean", round(sy / mean_delay, 3)],
        ["corr(normalized leakage, latency)", round(corr, 3)],
        ["chips beyond 3x average leakage", leak_violators],
        ["chips beyond delay limit (mean+sigma)", delay_violators],
    ]
    grid = density_grid(delays_ns, norm_leak)
    return ExperimentResult(
        experiment="fig8",
        title="Figure 8: normalized leakage vs cache access latency (scatter)",
        headers=["statistic", "value"],
        rows=rows,
        notes=[
            "Density grid (x: latency, y: normalized leakage; darker = more chips):",
            grid,
            "The fast tail leaks (inverse correlation), as in the paper's Figure 8.",
        ],
        data={
            "normalized_leakage": norm_leak,
            "latency_ns": delays_ns,
            "correlation": corr,
        },
    )
