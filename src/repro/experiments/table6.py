"""Table 6 — performance degradation per saved cache configuration.

For every way-latency configuration the paper's Monte Carlo converted
from loss to gain (``a-b-c`` = a ways at 4 cycles, b at 5, c at 6+), the
table reports how often it occurred (the Hybrid-saved chip census) and
the average SPEC2000 CPI degradation each scheme pays to save it:

* YAPD saves configurations with at most one slow way by disabling it:
  performance is the 3-way all-4-cycle cache (one number).
* VACA saves configurations without 6+ ways by running b ways at 5
  cycles.
* Hybrid behaves like VACA when possible and otherwise disables the
  (single) 6+ way, leaving the rest at up to 5 cycles.

The bottom row reproduces the paper's weighted sums: each scheme's
average degradation over the chips *it* saves, weighting configurations
by their frequency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    benchmark_names,
    population,
    simulate_config,
    simulate_many,
)
from repro.schemes import Hybrid
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["run", "CONFIG_ORDER", "config_way_cycles", "average_degradation"]

#: Table 6 row order (paper's ordering).
CONFIG_ORDER: Tuple[str, ...] = (
    "3-1-0",
    "2-2-0",
    "1-3-0",
    "0-4-0",
    "3-0-1",
    "2-1-1",
    "1-2-1",
    "0-3-1",
    "4-0-0",
)

#: Paper's Table 6 degradations [%] per (config, scheme); None = N/A.
PAPER_TABLE6: Dict[str, Tuple[Optional[float], Optional[float], Optional[float]]] = {
    "3-1-0": (1.08, 1.81, 1.81),
    "2-2-0": (None, 3.32, 3.32),
    "1-3-0": (None, 5.47, 5.47),
    "0-4-0": (None, 6.42, 6.42),
    "3-0-1": (1.08, None, 1.08),
    "2-1-1": (None, None, 3.65),
    "1-2-1": (None, None, 5.49),
    "0-3-1": (None, None, 7.39),
    "4-0-0": (1.08, None, 1.08),
}


def _parse(config: str) -> Tuple[int, int, int]:
    a, b, c = (int(part) for part in config.split("-"))
    return a, b, c


def config_way_cycles(
    config: str, scheme: str
) -> Optional[Tuple[Optional[int], ...]]:
    """Post-rescue way latencies for ``scheme`` on ``config`` (None = N/A).

    Disabled ways are ``None`` entries; the 6+ way is the one Hybrid
    disables.
    """
    a, b, c = _parse(config)
    four, five = BASE_ACCESS_CYCLES, BASE_ACCESS_CYCLES + 1
    if scheme == "YAPD":
        # One slow-or-leaky way may be disabled; the rest must be fast.
        if b + c > 1 or a < 3:
            return None
        if b + c == 1:
            return (four,) * a + (None,)
        return (four, four, four, None)  # 4-0-0: drop the leakiest way
    if scheme == "VACA":
        if c > 0 or (a == 4 and b == 0):
            return None
        return (four,) * a + (five,) * b
    if scheme == "Hybrid":
        if c > 1:
            return None
        if c == 1:
            return (four,) * a + (five,) * b + (None,)
        if a == 4 and b == 0:
            return (four, four, four, None)  # leakage-limited chip
        return (four,) * a + (five,) * b
    raise ValueError(f"unknown scheme {scheme!r}")


def average_degradation(
    settings: ExperimentSettings,
    way_cycles: Tuple[Optional[int], ...],
) -> float:
    """Mean fractional CPI degradation of a configuration over the suite."""
    degs = []
    for name in benchmark_names(settings):
        base = simulate_config(settings, name)
        result = simulate_config(settings, name, way_cycles=way_cycles)
        degs.append(result.degradation_vs(base))
    return sum(degs) / len(degs)


def run(settings: ExperimentSettings) -> ExperimentResult:
    """Regenerate Table 6."""
    pop = population(settings)
    census = pop.configuration_census(Hybrid(), horizontal=False)

    schemes = ("YAPD", "VACA", "Hybrid")

    # Prefetch every distinct (benchmark, way-config) simulation the table
    # needs — plus the healthy baselines — as one parallel batch.
    needed = {
        cycles
        for config in CONFIG_ORDER
        for scheme in schemes
        if (cycles := config_way_cycles(config, scheme)) is not None
    }
    simulate_many(
        settings,
        [(name, None, None) for name in benchmark_names(settings)]
        + [
            (name, cycles, None)
            for cycles in sorted(needed, key=str)
            for name in benchmark_names(settings)
        ],
    )

    deg_cache: Dict[Tuple[Optional[int], ...], float] = {}

    def deg_for(config: str, scheme: str) -> Optional[float]:
        cycles = config_way_cycles(config, scheme)
        if cycles is None:
            return None
        if cycles not in deg_cache:
            deg_cache[cycles] = average_degradation(settings, cycles)
        return deg_cache[cycles]

    rows: List[List[object]] = []
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for config in CONFIG_ORDER:
        count = census.get(config, 0)
        entry = {scheme: deg_for(config, scheme) for scheme in schemes}
        table[config] = entry
        rows.append(
            [config, count]
            + [
                "N/A" if entry[s] is None else round(entry[s] * 100, 2)
                for s in schemes
            ]
        )

    # Weighted sums over each scheme's own saved chips.
    weighted: Dict[str, float] = {}
    for scheme in schemes:
        saved = [
            (config, census.get(config, 0))
            for config in CONFIG_ORDER
            if table[config][scheme] is not None and census.get(config, 0) > 0
        ]
        total = sum(count for _, count in saved)
        weighted[scheme] = (
            sum(table[config][scheme] * count for config, count in saved) / total
            if total
            else 0.0
        )
    rows.append(
        ["weighted sum", sum(census.values())]
        + [round(weighted[s] * 100, 2) for s in schemes]
    )

    return ExperimentResult(
        experiment="table6",
        title=(
            "Table 6: performance degradation [%] per saved cache "
            "configuration (chip frequency from the Monte Carlo census)"
        ),
        headers=["config 4-5-6+", "# chips", "YAPD", "VACA", "Hybrid"],
        rows=rows,
        notes=[
            "Paper weighted sums: YAPD 1.08%, VACA 2.20%, Hybrid 1.83%.",
            "Paper per-config values: "
            + "; ".join(
                f"{cfg} {vals}" for cfg, vals in PAPER_TABLE6.items()
            ),
        ],
        data={"census": census, "degradations": table, "weighted": weighted},
    )
