"""Ablations of the design choices DESIGN.md calls out.

* ``ablation_corr`` — spatial correlation sweep. H-YAPD's advantage rests
  on the same horizontal band failing across ways; scaling the way-level
  correlation factors (larger factor = *less* correlation, the paper's
  convention) and switching the shared band component on/off shows when
  horizontal power-down beats vertical.
* ``ablation_lbb`` — load-bypass buffer depth. The paper fixes
  single-entry buffers (one extra cycle) arguing deeper buffers buy
  little yield for a lot of performance; this sweep quantifies both
  sides: yield saved by VACA with slack 0/1/2 cycles and the CPI cost of
  running a way at 4+slack cycles.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    benchmark_names,
    simulate_config,
)
from repro.schemes import DeepVACA, HYAPD, YAPD, VACA
from repro.variation.sampling import CacheVariationSampler
from repro.variation.spatial import CorrelationFactors
from repro.yieldmodel import YieldStudy
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["run_ablation_corr", "run_ablation_lbb"]


def run_ablation_corr(settings: ExperimentSettings) -> ExperimentResult:
    """Sweep spatial correlation; compare YAPD vs H-YAPD loss reduction."""
    chips = min(settings.chips, 800)
    rows: List[List[object]] = []
    sweep = []
    for way_scale in (0.5, 1.0, 2.0):
        for band in (0.0, 1.3):
            factors = CorrelationFactors().scaled_ways(way_scale).with_band(band)
            sampler = CacheVariationSampler(factors=factors)
            pop = YieldStudy(
                seed=settings.seed, count=chips, sampler=sampler
            ).run()
            bd = pop.breakdown([YAPD()], horizontal=False)
            bdh = pop.breakdown([HYAPD()], horizontal=True)
            yapd = bd.loss_reduction("YAPD")
            hyapd = bdh.loss_reduction("H-YAPD")
            sweep.append((way_scale, band, yapd, hyapd))
            rows.append(
                [
                    way_scale,
                    band,
                    bd.base_total,
                    f"{yapd:.1%}",
                    f"{hyapd:.1%}",
                    "H-YAPD" if hyapd > yapd else "YAPD",
                ]
            )
    return ExperimentResult(
        experiment="ablation_corr",
        title=(
            "Ablation: spatial correlation vs power-down granularity "
            f"({chips} chips/point; way scale >1 = less way correlation)"
        ),
        headers=[
            "way factor scale",
            "band factor",
            "base losses",
            "YAPD reduction",
            "H-YAPD reduction",
            "winner",
        ],
        rows=rows,
        notes=[
            "H-YAPD needs the shared band component (band factor > 0) to "
            "beat YAPD: with bands decorrelated the horizontal regions of "
            "different ways no longer fail together.",
        ],
        data={"sweep": sweep},
    )


def run_ablation_lbb(settings: ExperimentSettings) -> ExperimentResult:
    """Load-bypass buffer depth: yield saved vs performance cost."""
    from repro.experiments.common import population

    pop = population(settings)
    rows: List[List[object]] = []
    data = {}
    for slack in (0, 1, 2):
        scheme = DeepVACA(slack) if slack != 1 else VACA()
        breakdown = pop.breakdown([scheme], horizontal=False)
        reduction = breakdown.loss_reduction(scheme.name)

        # Performance: one way at 4 + slack cycles (the deepest rescue
        # this buffer depth enables).
        if slack == 0:
            cost = 0.0
        else:
            cycles = (
                BASE_ACCESS_CYCLES,
                BASE_ACCESS_CYCLES,
                BASE_ACCESS_CYCLES,
                BASE_ACCESS_CYCLES + slack,
            )
            degs = []
            for name in benchmark_names(settings):
                base = simulate_config(settings, name)
                result = simulate_config(settings, name, way_cycles=cycles)
                degs.append(result.degradation_vs(base))
            cost = sum(degs) / len(degs)
        rows.append(
            [slack, breakdown.scheme_total(scheme.name),
             f"{reduction:.1%}", f"{cost:.2%}"]
        )
        data[slack] = {"reduction": reduction, "cost": cost}
    return ExperimentResult(
        experiment="ablation_lbb",
        title="Ablation: load-bypass buffer depth (extra cycles absorbed)",
        headers=[
            "buffer slack (cycles)",
            "residual losses",
            "loss reduction",
            "CPI cost of one 4+slack-cycle way",
        ],
        rows=rows,
        notes=[
            "The paper fixes slack=1: deeper buffers add little yield for "
            "rapidly growing performance cost (its Section 4.3).",
        ],
        data=data,
    )
