"""Figures 9/10 and Section 4.5 — per-benchmark CPI increases.

* Figure 9: CPI increase of every SPEC2000 benchmark for the 3-1-0
  configuration under YAPD (disable the 5-cycle way -> 3 fast ways) and
  under VACA (keep it at 5 cycles). Hybrid keeps the way powered, so its
  bars equal VACA's.
* Figure 10: CPI increase for the 2-2-0 configuration under VACA (YAPD
  cannot save a chip with two slow ways).
* Section 4.5: the naive binning alternative — run *every* access at 5
  (or 6) cycles with the scheduler informed — whose paper-measured costs
  are 6.42% and 12.62%.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    benchmark_names,
    simulate_config,
    simulate_many,
)
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["run_fig9", "run_fig10", "run_sec45"]

_FOUR = BASE_ACCESS_CYCLES
_FIVE = BASE_ACCESS_CYCLES + 1


def _per_benchmark(
    settings: ExperimentSettings,
    configs: List[Tuple[str, Optional[Tuple[Optional[int], ...]], Optional[int]]],
) -> Tuple[List[List[object]], dict]:
    """Rows of per-benchmark degradations for the given configurations."""
    names = benchmark_names(settings)
    # Prefetch the whole benchmark x configuration sweep in one batch so
    # the engine can dispatch every cache miss to the worker pool at once;
    # the per-cell lookups below then hit the in-process memo.
    simulate_many(
        settings,
        [
            (name, cycles, uniform)
            for name in names
            for cycles, uniform in [(None, None)]
            + [(cycles, uniform) for _, cycles, uniform in configs]
        ],
    )
    rows: List[List[object]] = []
    series: dict = {label: {} for label, _, _ in configs}
    for name in names:
        base = simulate_config(settings, name)
        row: List[object] = [name, round(base.cpi, 3)]
        for label, cycles, uniform in configs:
            result = simulate_config(
                settings, name, way_cycles=cycles, uniform_latency=uniform
            )
            deg = result.degradation_vs(base)
            series[label][name] = deg
            row.append(round(deg * 100, 2))
        rows.append(row)
    averages: List[object] = ["average", ""]
    for label, _, _ in configs:
        values = list(series[label].values())
        averages.append(round(sum(values) / len(values) * 100, 2))
    rows.append(averages)
    return rows, series


def run_fig9(settings: ExperimentSettings) -> ExperimentResult:
    """Figure 9: CPI increase for configuration 3-1-0 (YAPD vs VACA)."""
    rows, series = _per_benchmark(
        settings,
        [
            ("YAPD", (_FOUR, _FOUR, _FOUR, None), None),
            ("VACA", (_FOUR, _FOUR, _FOUR, _FIVE), None),
        ],
    )
    return ExperimentResult(
        experiment="fig9",
        title=(
            "Figure 9: per-benchmark CPI increase [%] for configuration "
            "3-1-0 (Hybrid keeps the slow way, so Hybrid = VACA)"
        ),
        headers=["benchmark", "base CPI", "YAPD", "VACA"],
        rows=rows,
        notes=["Paper averages: YAPD 1.1%, VACA (and Hybrid) 1.8%."],
        data={"series": series},
    )


def run_fig10(settings: ExperimentSettings) -> ExperimentResult:
    """Figure 10: CPI increase for configuration 2-2-0 (VACA/Hybrid)."""
    rows, series = _per_benchmark(
        settings,
        [("VACA", (_FOUR, _FOUR, _FIVE, _FIVE), None)],
    )
    return ExperimentResult(
        experiment="fig10",
        title=(
            "Figure 10: per-benchmark CPI increase [%] for configuration "
            "2-2-0 under VACA (YAPD cannot save these chips)"
        ),
        headers=["benchmark", "base CPI", "VACA"],
        rows=rows,
        notes=["Paper average: 3.3%."],
        data={"series": series},
    )


def run_sec45(settings: ExperimentSettings) -> ExperimentResult:
    """Section 4.5: naive re-binning at 5 and 6 cycles."""
    rows, series = _per_benchmark(
        settings,
        [
            ("binning@5", None, _FIVE),
            ("binning@6", None, _FIVE + 1),
        ],
    )
    return ExperimentResult(
        experiment="sec45",
        title=(
            "Section 4.5: naive binning — every load scheduled at a "
            "uniformly higher latency"
        ),
        headers=["benchmark", "base CPI", "binning@5", "binning@6"],
        rows=rows,
        notes=[
            "Paper averages: 6.42% (one extra cycle), 12.62% (two).",
            "The two-cycle bin should cost roughly twice the one-cycle bin.",
        ],
        data={"series": series},
    )
