"""Experiment harness: one module per paper table/figure.

Each experiment module exposes ``run(settings) -> ExperimentResult``; the
registry in :mod:`repro.experiments.runner` maps experiment ids (``fig8``,
``table2``, ...) to them. Results carry both structured rows (for tests
and downstream analysis) and rendered text in the shape the paper prints.

Population-level inputs (the 2000-chip Monte Carlo, the per-benchmark
pipeline runs) are memoised per settings within a process, so running
``table2`` after ``fig8`` reuses the same simulated chips, exactly like
the paper derives all of Section 5.1 from one HSPICE campaign.
"""

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.experiments.runner import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
]
