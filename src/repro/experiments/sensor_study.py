"""Ablation: on-die leakage-sensor fidelity vs YAPD effectiveness.

The paper's deployment story (Section 4.1) allows the leaky way to be
identified in the field with on-die leakage sensors. This study sweeps
the sensor's noise and quantisation and reports (a) how often YAPD's
decision still rescues the chip in truth, and (b) the false-save rate —
chips the sensor-driven flow ships that actually violate the limits.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    population,
)
from repro.schemes import YAPD
from repro.schemes.sensors import LeakageSensor, yield_with_sensor

__all__ = ["run"]

#: (relative noise, quantisation levels) sweep points.
SWEEP = (
    (0.0, 0),
    (0.02, 64),
    (0.05, 32),
    (0.10, 16),
    (0.25, 8),
)


def run(settings: ExperimentSettings) -> ExperimentResult:
    pop = population(settings)
    failing = [case for case in pop.cases if not case.passes]
    perfect_saved = sum(1 for case in failing if YAPD().rescue(case).saved)

    rows: List[List[object]] = []
    data = {}
    for noise, levels in SWEEP:
        sensor = LeakageSensor(
            relative_noise=noise, quantisation_levels=levels, seed=settings.seed
        )
        believed, actual = yield_with_sensor(pop.cases, YAPD(), sensor)
        false_saves = believed - actual
        rows.append(
            [
                f"{noise:.0%}",
                levels or "-",
                believed,
                actual,
                false_saves,
                f"{actual / perfect_saved:.1%}" if perfect_saved else "-",
            ]
        )
        data[(noise, levels)] = {
            "believed": believed,
            "actual": actual,
            "false_saves": false_saves,
        }
    return ExperimentResult(
        experiment="ablation_sensor",
        title=(
            "Ablation: YAPD driven by an on-die leakage sensor "
            "(paper Section 4.1 deployment; perfect tester saves "
            f"{perfect_saved} chips)"
        ),
        headers=[
            "sensor noise",
            "levels",
            "believed saved",
            "truly saved",
            "false saves",
            "vs perfect",
        ],
        rows=rows,
        notes=[
            "False saves are chips shipped on a wrong leakiest-way call "
            "that still violate the limits — the cost of cheap sensors.",
        ],
        data=data,
    )
