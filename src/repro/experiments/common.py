"""Shared experiment infrastructure.

:class:`ExperimentSettings` carries everything that identifies a
reproduction run: the Monte Carlo seed and population size, and the
pipeline-simulation trace lengths. Environment variables provide coarse
scaling without touching code:

* ``REPRO_CHIPS`` — Monte Carlo population (default 2000, the paper's).
* ``REPRO_TRACE`` — measured instructions per benchmark run.
* ``REPRO_WARMUP`` — cache-warmup instructions per run.
* ``REPRO_BENCHMARKS`` — comma-separated benchmark subset.
* ``REPRO_SEED`` — experiment seed.

The expensive inputs — the evaluated chip population and per-benchmark
pipeline results — are produced by the :mod:`repro.engine` subsystem:
parallel across worker processes (``REPRO_WORKERS`` / ``--workers``),
memoised in-process, and persisted under ``.repro_cache/`` so repeated
runs skip completed work. :func:`clear_caches` drops only the in-process
level, exactly as the old per-module dicts did.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.validation import env_int, require_positive
from repro.engine import SimulationSpec, get_engine
from repro.schemes import Hybrid, HybridHorizontal, HYAPD, VACA, YAPD
from repro.uarch import SimResult
from repro.workloads import SPEC2000_ALL, get_profile
from repro.yieldmodel import PopulationResult
from repro.yieldmodel.constraints import (
    ConstraintPolicy,
    NOMINAL_POLICY,
)

__all__ = [
    "ExperimentSettings",
    "ExperimentResult",
    "render_table",
    "population",
    "benchmark_names",
    "simulate_config",
    "simulate_many",
    "scheme_set",
]


def _env_int(name: str, default: int) -> int:
    """Integer env var with a :class:`ConfigurationError` naming it."""
    return env_int(name, default)


@dataclass(frozen=True)
class ExperimentSettings:
    """Identity of one reproduction run."""

    seed: int = field(default_factory=lambda: _env_int("REPRO_SEED", 2006))
    chips: int = field(default_factory=lambda: _env_int("REPRO_CHIPS", 2000))
    trace_length: int = field(
        default_factory=lambda: _env_int("REPRO_TRACE", 30_000)
    )
    warmup: int = field(default_factory=lambda: _env_int("REPRO_WARMUP", 20_000))
    benchmarks: Optional[Tuple[str, ...]] = field(
        default_factory=lambda: (
            tuple(os.environ["REPRO_BENCHMARKS"].split(","))
            if os.environ.get("REPRO_BENCHMARKS")
            else None
        )
    )

    def __post_init__(self) -> None:
        require_positive(self.chips, "chips")
        require_positive(self.trace_length, "trace_length")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.benchmarks is not None:
            # Validate eagerly: an unknown name raises ConfigurationError
            # here instead of deep inside an experiment run.
            for name in self.benchmarks:
                get_profile(name)


@dataclass
class ExperimentResult:
    """Outcome of one experiment: structured rows plus rendered text."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """Rendered table plus notes."""
        body = render_table(self.headers, self.rows)
        parts = [f"== {self.title} ==", body]
        parts.extend(self.notes)
        return "\n".join(parts)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width ASCII table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    table = [list(map(fmt, headers))] + [list(map(fmt, row)) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(table):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if r == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# expensive inputs (computed by the engine: parallel + two-level cache)
# ----------------------------------------------------------------------
def population(
    settings: ExperimentSettings, policy: ConstraintPolicy = NOMINAL_POLICY
) -> PopulationResult:
    """The evaluated Monte Carlo chip population for these settings."""
    return get_engine().population(settings, policy)


def benchmark_names(settings: ExperimentSettings) -> List[str]:
    """The benchmark subset this run simulates."""
    if settings.benchmarks is not None:
        return [get_profile(name).name for name in settings.benchmarks]
    return [profile.name for profile in SPEC2000_ALL]


def simulate_config(
    settings: ExperimentSettings,
    benchmark: str,
    way_cycles: Optional[Tuple[Optional[int], ...]] = None,
    uniform_latency: Optional[int] = None,
) -> SimResult:
    """Run (cached) one benchmark under one L1D configuration.

    ``way_cycles`` is a tuple of per-way latencies with ``None`` for
    disabled ways; ``None`` overall means the healthy baseline.
    ``uniform_latency`` selects naive binning instead (the scheduler's
    predicted load latency is raised to match).
    """
    return get_engine().simulate(
        settings, benchmark, way_cycles=way_cycles, uniform_latency=uniform_latency
    )


def simulate_many(
    settings: ExperimentSettings, specs: List[SimulationSpec]
) -> List[SimResult]:
    """Run a batch of simulations, dispatching the misses in parallel.

    ``specs`` entries are ``(benchmark, way_cycles, uniform_latency)``;
    results come back in the same order. Experiments that sweep
    benchmark × configuration call this once up front so independent
    jobs land on the worker pool together.
    """
    return get_engine().simulate_many(settings, specs)


def scheme_set(horizontal: bool = False):
    """The scheme instances a loss table compares (paper column order)."""
    if horizontal:
        return [HYAPD(), VACA(), HybridHorizontal()]
    return [YAPD(), VACA(), Hybrid()]


def clear_caches() -> None:
    """Drop in-process memoised populations and simulations (tests use this).

    The persistent ``.repro_cache/`` store is untouched; use
    ``repro cache clear`` for that.
    """
    get_engine().clear_memory()
