"""Population-level Monte Carlo driver (paper Section 5.1).

The paper characterises yield by simulating 2000 manufactured caches, each
with an independently drawn set of correlated process parameters. The
:class:`MonteCarloEngine` produces those populations deterministically from
an experiment seed and streams them to a consumer (usually the circuit
model), so populations never need to be held in memory as parameter trees.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, TypeVar

from repro.core.validation import require_positive
from repro.variation.sampling import CacheVariationMap, CacheVariationSampler

__all__ = ["MonteCarloEngine"]

T = TypeVar("T")

#: Population size used throughout the paper's evaluation.
PAPER_POPULATION = 2000


class MonteCarloEngine:
    """Generates deterministic populations of cache variation maps.

    Parameters
    ----------
    sampler:
        The per-chip sampler to draw from.
    seed:
        Experiment seed; chip ``i`` of a given seed is always identical.
    """

    def __init__(self, sampler: CacheVariationSampler, seed: int) -> None:
        self.sampler = sampler
        self.seed = int(seed)

    def chips(self, count: int = PAPER_POPULATION) -> Iterator[CacheVariationMap]:
        """Yield ``count`` independently manufactured caches."""
        require_positive(count, "count")
        for chip_id in range(count):
            yield self.sampler.sample_chip(self.seed, chip_id)

    def map_chips(
        self, func: Callable[[CacheVariationMap], T], count: int = PAPER_POPULATION
    ) -> List[T]:
        """Apply ``func`` to every chip of the population and collect results."""
        return [func(chip) for chip in self.chips(count)]
