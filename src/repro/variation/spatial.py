"""Spatial-correlation model (paper Section 3).

The paper correlates intra-die variation hierarchically using *correlation
factors*: once a parent entity's parameters are drawn, each child entity is
drawn with the parent value as its mean and the Table 1 sigma scaled by the
child's factor. A *smaller* factor therefore means the child tracks its
parent more tightly (the paper notes this is the opposite convention to a
correlation coefficient).

Factors used by the paper, reproduced in :data:`PAPER_FACTORS`:

* bit within a cache block: 0.01
* row within a bank: 0.05
* ways laid out on a 2x2 mesh relative to way 0:
  vertical neighbour 0.45, horizontal neighbour 0.375, diagonal 0.7125.

In addition we model a *horizontal band* component shared by the same row
band across all ways. This operationalises the paper's Section 4.2
observation that the same physical row region of different ways reacts
similarly to a given set of variation parameters (the premise that makes
H-YAPD effective); the band factor controls how strongly aligned those
regions are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.errors import ConfigurationError
from repro.core.validation import require_in_range, require_non_negative

__all__ = ["CorrelationFactors", "MeshLayout", "PAPER_FACTORS"]


@dataclass(frozen=True)
class MeshLayout:
    """Physical placement of cache ways on a rectangular mesh.

    The paper assumes the four ways of the 16 KB cache sit on a 2x2 mesh
    with way 0 as the reference corner. ``position(way)`` returns the
    (row, column) of a way in row-major order.
    """

    rows: int = 2
    cols: int = 2

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("mesh must have at least one cell")

    @property
    def capacity(self) -> int:
        """Number of mesh cells (maximum number of ways placed)."""
        return self.rows * self.cols

    def position(self, way: int) -> Tuple[int, int]:
        """Return the (row, column) placement of ``way``."""
        if not 0 <= way < self.capacity:
            raise ConfigurationError(
                f"way {way} does not fit on a {self.rows}x{self.cols} mesh"
            )
        return divmod(way, self.cols)

    def relation_to_origin(self, way: int) -> str:
        """Classify a way's placement relative to way 0.

        Returns one of ``"origin"``, ``"horizontal"``, ``"vertical"`` or
        ``"diagonal"``.
        """
        row, col = self.position(way)
        if row == 0 and col == 0:
            return "origin"
        if row == 0:
            return "horizontal"
        if col == 0:
            return "vertical"
        return "diagonal"


@dataclass(frozen=True)
class CorrelationFactors:
    """The per-level correlation factors of the hierarchical sampler.

    Attributes
    ----------
    bit:
        Factor for a bit within a cache block (paper: 0.01).
    row:
        Factor for a row (and, in our segment-granularity model, for any
        sub-way segment such as a decoder or an array band) (paper: 0.05).
    way_horizontal, way_vertical, way_diagonal:
        Factors for ways placed on the 2x2 mesh relative to way 0
        (paper: 0.375, 0.45, 0.7125).
    band:
        Factor of the horizontal-band component shared by the same row band
        across all ways (our modelling of the paper's Section 4.2 premise;
        see the module docstring). Setting it to 0 decorrelates bands from
        each other entirely, which the correlation ablation experiment uses
        to show H-YAPD's advantage disappearing.
    inter_die:
        Scale of the die-level (inter-die) draw relative to Table 1's
        sigma. The paper draws die parameters directly from the Table 1
        ranges, i.e. factor 1.0.
    """

    bit: float = 0.01
    row: float = 0.05
    way_horizontal: float = 0.375
    way_vertical: float = 0.45
    way_diagonal: float = 0.7125
    band: float = 1.30
    inter_die: float = 0.90

    def __post_init__(self) -> None:
        for name in (
            "bit",
            "row",
            "way_horizontal",
            "way_vertical",
            "way_diagonal",
            "band",
        ):
            require_non_negative(getattr(self, name), name)
            require_in_range(getattr(self, name), 0.0, 2.0, name)
        require_non_negative(self.inter_die, "inter_die")

    def way_factor(self, way: int, mesh: MeshLayout) -> float:
        """Correlation factor of ``way`` relative to way 0 on ``mesh``."""
        relation = mesh.relation_to_origin(way)
        if relation == "origin":
            return 0.0
        if relation == "horizontal":
            return self.way_horizontal
        if relation == "vertical":
            return self.way_vertical
        return self.way_diagonal

    def scaled_ways(self, factor: float) -> "CorrelationFactors":
        """Return a copy with all way-level factors scaled by ``factor``.

        Larger way factors mean *less* correlation between ways (the
        paper's convention); the correlation ablation sweeps this.
        """
        require_non_negative(factor, "factor")
        return CorrelationFactors(
            bit=self.bit,
            row=self.row,
            way_horizontal=self.way_horizontal * factor,
            way_vertical=self.way_vertical * factor,
            way_diagonal=self.way_diagonal * factor,
            band=self.band,
            inter_die=self.inter_die,
        )

    def with_band(self, band: float) -> "CorrelationFactors":
        """Return a copy with the band factor replaced."""
        return CorrelationFactors(
            bit=self.bit,
            row=self.row,
            way_horizontal=self.way_horizontal,
            way_vertical=self.way_vertical,
            way_diagonal=self.way_diagonal,
            band=band,
            inter_die=self.inter_die,
        )


#: The factors reported in the paper's Section 3 (plus our band component).
PAPER_FACTORS = CorrelationFactors()
