"""Columnar Monte Carlo population sampling.

:class:`CacheVariationSampler` draws one chip at a time and materialises
a tree of :class:`~repro.variation.parameters.ProcessParameters` /
:class:`~repro.variation.sampling.WayVariation` tuples per chip — tens of
small objects each, hundreds of thousands across a 2000-chip population.
:class:`ColumnarPopulationSampler` draws the *same* population into a
handful of preallocated NumPy arrays instead:

* raw standard-normal draws are consumed chip by chip from the exact
  ``spawn(seed, f"chip-{chip_id}")`` generators the per-chip sampler
  uses, batch by batch in the exact order
  :meth:`CacheVariationSampler.sample` consumes them (head batch:
  die + band offsets; then per way: way vector + segments; then the
  scalar residual loop, whose draw count is data-dependent and therefore
  cannot be batched) — so every chip's stream position matches the
  reference draw for draw,
* the clip/offset/scale arithmetic — the mirror of ``_draw_around`` /
  ``_draw_offsets`` — is then applied to the whole population at once as
  elementwise array operations, which are bit-identical to the per-chip
  arithmetic because each element goes through the same IEEE operations
  in the same order.

The result is a :class:`ColumnarPopulation`: ``(num_chips, num_ways,
num_bands, num_params)``-shaped parameter arrays the columnar circuit
model (:mod:`repro.circuit.columnar`) consumes directly. Bit-identity to
the per-chip reference is asserted by ``tests/test_columnar_diff.py``
over randomized geometries, correlation factors and seeds.

``REPRO_COLUMNAR=0`` disables the columnar fast path engine-wide (see
:func:`columnar_enabled`); the per-chip reference path is kept for
differential testing and as the escape hatch.
"""

from __future__ import annotations

import math
import os
from typing import NamedTuple, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import spawn
from repro.variation.parameters import PARAMETER_NAMES, ProcessParameters
from repro.variation.sampling import (
    CacheVariationMap,
    CacheVariationSampler,
    PERIPHERAL_SEGMENTS,
    WayVariation,
)

__all__ = [
    "ColumnarPopulation",
    "ColumnarPopulationSampler",
    "RawDraws",
    "columnar_enabled",
]

_NUM_PARAMS = len(PARAMETER_NAMES)
_NUM_PERI = len(PERIPHERAL_SEGMENTS)


def columnar_enabled() -> bool:
    """Is the columnar population fast path enabled?

    On by default; ``REPRO_COLUMNAR=0`` forces every population through
    the per-chip reference sampler and circuit model. Both paths are
    bit-identical (the differential battery is the proof), so the switch
    only trades speed — it exists so a suspected columnar bug can be
    ruled out in one rerun.
    """
    return os.environ.get("REPRO_COLUMNAR", "1") != "0"


class RawDraws(NamedTuple):
    """Preallocated standard-normal/residual buffers for one population.

    ``head_z`` holds each chip's die + band-offset batch, ``way_z`` the
    per-way batches (way vector slot first, then the peripheral/band
    segment slots; slots a zero correlation factor never draws stay
    zero, which the finalize arithmetic multiplies by a zero scale), and
    ``residuals`` the per-(way, band) delay residuals — drawn scalar
    because their outlier draw is conditional on the preceding uniform.
    """

    head_z: np.ndarray  # (C, head_n)
    way_z: np.ndarray  # (C, W, n + rest_n)
    residuals: np.ndarray  # (C, W, B), ones when residuals are disabled


class ColumnarPopulation(NamedTuple):
    """One sampled population as parameter columns.

    All arrays share the leading chip axis; the trailing axis is always
    the five Table 1 parameters in :data:`PARAMETER_NAMES` order.
    """

    chip_ids: Tuple[int, ...]
    die: np.ndarray  # (C, P)
    way_params: np.ndarray  # (C, W, P)
    peripherals: np.ndarray  # (C, W, S, P) in PERIPHERAL_SEGMENTS order
    bands: np.ndarray  # (C, W, B, P)
    band_residuals: np.ndarray  # (C, W, B)
    has_residuals: bool

    @property
    def num_chips(self) -> int:
        return self.die.shape[0]

    @property
    def num_ways(self) -> int:
        return self.way_params.shape[1]

    @property
    def num_bands(self) -> int:
        return self.bands.shape[2]

    def chip_map(self, index: int) -> CacheVariationMap:
        """Materialise chip ``index`` as a per-chip variation map.

        Produces exactly what :meth:`CacheVariationSampler.sample_chip`
        would have returned for the same chip — the differential tests
        compare the two with ``==``.
        """
        if not 0 <= index < self.num_chips:
            raise ConfigurationError(f"chip index {index} out of range")
        die = ProcessParameters(*self.die[index].tolist())
        ways = []
        for way in range(self.num_ways):
            peripherals = {
                name: ProcessParameters(
                    *self.peripherals[index, way, seg].tolist()
                )
                for seg, name in enumerate(PERIPHERAL_SEGMENTS)
            }
            bands = tuple(
                ProcessParameters(*self.bands[index, way, band].tolist())
                for band in range(self.num_bands)
            )
            residuals = (
                tuple(self.band_residuals[index, way].tolist())
                if self.has_residuals
                else ()
            )
            ways.append(
                WayVariation(
                    way=way,
                    params=ProcessParameters(
                        *self.way_params[index, way].tolist()
                    ),
                    bands=bands,
                    band_residuals=residuals,
                    **peripherals,
                )
            )
        return CacheVariationMap(
            chip_id=self.chip_ids[index], die=die, ways=tuple(ways)
        )


class ColumnarPopulationSampler:
    """Draws whole populations as columns, bit-identical per chip.

    Wraps a configured :class:`CacheVariationSampler` and reuses its
    precomputed scale/clip vectors, so any table / correlation-factor /
    geometry configuration the per-chip sampler accepts is supported.

    Parameters
    ----------
    sampler:
        The reference sampler whose population this one reproduces.
    """

    def __init__(self, sampler: CacheVariationSampler) -> None:
        self.sampler = sampler
        self.num_ways = sampler.num_ways
        self.num_bands = sampler.num_bands
        factors = sampler.factors
        n = _NUM_PARAMS
        self._rest_n = (_NUM_PERI + self.num_bands) * n
        # Head batch layout: die slot then band-offset slots; a zero
        # factor removes its slot from the *drawn* batch (the reference
        # skips the draw entirely) but keeps its zeroed buffer columns.
        self._head_n = (n if factors.inter_die != 0.0 else 0) + (
            self.num_bands * n if factors.band != 0.0 else 0
        )
        self._die_drawn = factors.inter_die != 0.0
        self._band_drawn = factors.band != 0.0
        row_drawn = factors.row != 0.0
        self._way_counts = tuple(
            (n if factor != 0.0 else 0) + (self._rest_n if row_drawn else 0)
            for factor in sampler._way_factors
        )
        self._way_starts = tuple(
            0 if factor != 0.0 else n for factor in sampler._way_factors
        )
        self._draw_residuals = (
            sampler.path_residual_sigma > 0 or sampler.outlier_band_prob > 0
        )

    @property
    def supported(self) -> bool:
        """False for degenerate tables (a zero-sigma parameter), where
        the reference itself falls back to per-parameter scalar draws."""
        return self.sampler._vectorised

    # ------------------------------------------------------------------
    # per-chip stream consumption
    # ------------------------------------------------------------------
    def allocate(self, num_chips: int) -> RawDraws:
        """Preallocate the draw buffers for ``num_chips`` chips."""
        if num_chips < 0:
            raise ConfigurationError("num_chips must be >= 0")
        n = _NUM_PARAMS
        return RawDraws(
            head_z=np.zeros((num_chips, self._head_n)),
            way_z=np.zeros((num_chips, self.num_ways, n + self._rest_n)),
            residuals=np.ones(
                (num_chips, self.num_ways, self.num_bands)
            ),
        )

    def draw_chip(
        self, rng: np.random.Generator, index: int, raw: RawDraws
    ) -> None:
        """Consume one chip's draws from ``rng`` into row ``index``.

        The consumption order is the contract: head batch, then per way
        a segment batch followed by the residual loop — exactly the
        batches :meth:`CacheVariationSampler.sample` takes, so both
        samplers leave ``rng`` at the same stream position (locked by
        the stream-identity regression test).
        """
        standard_normal = rng.standard_normal
        if self._head_n:
            standard_normal(self._head_n, out=raw.head_z[index])
        sampler = self.sampler
        sigma = sampler.path_residual_sigma
        prob = sampler.outlier_band_prob
        mean = sampler._residual_mean
        low, high = sampler.outlier_scale_range
        span = high - low
        # Same stream, same bits, faster scalar calls: Generator.lognormal
        # is exp(mean + sigma * standard_normal()) and Generator.uniform
        # is low + (high - low) * random() — the verbatim C definitions —
        # so the cheap primitives reproduce the reference's draws exactly
        # (locked by the stream-identity and differential tests).
        random = rng.random
        exp = math.exp
        num_bands = self.num_bands
        draw_residuals = self._draw_residuals
        chip_z = raw.way_z[index]
        chip_residuals = raw.residuals[index]
        for way in range(self.num_ways):
            count = self._way_counts[way]
            if count:
                start = self._way_starts[way]
                standard_normal(count, out=chip_z[way, start : start + count])
            if draw_residuals:
                row = chip_residuals[way]
                for band in range(num_bands):
                    value = 1.0
                    if sigma > 0:
                        value = exp(mean + sigma * standard_normal())
                    if prob > 0 and random() < prob:
                        value *= low + span * random()
                    row[band] = value

    # ------------------------------------------------------------------
    # whole-population arithmetic
    # ------------------------------------------------------------------
    def finalize(
        self, chip_ids: Sequence[int], raw: RawDraws
    ) -> ColumnarPopulation:
        """Turn raw draws into clipped parameter columns, in bulk.

        Mirrors the reference's fused arithmetic (`sample`) elementwise
        over the whole population: scale the z batch, add the centre,
        clip — same operations in the same order per element, so every
        value is bit-identical to the per-chip computation. Slots whose
        correlation factor is zero multiply a zeroed buffer by a zero
        scale, which reproduces the reference's "skip the draw, keep the
        centre" branch exactly (``x + 0.0 == x`` for the strictly
        positive centres involved).
        """
        sampler = self.sampler
        n = _NUM_PARAMS
        num_chips = len(chip_ids)
        num_ways = self.num_ways
        num_bands = self.num_bands
        low = sampler._clip_low
        high = sampler._clip_high

        # Die vectors: nominal + die_scale * z, clipped.
        if self._die_drawn:
            die = sampler._nominal_arr + sampler._die_scale * raw.head_z[:, :n]
            band_z = raw.head_z[:, n:]
        else:
            die = np.broadcast_to(
                sampler._nominal_arr, (num_chips, n)
            ).copy()
            band_z = raw.head_z
        die = np.minimum(np.maximum(die, low), high)

        # Shared band offsets (zero-mean, unclipped).
        if self._band_drawn:
            band_offsets = 0.0 + sampler._band_scale * band_z
        else:
            band_offsets = np.zeros((num_chips, num_bands * n))

        # Way vectors: die + way_scale * z, clipped.
        way_scales = np.array(sampler._way_scales)  # (W, n)
        way_values = (
            die[:, None, :] + way_scales[None, :, :] * raw.way_z[:, :, :n]
        )
        way_values = np.minimum(np.maximum(way_values, low), high)

        # Segment vectors: way value (+ band offset for the band slots)
        # + rest_scale * z, clipped against the tiled bounds.
        rest_segments = _NUM_PERI + num_bands
        centres = np.empty((num_chips, num_ways, rest_segments, n))
        centres[:] = way_values[:, :, None, :]
        centres[:, :, _NUM_PERI:, :] += band_offsets.reshape(
            num_chips, 1, num_bands, n
        )
        rest_scale = sampler._rest_scale.reshape(rest_segments, n)
        rest = centres + rest_scale * raw.way_z[:, :, n:].reshape(
            num_chips, num_ways, rest_segments, n
        )
        rest = np.minimum(np.maximum(rest, low), high)

        return ColumnarPopulation(
            chip_ids=tuple(int(c) for c in chip_ids),
            die=die,
            way_params=way_values,
            peripherals=rest[:, :, :_NUM_PERI, :],
            bands=rest[:, :, _NUM_PERI:, :],
            band_residuals=raw.residuals,
            has_residuals=self._draw_residuals,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def sample_population(
        self, seed: int, chip_ids: Sequence[int]
    ) -> ColumnarPopulation:
        """Draw the chips ``chip_ids`` of experiment ``seed`` as columns.

        Each chip's generator is ``spawn(seed, f"chip-{chip_id}")`` —
        the per-chip sampler's spawn discipline — so any subset of ids,
        in any order, reproduces exactly the chips the reference would
        draw.
        """
        if not self.supported:
            raise ConfigurationError(
                "columnar sampling requires a table with positive sigmas "
                "(the reference falls back to scalar draws)"
            )
        raw = self.allocate(len(chip_ids))
        for index, chip_id in enumerate(chip_ids):
            self.draw_chip(spawn(seed, f"chip-{chip_id}"), index, raw)
        return self.finalize(chip_ids, raw)

    def sample_range(
        self, seed: int, start: int, stop: int
    ) -> ColumnarPopulation:
        """Draw chip ids ``[start, stop)`` (the population-shard shape)."""
        if not 0 <= start <= stop:
            raise ConfigurationError(f"invalid chip range [{start}, {stop})")
        return self.sample_population(seed, range(start, stop))
