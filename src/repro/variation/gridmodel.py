"""Grid-based spatial correlation (Friedberg-style alternative sampler).

The paper derives its hierarchical correlation *factors* from the spatial
correlation measurements of Friedberg et al., who model within-die
variation on a grid: each grid cell gets a parameter value, and the
correlation between two cells decays with their physical distance. This
module implements that original formulation as a drop-in alternative to
the hierarchical sampler:

* the cache floorplan (2x2 ways, each ``num_bands`` banks tall) is laid
  on a ``rows x cols`` grid of cells,
* for every process parameter an exponential-decay covariance
  ``cov(i, j) = sigma_intra^2 * exp(-d(i, j) / correlation_length)`` is
  built over the cell centres and factorised once (Cholesky),
* each chip draws one inter-die offset plus one correlated intra-die
  field, and every segment of the cache reads the cell underneath it.

The ``ablation_grid`` experiment compares the yield pipeline under both
correlation models — the headline scheme orderings should not depend on
which formulation is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import spawn
from repro.core.validation import require_in_range, require_positive
from repro.variation.parameters import (
    PARAMETER_NAMES,
    ProcessParameters,
    VariationTable,
    TABLE1,
)
from repro.variation.sampling import (
    CacheVariationMap,
    PERIPHERAL_SEGMENTS,
    WayVariation,
)

__all__ = ["GridCorrelationModel", "GridVariationSampler"]


@dataclass(frozen=True)
class GridCorrelationModel:
    """Exponential-decay correlation over a physical grid.

    Attributes
    ----------
    rows, cols:
        Grid resolution over the cache floorplan.
    correlation_length:
        Distance (in grid units) at which correlation falls to 1/e.
        Longer means smoother variation fields.
    intra_fraction:
        Share of each parameter's total variance assigned to the
        intra-die field; the rest is the shared inter-die offset.
    """

    rows: int = 8
    cols: int = 8
    correlation_length: float = 3.0
    intra_fraction: float = 0.4

    def __post_init__(self) -> None:
        require_positive(self.rows, "rows")
        require_positive(self.cols, "cols")
        require_positive(self.correlation_length, "correlation_length")
        require_in_range(self.intra_fraction, 0.0, 1.0, "intra_fraction")

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def cell_centres(self) -> np.ndarray:
        """(num_cells, 2) array of cell-centre coordinates."""
        ys, xs = np.meshgrid(
            np.arange(self.rows) + 0.5,
            np.arange(self.cols) + 0.5,
            indexing="ij",
        )
        return np.column_stack([xs.ravel(), ys.ravel()])

    def covariance(self) -> np.ndarray:
        """Unit-variance exponential-decay covariance over the cells."""
        centres = self.cell_centres()
        deltas = centres[:, None, :] - centres[None, :, :]
        distance = np.sqrt((deltas**2).sum(axis=-1))
        return np.exp(-distance / self.correlation_length)

    def cholesky(self) -> np.ndarray:
        """Cholesky factor of the (jittered) covariance.

        Factorised once per model instance: the covariance depends only
        on the (frozen) geometry, and the O(cells^3) factorisation was
        being recomputed on every call. Callers must not mutate the
        returned array.
        """
        cached = self.__dict__.get("_chol_cache")
        if cached is None:
            cov = self.covariance()
            cov += np.eye(self.num_cells) * 1e-9
            cached = np.linalg.cholesky(cov)
            # frozen dataclass: stash the cache without going through
            # the blocked __setattr__
            object.__setattr__(self, "_chol_cache", cached)
        return cached


class GridVariationSampler:
    """Samples :class:`CacheVariationMap` from a correlated grid field.

    The floorplan assumed: ways on the paper's 2x2 mesh; within a way,
    bands stack vertically; peripherals sit at the way's decoder edge.
    Each segment reads the grid cell containing its centroid, so
    physically close segments — the same band of neighbouring ways, or a
    way and its own periphery — receive strongly correlated parameters,
    which is exactly the behaviour the paper's Section 4.2 argument
    needs.

    Parameters
    ----------
    table:
        Variation table (Table 1 by default).
    model:
        Grid geometry and correlation decay.
    num_ways, num_bands:
        Cache organisation (must match the circuit model's).
    path_residual_sigma, outlier_band_prob, outlier_scale_range:
        Same residual/outlier machinery as the hierarchical sampler (the
        within-segment effects a smooth field cannot express).
    """

    def __init__(
        self,
        table: VariationTable = TABLE1,
        model: GridCorrelationModel = GridCorrelationModel(),
        num_ways: int = 4,
        num_bands: int = 4,
        path_residual_sigma: float = 0.22,
        outlier_band_prob: float = 0.035,
        outlier_scale_range: Tuple[float, float] = (1.10, 2.10),
        clip_sigma: float = 3.0,
    ) -> None:
        if num_ways != 4:
            raise ConfigurationError(
                "the grid floorplan models the paper's 2x2 way mesh"
            )
        require_positive(num_bands, "num_bands")
        self.table = table
        self.model = model
        self.num_ways = num_ways
        self.num_bands = num_bands
        self.path_residual_sigma = path_residual_sigma
        self.outlier_band_prob = outlier_band_prob
        self.outlier_scale_range = outlier_scale_range
        self.clip_sigma = clip_sigma
        self._sigmas = table.sigmas()
        self._nominal = table.nominal()
        self._chol = model.cholesky()
        self._segment_cells = self._build_floorplan()

    # ------------------------------------------------------------------
    def _build_floorplan(self) -> Dict[Tuple[int, str], int]:
        """Map (way, segment) -> grid cell index.

        Ways occupy the four quadrants; a way's bands split its quadrant
        vertically with band 0 at the periphery edge, where the way's
        decoder/precharge/sense/output segments also sit.
        """
        model = self.model
        cells: Dict[Tuple[int, str], int] = {}
        half_rows = model.rows // 2
        half_cols = model.cols // 2

        def cell_at(x: float, y: float) -> int:
            col = min(int(x), model.cols - 1)
            row = min(int(y), model.rows - 1)
            return row * model.cols + col

        for way in range(self.num_ways):
            mesh_row, mesh_col = divmod(way, 2)
            x0 = mesh_col * half_cols
            y0 = mesh_row * half_rows
            x_mid = x0 + half_cols / 2
            # bands stack away from the periphery edge (the mesh centre)
            for band in range(self.num_bands):
                frac = (band + 0.5) / self.num_bands
                y = y0 + (frac * half_rows if mesh_row == 0 else (1 - frac) * half_rows)
                cells[(way, f"band{band}")] = cell_at(x_mid, y)
            edge_y = y0 + (0.25 if mesh_row == 0 else half_rows - 0.25)
            for i, name in enumerate(PERIPHERAL_SEGMENTS):
                x = x0 + (i + 0.5) * half_cols / len(PERIPHERAL_SEGMENTS)
                cells[(way, name)] = cell_at(x, edge_y)
        return cells

    def _field_to_params(
        self, inter: Dict[str, float], field: Dict[str, np.ndarray], cell: int
    ) -> ProcessParameters:
        values = {}
        for name in PARAMETER_NAMES:
            nominal = getattr(self._nominal, name)
            sigma = self._sigmas[name]
            value = nominal + inter[name] + float(field[name][cell])
            low = nominal - self.clip_sigma * sigma
            high = nominal + self.clip_sigma * sigma
            values[name] = min(max(value, max(low, nominal * 0.1)), high)
        return ProcessParameters(**values)

    def _draw_residuals(self, rng: np.random.Generator) -> Tuple[float, ...]:
        sigma = self.path_residual_sigma
        residuals: List[float] = []
        for _ in range(self.num_bands):
            value = 1.0
            if sigma > 0:
                value = float(rng.lognormal(-0.5 * sigma * sigma, sigma))
            if self.outlier_band_prob > 0 and rng.uniform() < self.outlier_band_prob:
                low, high = self.outlier_scale_range
                value *= float(rng.uniform(low, high))
            residuals.append(value)
        return tuple(residuals)

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, chip_id: int = 0) -> CacheVariationMap:
        """Draw one cache's variation map from the grid field."""
        inter: Dict[str, float] = {}
        field: Dict[str, np.ndarray] = {}
        inter_frac = 1.0 - self.model.intra_fraction
        for name in PARAMETER_NAMES:
            sigma = self._sigmas[name]
            inter[name] = float(
                rng.normal(0.0, sigma * np.sqrt(inter_frac))
            )
            white = rng.standard_normal(self.model.num_cells)
            field[name] = (
                self._chol @ white
            ) * sigma * np.sqrt(self.model.intra_fraction)

        die = self._field_to_params(inter, field, 0).replace()
        ways = []
        for way in range(self.num_ways):
            bands = tuple(
                self._field_to_params(
                    inter, field, self._segment_cells[(way, f"band{b}")]
                )
                for b in range(self.num_bands)
            )
            peripherals = {
                name: self._field_to_params(
                    inter, field, self._segment_cells[(way, name)]
                )
                for name in PERIPHERAL_SEGMENTS
            }
            way_params = bands[0]  # representative: the periphery-edge band
            ways.append(
                WayVariation(
                    way=way,
                    params=way_params,
                    bands=bands,
                    band_residuals=self._draw_residuals(rng),
                    **peripherals,
                )
            )
        return CacheVariationMap(chip_id=chip_id, die=die, ways=tuple(ways))

    def sample_chip(self, seed: int, chip_id: int) -> CacheVariationMap:
        """Deterministic per-chip sampling (same contract as the
        hierarchical sampler)."""
        rng = spawn(seed, f"grid-chip-{chip_id}")
        return self.sample(rng, chip_id=chip_id)
