"""Process-variation modelling (paper Sections 2 and 3).

The paper models five sources of parametric variation — gate length, device
threshold voltage, metal line width, metal thickness, and inter-layer
dielectric thickness — with the nominal and 3-sigma values of its Table 1,
and correlates them spatially using per-level correlation factors derived
from Friedberg et al. This subpackage reproduces that machinery:

* :mod:`repro.variation.parameters` — the parameter vector and Table 1.
* :mod:`repro.variation.spatial` — correlation factors and the 2x2 way mesh.
* :mod:`repro.variation.sampling` — hierarchical correlated sampling of a
  full cache (die -> way -> peripheral/array-band segments).
* :mod:`repro.variation.montecarlo` — population-level Monte Carlo driver.
* :mod:`repro.variation.columnar` — whole-population columnar sampling,
  bit-identical to the per-chip sampler (the engine's fast path).
"""

from repro.variation.parameters import (
    PARAMETER_NAMES,
    ParameterSpec,
    ProcessParameters,
    VariationTable,
    TABLE1,
)
from repro.variation.spatial import (
    CorrelationFactors,
    MeshLayout,
    PAPER_FACTORS,
)
from repro.variation.sampling import (
    CacheVariationMap,
    CacheVariationSampler,
    WayVariation,
)
from repro.variation.montecarlo import MonteCarloEngine
from repro.variation.gridmodel import GridCorrelationModel, GridVariationSampler
from repro.variation.columnar import (
    ColumnarPopulation,
    ColumnarPopulationSampler,
    columnar_enabled,
)

__all__ = [
    "PARAMETER_NAMES",
    "ParameterSpec",
    "ProcessParameters",
    "VariationTable",
    "TABLE1",
    "CorrelationFactors",
    "MeshLayout",
    "PAPER_FACTORS",
    "CacheVariationMap",
    "CacheVariationSampler",
    "WayVariation",
    "MonteCarloEngine",
    "GridCorrelationModel",
    "GridVariationSampler",
    "ColumnarPopulation",
    "ColumnarPopulationSampler",
    "columnar_enabled",
]
