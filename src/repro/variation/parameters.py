"""Process parameters and the paper's Table 1.

The paper (Section 3, Table 1) models five sources of variation with the
nominal values and 3-sigma percentage ranges reproduced in :data:`TABLE1`:

==================  ============  =========
parameter           nominal       3-sigma
==================  ============  =========
gate length         45 nm         +/- 10 %
threshold voltage   220 mV        +/- 18 %
metal line width    0.25 um       +/- 33 %
metal thickness     0.55 um       +/- 33 %
ILD thickness       0.15 um       +/- 35 %
==================  ============  =========

A :class:`ProcessParameters` instance carries one concrete value for each of
the five parameters; the sampling machinery in
:mod:`repro.variation.sampling` builds a tree of them for every segment of a
cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, NamedTuple, Tuple

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.core.validation import require_positive

__all__ = [
    "PARAMETER_NAMES",
    "ParameterSpec",
    "ProcessParameters",
    "VariationTable",
    "TABLE1",
]

#: Canonical ordering of the five varied parameters.
PARAMETER_NAMES: Tuple[str, ...] = (
    "lgate",
    "vt",
    "metal_width",
    "metal_thickness",
    "ild_thickness",
)


@dataclass(frozen=True)
class ParameterSpec:
    """Nominal value and 3-sigma fractional range of one process parameter.

    Parameters
    ----------
    name:
        One of :data:`PARAMETER_NAMES`.
    nominal:
        Nominal (design) value, in SI units.
    three_sigma_fraction:
        The 3-sigma deviation expressed as a fraction of the nominal value
        (Table 1 reports percentages; 0.10 means "+/- 10%").
    """

    name: str
    nominal: float
    three_sigma_fraction: float

    def __post_init__(self) -> None:
        if self.name not in PARAMETER_NAMES:
            raise ConfigurationError(f"unknown parameter name {self.name!r}")
        require_positive(self.nominal, f"{self.name}.nominal")
        require_positive(
            self.three_sigma_fraction, f"{self.name}.three_sigma_fraction"
        )

    @property
    def sigma(self) -> float:
        """One standard deviation in absolute units."""
        return self.nominal * self.three_sigma_fraction / 3.0


class ProcessParameters(NamedTuple):
    """A concrete value for each of the five varied process parameters.

    A ``NamedTuple`` (not a frozen dataclass) because the samplers build
    tens of these per chip across whole Monte Carlo populations —
    tuple construction is several times cheaper than a frozen
    dataclass's ``object.__setattr__`` per field, and iteration order
    is the field order, which is :data:`PARAMETER_NAMES`.

    Attributes
    ----------
    lgate:
        Effective transistor gate length (m).
    vt:
        Device threshold voltage (V). This is the *as-doped* threshold; the
        circuit model applies gate-length roll-off on top of it.
    metal_width:
        Interconnect line width (m).
    metal_thickness:
        Interconnect metal thickness (m).
    ild_thickness:
        Inter-layer dielectric thickness (m).
    """

    lgate: float
    vt: float
    metal_width: float
    metal_thickness: float
    ild_thickness: float

    def as_dict(self) -> Dict[str, float]:
        """Return the parameters as a name -> value mapping."""
        return {name: getattr(self, name) for name in PARAMETER_NAMES}

    def replace(self, **changes: float) -> "ProcessParameters":
        """Return a copy with the given fields replaced."""
        return self._replace(**changes)

    def deviation_from(self, other: "ProcessParameters") -> Dict[str, float]:
        """Fractional deviation of each parameter relative to ``other``."""
        return {
            name: (getattr(self, name) - getattr(other, name))
            / getattr(other, name)
            for name in PARAMETER_NAMES
        }


class VariationTable:
    """A complete set of :class:`ParameterSpec` (one per parameter).

    The table knows how to produce the nominal :class:`ProcessParameters`
    and how to turn per-parameter z-scores into concrete values; the
    samplers use the latter so all distribution logic lives here.
    """

    def __init__(self, specs: Dict[str, ParameterSpec]) -> None:
        missing = set(PARAMETER_NAMES) - set(specs)
        if missing:
            raise ConfigurationError(f"variation table missing specs: {missing}")
        extra = set(specs) - set(PARAMETER_NAMES)
        if extra:
            raise ConfigurationError(f"variation table has unknown specs: {extra}")
        self._specs = dict(specs)

    def spec(self, name: str) -> ParameterSpec:
        """Return the spec for parameter ``name``."""
        if name not in self._specs:
            raise ConfigurationError(f"unknown parameter name {name!r}")
        return self._specs[name]

    @property
    def specs(self) -> Dict[str, ParameterSpec]:
        """All specs keyed by parameter name (copy)."""
        return dict(self._specs)

    def nominal(self) -> ProcessParameters:
        """The nominal (zero-variation) parameter vector."""
        return ProcessParameters(
            **{name: self._specs[name].nominal for name in PARAMETER_NAMES}
        )

    def sigmas(self) -> Dict[str, float]:
        """One-sigma absolute deviation per parameter."""
        return {name: self._specs[name].sigma for name in PARAMETER_NAMES}

    def from_z_scores(self, z: Dict[str, float]) -> ProcessParameters:
        """Build parameters at the given per-parameter z-scores.

        ``z`` maps parameter names to numbers of standard deviations away
        from nominal; omitted parameters stay nominal.
        """
        values = {}
        for name in PARAMETER_NAMES:
            spec = self._specs[name]
            values[name] = spec.nominal + spec.sigma * z.get(name, 0.0)
        return ProcessParameters(**values)

    def scaled(self, factor: float) -> "VariationTable":
        """Return a copy with every 3-sigma range scaled by ``factor``.

        Used by sensitivity/ablation experiments that widen or narrow the
        process window.
        """
        require_positive(factor, "factor")
        return VariationTable(
            {
                name: ParameterSpec(
                    name=name,
                    nominal=spec.nominal,
                    three_sigma_fraction=spec.three_sigma_fraction * factor,
                )
                for name, spec in self._specs.items()
            }
        )


#: The paper's Table 1 (45 nm PTM technology, Nassif variation limits).
TABLE1 = VariationTable(
    {
        "lgate": ParameterSpec("lgate", 45 * units.NM, 0.10),
        "vt": ParameterSpec("vt", 220 * units.MV, 0.18),
        "metal_width": ParameterSpec("metal_width", 0.25 * units.UM, 0.33),
        "metal_thickness": ParameterSpec("metal_thickness", 0.55 * units.UM, 0.33),
        "ild_thickness": ParameterSpec("ild_thickness", 0.15 * units.UM, 0.35),
    }
)
