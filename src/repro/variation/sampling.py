"""Hierarchical correlated sampling of one cache's process parameters.

The sampler reproduces the paper's Section 3 procedure at *segment*
granularity. Modelling every one of the ~128K bits individually is neither
necessary nor what drives the paper's results (the bit factor is 0.01, i.e.
bits track their row almost exactly); what matters is the die, way, and
row-band structure. Accordingly one cache sample consists of:

* a die-level parameter vector drawn from Table 1,
* a shared horizontal-band offset per band index (Section 4.2 premise),
* a way-level vector per way, drawn around the die value with the 2x2-mesh
  correlation factors,
* per-way peripheral segment vectors (decoder, precharge, sense amplifiers,
  output driver), drawn around the way value with the row factor,
* per-(way, band) array segment vectors, drawn around the way value plus
  the band offset with the row factor.

The circuit model consumes this map to produce per-path delays and per-way
leakage.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import spawn
from repro.core.validation import require_positive
from repro.variation.parameters import (
    PARAMETER_NAMES,
    ProcessParameters,
    VariationTable,
    TABLE1,
)
from repro.variation.spatial import CorrelationFactors, MeshLayout, PAPER_FACTORS

__all__ = ["WayVariation", "CacheVariationMap", "CacheVariationSampler"]

#: Peripheral segments modelled per way.
PERIPHERAL_SEGMENTS: Tuple[str, ...] = (
    "decoder",
    "precharge",
    "senseamp",
    "outdriver",
)


class WayVariation(NamedTuple):
    """Sampled parameters for one cache way.

    A ``NamedTuple`` for the same reason as
    :class:`~repro.variation.parameters.ProcessParameters`: populations
    construct one per (chip, way) and tuple construction is several
    times cheaper than a frozen dataclass's per-field ``__setattr__``.

    Attributes
    ----------
    way:
        Way index.
    params:
        The way-level mean vector (around which segments were drawn).
    decoder, precharge, senseamp, outdriver:
        Peripheral segment vectors.
    bands:
        Array segment vectors, one per horizontal band (index 0 is the band
        physically closest to the sense amplifiers).
    band_residuals:
        Multiplicative residual on each band's critical-path delay
        (unit mean, lognormal). This absorbs within-segment variability the
        five-parameter segment model cannot express — random-dopant
        worst-cell extremes along the accessed column, sense offset, and
        coupling-noise alignment — and is calibrated so the incidence of
        severely slow single ways matches the population the paper
        observes (its 6-or-more-cycle ways). Empty means "no residual".
    """

    way: int
    params: ProcessParameters
    decoder: ProcessParameters
    precharge: ProcessParameters
    senseamp: ProcessParameters
    outdriver: ProcessParameters
    bands: Tuple[ProcessParameters, ...]
    band_residuals: Tuple[float, ...] = ()

    def band_residual(self, band: int) -> float:
        """Residual delay multiplier of ``band`` (1.0 when not sampled)."""
        if not self.band_residuals:
            return 1.0
        return self.band_residuals[band]

    def peripheral(self, name: str) -> ProcessParameters:
        """Return the peripheral segment vector called ``name``."""
        if name not in PERIPHERAL_SEGMENTS:
            raise ConfigurationError(f"unknown peripheral segment {name!r}")
        return getattr(self, name)


class CacheVariationMap(NamedTuple):
    """All sampled process parameters for one manufactured cache."""

    chip_id: int
    die: ProcessParameters
    ways: Tuple[WayVariation, ...]

    @property
    def num_ways(self) -> int:
        return len(self.ways)

    @property
    def num_bands(self) -> int:
        return len(self.ways[0].bands)

    def band_vectors(self, band: int) -> Tuple[ProcessParameters, ...]:
        """The array segment vectors of horizontal band ``band`` in every way."""
        if not 0 <= band < self.num_bands:
            raise ConfigurationError(f"band {band} out of range")
        return tuple(way.bands[band] for way in self.ways)


class CacheVariationSampler:
    """Draws :class:`CacheVariationMap` instances.

    Parameters
    ----------
    table:
        The variation table (defaults to the paper's Table 1).
    factors:
        Hierarchical correlation factors (defaults to the paper's).
    mesh:
        Physical placement of ways (defaults to the paper's 2x2 mesh).
    num_ways:
        Cache associativity; must fit on the mesh.
    num_bands:
        Number of horizontal bands per way (H-YAPD power-down granularity).
    clip_sigma:
        Draws are clipped to the die mean +/- ``clip_sigma`` Table 1 sigmas
        and to a small positive floor, so extreme tails cannot produce
        non-physical (e.g. negative-width) devices.
    path_residual_sigma:
        Lognormal sigma of the per-(way, band) critical-path delay
        residual (see :class:`WayVariation.band_residuals`). Zero disables
        residual sampling.
    outlier_band_prob:
        Probability that a given (way, band) carries a *spot parametric
        outlier* — a resistive via/contact or extreme local excursion that
        slows that band's path substantially without killing functionality.
        These produce the isolated severely-slow ways the paper observes
        (its 6-or-more-cycle ways, e.g. the 3-0-1 configuration of
        Table 6). Zero disables outliers.
    outlier_scale_range:
        (low, high) of the uniform delay multiplier applied by an outlier.
    """

    #: Parameters may never fall below this fraction of nominal.
    _FLOOR_FRACTION = 0.10

    def __init__(
        self,
        table: VariationTable = TABLE1,
        factors: CorrelationFactors = PAPER_FACTORS,
        mesh: Optional[MeshLayout] = None,
        num_ways: int = 4,
        num_bands: int = 4,
        clip_sigma: float = 3.0,
        path_residual_sigma: float = 0.22,
        outlier_band_prob: float = 0.035,
        outlier_scale_range: Tuple[float, float] = (1.10, 2.10),
    ) -> None:
        require_positive(num_ways, "num_ways")
        require_positive(num_bands, "num_bands")
        require_positive(clip_sigma, "clip_sigma")
        if path_residual_sigma < 0:
            raise ConfigurationError("path_residual_sigma must be >= 0")
        if not 0.0 <= outlier_band_prob < 1.0:
            raise ConfigurationError("outlier_band_prob must be in [0, 1)")
        if outlier_scale_range[0] < 1.0 or outlier_scale_range[1] < outlier_scale_range[0]:
            raise ConfigurationError(
                "outlier_scale_range must satisfy 1.0 <= low <= high"
            )
        self.path_residual_sigma = path_residual_sigma
        self.outlier_band_prob = outlier_band_prob
        self.outlier_scale_range = outlier_scale_range
        self.table = table
        self.factors = factors
        self.mesh = mesh if mesh is not None else MeshLayout()
        if num_ways > self.mesh.capacity:
            raise ConfigurationError(
                f"{num_ways} ways do not fit on a "
                f"{self.mesh.rows}x{self.mesh.cols} mesh"
            )
        self.num_ways = num_ways
        self.num_bands = num_bands
        self.clip_sigma = clip_sigma
        self._sigmas = table.sigmas()
        self._nominal = table.nominal()
        # Vectorised draw plumbing: one rng.normal call per segment batch
        # consumes the generator stream element-by-element in exactly the
        # order the per-parameter scalar draws did, so the sampled values
        # are bit-identical to the original loop (asserted by the
        # sampler equivalence test). Clip bounds depend only on the table.
        nominal_arr = np.array(list(self._nominal))
        sigma_arr = np.array([self._sigmas[n] for n in PARAMETER_NAMES])
        self._nominal_arr = nominal_arr
        self._sigma_arr = sigma_arr
        self._clip_low = np.maximum(
            nominal_arr - clip_sigma * sigma_arr,
            nominal_arr * self._FLOOR_FRACTION,
        )
        self._clip_high = nominal_arr + clip_sigma * sigma_arr
        # Fused-draw plumbing: ``Generator.normal(loc, scale)`` computes
        # ``loc + scale * standard_normal()`` element by element, so a
        # group of consecutive draws can be taken as one
        # ``standard_normal`` batch and combined with pre-tiled scale
        # vectors — same stream consumption, same arithmetic, same bits
        # (asserted against :meth:`sample_reference` by the equivalence
        # test). Tiling commutes with the elementwise scale multiply.
        num_peri = len(PERIPHERAL_SEGMENTS)
        rest_segments = num_peri + self.num_bands
        self._die_scale = sigma_arr * self.factors.inter_die
        self._band_scale = np.tile(sigma_arr, self.num_bands) * self.factors.band
        self._rest_scale = np.tile(sigma_arr, rest_segments) * self.factors.row
        self._rest_low = np.tile(self._clip_low, rest_segments)
        self._rest_high = np.tile(self._clip_high, rest_segments)
        self._zero_offsets = np.zeros(self.num_bands * len(PARAMETER_NAMES))
        self._way_scales = tuple(
            sigma_arr * self.factors.way_factor(way, self.mesh)
            for way in range(self.num_ways)
        )
        self._way_factors = tuple(
            self.factors.way_factor(way, self.mesh)
            for way in range(self.num_ways)
        )
        sigma = path_residual_sigma
        self._residual_mean = -0.5 * sigma * sigma
        # The scalar reference skips the draw for an individual
        # zero-sigma parameter; the fused batch can only skip whole
        # zero-factor groups, so fall back to the reference for tables
        # with degenerate sigmas.
        self._vectorised = bool(np.all(sigma_arr > 0.0))

    # ------------------------------------------------------------------
    # drawing helpers
    # ------------------------------------------------------------------
    def _clip(self, name: str, value: float) -> float:
        nominal = getattr(self._nominal, name)
        sigma = self._sigmas[name]
        low = max(nominal - self.clip_sigma * sigma, nominal * self._FLOOR_FRACTION)
        high = nominal + self.clip_sigma * sigma
        return min(max(value, low), high)

    def _draw_around(
        self,
        mean: ProcessParameters,
        factor: float,
        rng: np.random.Generator,
        offsets: Optional[Dict[str, float]] = None,
    ) -> ProcessParameters:
        """Draw a vector around ``mean`` with sigma scaled by ``factor``.

        ``offsets`` (absolute, per parameter) are added to the mean before
        drawing; this is how the shared band component enters.
        """
        values = {}
        for name in PARAMETER_NAMES:
            centre = getattr(mean, name)
            if offsets is not None:
                centre += offsets.get(name, 0.0)
            sigma = self._sigmas[name] * factor
            value = centre if sigma == 0.0 else rng.normal(centre, sigma)
            values[name] = self._clip(name, value)
        return ProcessParameters(**values)

    def _draw_offsets(
        self, factor: float, rng: np.random.Generator
    ) -> Dict[str, float]:
        """Draw zero-mean absolute offsets with sigma scaled by ``factor``."""
        if factor == 0.0:
            return {name: 0.0 for name in PARAMETER_NAMES}
        return {
            name: float(rng.normal(0.0, self._sigmas[name] * factor))
            for name in PARAMETER_NAMES
        }

    def _draw_residuals(self, rng: np.random.Generator) -> Tuple[float, ...]:
        """Per-band delay residuals: lognormal core plus rare spot outliers."""
        if self.path_residual_sigma <= 0 and self.outlier_band_prob <= 0:
            return ()
        sigma = self.path_residual_sigma
        prob = self.outlier_band_prob
        mean = self._residual_mean
        lognormal = rng.lognormal
        uniform = rng.uniform
        residuals = []
        for _ in range(self.num_bands):
            value = 1.0
            if sigma > 0:
                value = float(lognormal(mean, sigma))
            if prob > 0 and uniform() < prob:
                low, high = self.outlier_scale_range
                value *= float(uniform(low, high))
            residuals.append(value)
        return tuple(residuals)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, chip_id: int = 0) -> CacheVariationMap:
        """Draw one cache's full variation map using ``rng``.

        The draws are fused (one ``standard_normal`` batch per dependency
        group: die+offsets, then one per way) but consume the stream in
        exactly the order the original per-parameter scalar draws did, so
        populations are bit-identical across both implementations — see
        :meth:`sample_reference` and the equivalence test. Parameter
        values become plain Python floats: same bits, much faster
        downstream circuit arithmetic than NumPy scalars.
        """
        if not self._vectorised:
            return self.sample_reference(rng, chip_id)
        n = len(PARAMETER_NAMES)
        num_bands = self.num_bands
        num_peri = len(PERIPHERAL_SEGMENTS)
        factors = self.factors
        low = self._clip_low
        high = self._clip_high

        # Head batch: die vector, then the shared per-band offsets
        # (zero-mean, unclipped — they shift the means the band segments
        # are drawn around).
        inter = factors.inter_die
        band_factor = factors.band
        head = (n if inter != 0.0 else 0) + (
            num_bands * n if band_factor != 0.0 else 0
        )
        z = rng.standard_normal(head) if head else None
        pos = 0
        if inter != 0.0:
            die_values = self._nominal_arr + self._die_scale * z[:n]
            pos = n
        else:
            die_values = self._nominal_arr
        die_values = np.minimum(np.maximum(die_values, low), high)
        die = ProcessParameters(*die_values.tolist())
        if band_factor != 0.0:
            band_offsets = 0.0 + self._band_scale * z[pos:]
        else:
            band_offsets = self._zero_offsets

        # Per-way batch: way vector, the four peripheral segments, then
        # the band segments — all centred on values already drawn.
        row_factor = factors.row
        rest_n = (num_peri + num_bands) * n
        rest_scale = self._rest_scale
        rest_low = self._rest_low
        rest_high = self._rest_high
        way_scales = self._way_scales
        ways = []
        for way in range(self.num_ways):
            way_factor = self._way_factors[way]
            count = (n if way_factor != 0.0 else 0) + (
                rest_n if row_factor != 0.0 else 0
            )
            z = rng.standard_normal(count) if count else None
            if way_factor != 0.0:
                way_values = die_values + way_scales[way] * z[:n]
                offset = n
            else:
                way_values = die_values
                offset = 0
            way_values = np.minimum(np.maximum(way_values, low), high)
            way_params = ProcessParameters(*way_values.tolist())

            centres = np.empty(rest_n)
            centres.reshape(num_peri + num_bands, n)[:] = way_values
            centres[num_peri * n :] += band_offsets
            if row_factor != 0.0:
                rest = centres + rest_scale * z[offset:]
            else:
                rest = centres
            rest = np.minimum(np.maximum(rest, rest_low), rest_high).tolist()
            peripherals = {
                name: ProcessParameters(*rest[i * n : (i + 1) * n])
                for i, name in enumerate(PERIPHERAL_SEGMENTS)
            }
            base = num_peri * n
            bands = tuple(
                ProcessParameters(*rest[base + b * n : base + (b + 1) * n])
                for b in range(num_bands)
            )
            residuals = self._draw_residuals(rng)
            ways.append(
                WayVariation(
                    way=way,
                    params=way_params,
                    bands=bands,
                    band_residuals=residuals,
                    **peripherals,
                )
            )
        return CacheVariationMap(chip_id=chip_id, die=die, ways=tuple(ways))

    def sample_reference(
        self, rng: np.random.Generator, chip_id: int = 0
    ) -> CacheVariationMap:
        """Scalar reference implementation of :meth:`sample`.

        Kept as the differential-testing oracle: draws every parameter
        with an individual generator call, exactly as the original
        sampler did. :meth:`sample` must match it bit for bit.
        """
        die = self._draw_around(self._nominal, self.factors.inter_die, rng)
        band_offsets = [
            self._draw_offsets(self.factors.band, rng) for _ in range(self.num_bands)
        ]
        ways = []
        for way in range(self.num_ways):
            way_factor = self.factors.way_factor(way, self.mesh)
            way_params = self._draw_around(die, way_factor, rng)
            peripherals = {
                name: self._draw_around(way_params, self.factors.row, rng)
                for name in PERIPHERAL_SEGMENTS
            }
            bands = tuple(
                self._draw_around(
                    way_params, self.factors.row, rng, offsets=band_offsets[band]
                )
                for band in range(self.num_bands)
            )
            residuals = self._draw_residuals(rng)
            ways.append(
                WayVariation(
                    way=way,
                    params=way_params,
                    bands=bands,
                    band_residuals=residuals,
                    **peripherals,
                )
            )
        return CacheVariationMap(chip_id=chip_id, die=die, ways=tuple(ways))

    def sample_chip(self, seed: int, chip_id: int) -> CacheVariationMap:
        """Draw the variation map of chip ``chip_id`` under experiment ``seed``.

        Each chip gets an independent generator derived from the seed and
        its id, so populations are stable under reordering and can be
        sampled in parallel.
        """
        rng = spawn(seed, f"chip-{chip_id}")
        return self.sample(rng, chip_id=chip_id)
