"""Command-line interface.

Examples::

    repro list
    repro run table2
    repro run table6 --trace 20000 --benchmarks gzip,mcf,swim
    repro run fig8 --workers 4 --stats --out results/fig8.txt
    repro all --chips 500 --workers 4 --out results/
    repro cache info
    repro cache clear

The same environment variables the experiment settings honour
(``REPRO_CHIPS`` etc.) also work; explicit flags win. ``--workers``
(default ``REPRO_WORKERS``) spreads populations and simulations over a
process pool, and completed work persists under ``.repro_cache/``
(``REPRO_CACHE_DIR``) so repeated runs skip it; ``repro cache`` inspects
or empties that store.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.engine import configure_engine, get_engine
from repro.experiments import (
    ExperimentSettings,
    available_experiments,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Yield-Aware Cache Architectures' (MICRO 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_settings(p: argparse.ArgumentParser, out_help: str) -> None:
        p.add_argument("--seed", type=int, default=None, help="experiment seed")
        p.add_argument(
            "--chips", type=int, default=None, help="Monte Carlo population"
        )
        p.add_argument(
            "--trace", type=int, default=None,
            help="measured instructions per pipeline run",
        )
        p.add_argument(
            "--warmup", type=int, default=None,
            help="cache warmup instructions per pipeline run",
        )
        p.add_argument(
            "--benchmarks", type=str, default=None,
            help="comma-separated benchmark subset",
        )
        p.add_argument("--out", type=pathlib.Path, default=None, help=out_help)
        p.add_argument(
            "--workers", type=int, default=None,
            help="worker processes (default: REPRO_WORKERS or 1)",
        )
        p.add_argument(
            "--stats", action="store_true",
            help="print engine statistics after the run",
        )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    add_settings(
        run_parser,
        out_help=(
            "file to also write the result into "
            "(an existing directory gets <experiment>.txt)"
        ),
    )

    all_parser = sub.add_parser("all", help="run every experiment")
    add_settings(all_parser, out_help="directory to also write results into")

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result store"
    )
    cache_parser.add_argument("action", choices=["info", "clear"])
    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    defaults = ExperimentSettings()
    return ExperimentSettings(
        seed=args.seed if args.seed is not None else defaults.seed,
        chips=args.chips if args.chips is not None else defaults.chips,
        trace_length=args.trace if args.trace is not None else defaults.trace_length,
        warmup=args.warmup if args.warmup is not None else defaults.warmup,
        benchmarks=(
            tuple(args.benchmarks.split(","))
            if args.benchmarks
            else defaults.benchmarks
        ),
    )


def _write_into_dir(result, out: pathlib.Path) -> None:
    from repro.reporting.figures import figure_svg

    out.mkdir(parents=True, exist_ok=True)
    (out / f"{result.experiment}.txt").write_text(
        result.text + "\n", encoding="utf-8"
    )
    svg = figure_svg(result)
    if svg is not None:
        (out / f"{result.experiment}.svg").write_text(svg, encoding="utf-8")


def _write_into_file(result, out: pathlib.Path) -> None:
    from repro.reporting.figures import figure_svg

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(result.text + "\n", encoding="utf-8")
    svg = figure_svg(result)
    if svg is not None and out.suffix != ".svg":
        out.with_suffix(".svg").write_text(svg, encoding="utf-8")


def _emit(result, out: Optional[pathlib.Path], single: bool = False) -> None:
    print(result.text)
    print()
    if out is None:
        return
    if single and not out.is_dir():
        _write_into_file(result, out)
    else:
        _write_into_dir(result, out)


def _cache_command(action: str) -> int:
    store = get_engine().store
    if store is None:
        print("persistent cache disabled (REPRO_CACHE=0)")
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} cache entries from {store.root}")
        return 0
    info = store.info()
    print(f"cache directory  {info['root']}")
    print(f"entries          {info['entries']}")
    print(f"size             {info['bytes'] / 1e6:.2f} MB")
    cap = info["max_bytes"]
    print(f"size cap         {'none' if cap is None else f'{cap / 1e6:.0f} MB'}")
    for kind, count in sorted(info["per_kind"].items()):
        print(f"  {kind:<14} {count}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    if args.command == "cache":
        return _cache_command(args.action)

    if args.workers is not None:
        configure_engine(workers=args.workers)

    settings = _settings_from_args(args)
    if args.command == "run":
        result = run_experiment(args.experiment, settings)
        _emit(result, args.out, single=True)
    else:  # `all`
        for name in available_experiments():
            result = run_experiment(name, settings)
            _emit(result, args.out)

    if args.stats:
        print(get_engine().stats.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
