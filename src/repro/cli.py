"""Command-line interface.

Examples::

    repro list
    repro run table2
    repro run table6 --trace 20000 --benchmarks gzip,mcf,swim
    repro run fig8 --workers 4 --stats --out results/fig8.txt
    repro run table6 --workers 2 --trace run.jsonl   # traced run
    repro trace summary run.jsonl --top 15
    repro all --chips 500 --workers 4 --out results/
    repro cache info
    repro cache clear

The same environment variables the experiment settings honour
(``REPRO_CHIPS`` etc.) also work; explicit flags win. ``--workers``
(default ``REPRO_WORKERS``) spreads populations and simulations over a
process pool, and completed work persists under ``.repro_cache/``
(``REPRO_CACHE_DIR``) so repeated runs skip it; ``repro cache`` inspects
or empties that store.

``--trace`` is overloaded for backward compatibility: a bare integer is
the per-run measured instruction count (as it always was), anything else
is a path that receives the run's JSONL trace spans — from the main
process and every pool worker — which ``repro trace summary`` turns into
per-stage aggregates and a top-N slowest-spans list.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Tuple

from repro.engine import configure_engine, get_engine
from repro.experiments import (
    ExperimentSettings,
    available_experiments,
    run_experiment,
)
from repro.obs import configure_tracing, disable_tracing, summary_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Yield-Aware Cache Architectures' (MICRO 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_settings(p: argparse.ArgumentParser, out_help: str) -> None:
        p.add_argument("--seed", type=int, default=None, help="experiment seed")
        p.add_argument(
            "--chips", type=int, default=None, help="Monte Carlo population"
        )
        p.add_argument(
            "--trace", type=str, default=None,
            help=(
                "an integer: measured instructions per pipeline run; "
                "a path: write JSONL trace spans there"
            ),
        )
        p.add_argument(
            "--warmup", type=int, default=None,
            help="cache warmup instructions per pipeline run",
        )
        p.add_argument(
            "--benchmarks", "--benchmark", type=str, default=None,
            help="comma-separated benchmark subset",
        )
        p.add_argument("--out", type=pathlib.Path, default=None, help=out_help)
        p.add_argument(
            "--workers", type=int, default=None,
            help="worker processes (default: REPRO_WORKERS or 1)",
        )
        p.add_argument(
            "--stats", action="store_true",
            help="print engine statistics after the run",
        )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    add_settings(
        run_parser,
        out_help=(
            "file to also write the result into "
            "(an existing directory gets <experiment>.txt)"
        ),
    )

    all_parser = sub.add_parser("all", help="run every experiment")
    add_settings(all_parser, out_help="directory to also write results into")

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result store"
    )
    cache_parser.add_argument("action", choices=["info", "clear"])

    trace_parser = sub.add_parser(
        "trace", help="inspect a JSONL trace written by --trace <file>"
    )
    trace_parser.add_argument("action", choices=["summary"])
    trace_parser.add_argument("file", type=pathlib.Path, help="JSONL trace")
    trace_parser.add_argument(
        "--top", type=int, default=10,
        help="how many slowest spans to list (default 10)",
    )
    return parser


def _split_trace_arg(
    value: Optional[str],
) -> Tuple[Optional[int], Optional[pathlib.Path]]:
    """Disambiguate ``--trace``: instruction count vs JSONL output path."""
    if value is None:
        return None, None
    try:
        return int(value), None
    except ValueError:
        return None, pathlib.Path(value)


def _settings_from_args(
    args: argparse.Namespace, trace_length: Optional[int]
) -> ExperimentSettings:
    defaults = ExperimentSettings()
    return ExperimentSettings(
        seed=args.seed if args.seed is not None else defaults.seed,
        chips=args.chips if args.chips is not None else defaults.chips,
        trace_length=(
            trace_length if trace_length is not None else defaults.trace_length
        ),
        warmup=args.warmup if args.warmup is not None else defaults.warmup,
        benchmarks=(
            tuple(args.benchmarks.split(","))
            if args.benchmarks
            else defaults.benchmarks
        ),
    )


def _write_into_dir(result, out: pathlib.Path) -> None:
    from repro.reporting.figures import figure_svg

    out.mkdir(parents=True, exist_ok=True)
    (out / f"{result.experiment}.txt").write_text(
        result.text + "\n", encoding="utf-8"
    )
    svg = figure_svg(result)
    if svg is not None:
        (out / f"{result.experiment}.svg").write_text(svg, encoding="utf-8")


def _write_into_file(result, out: pathlib.Path) -> None:
    from repro.reporting.figures import figure_svg

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(result.text + "\n", encoding="utf-8")
    svg = figure_svg(result)
    if svg is not None and out.suffix != ".svg":
        out.with_suffix(".svg").write_text(svg, encoding="utf-8")


def _emit(result, out: Optional[pathlib.Path], single: bool = False) -> None:
    print(result.text)
    print()
    if out is None:
        return
    if single and not out.is_dir():
        _write_into_file(result, out)
    else:
        _write_into_dir(result, out)


def _cache_command(action: str) -> int:
    store = get_engine().store
    if store is None:
        print("persistent cache disabled (REPRO_CACHE=0)")
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} cache entries from {store.root}")
        return 0
    info = store.info()
    print(f"cache directory  {info['root']}")
    print(f"entries          {info['entries']}")
    print(f"size             {info['bytes'] / 1e6:.2f} MB")
    cap = info["max_bytes"]
    print(f"size cap         {'none' if cap is None else f'{cap / 1e6:.0f} MB'}")
    for kind, count in sorted(info["per_kind"].items()):
        print(f"  {kind:<14} {count}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    if args.command == "cache":
        return _cache_command(args.action)

    if args.command == "trace":
        print(summary_text(args.file, top=args.top))
        return 0

    trace_length, trace_path = _split_trace_arg(args.trace)
    if trace_path is not None:
        # Enable before the engine exists so pool workers (forked during
        # dispatch) inherit the tracer and append to the same file.
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        configure_tracing(trace_path)

    if args.workers is not None:
        configure_engine(workers=args.workers)

    try:
        settings = _settings_from_args(args, trace_length)
        if args.command == "run":
            result = run_experiment(args.experiment, settings)
            _emit(result, args.out, single=True)
        else:  # `all`
            for name in available_experiments():
                result = run_experiment(name, settings)
                _emit(result, args.out)

        if args.stats:
            print(get_engine().stats.summary())
        if trace_path is not None:
            print(f"trace spans written to {trace_path}")
    finally:
        if trace_path is not None:
            disable_tracing()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
