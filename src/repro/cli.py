"""Command-line interface.

Examples::

    repro list
    repro run table2
    repro run table6 --trace 20000 --benchmarks gzip,mcf,swim
    repro run fig8 --workers 4 --stats --out results/fig8.txt
    repro run table6 --workers 2 --trace run.jsonl   # traced run
    repro trace summary run.jsonl --top 15
    repro trace flamegraph run.jsonl --out flame.html
    repro all --chips 500 --workers 4 --out results/
    repro cache info
    repro cache clear
    repro bench run --suite engine --repeats 5
    repro bench compare --tolerance 0.1
    repro bench report bench.html
    repro serve --port 8787 --workers 2
    repro serve --port 0 --max-active 4 --trace serve.jsonl

The same environment variables the experiment settings honour
(``REPRO_CHIPS`` etc.) also work; explicit flags win. ``--workers``
(default ``REPRO_WORKERS``) spreads populations and simulations over a
process pool, and completed work persists under ``.repro_cache/``
(``REPRO_CACHE_DIR``) so repeated runs skip it; ``repro cache`` inspects
or empties that store.

``--trace`` is overloaded for backward compatibility: a bare integer is
the per-run measured instruction count (as it always was), anything else
is a path that receives the run's JSONL trace spans — from the main
process and every pool worker — which ``repro trace summary`` turns into
per-stage aggregates and a top-N slowest-spans list, and ``repro trace
flamegraph`` into a self-contained collapsible HTML flamegraph.

``repro bench`` is the perf-regression surface: ``run`` executes a
benchmark suite (warmup + repeats on a scratch engine) and appends
provenance-stamped records to the ``BENCH_history.json`` trend store,
``compare`` classifies the latest run against a baseline
(improved/neutral/regressed, bootstrap CI on median deltas), and
``report`` renders the history as one self-contained HTML page. ``run``
refuses a dirty working tree unless ``--allow-dirty`` is passed, so the
recorded git SHAs stay honest. ``repro run`` and ``repro bench run``
both keep a background resource sampler going (RSS / CPU gauges).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.engine import configure_engine, get_engine
from repro.experiments import (
    ExperimentSettings,
    available_experiments,
    run_experiment,
)
from repro.obs import configure_tracing, disable_tracing, summary_text
from repro.yieldmodel.estimators import ESTIMATOR_KINDS, EstimatorSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Yield-Aware Cache Architectures' (MICRO 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_settings(p: argparse.ArgumentParser, out_help: str) -> None:
        p.add_argument("--seed", type=int, default=None, help="experiment seed")
        p.add_argument(
            "--chips", type=int, default=None, help="Monte Carlo population"
        )
        p.add_argument(
            "--trace", type=str, default=None,
            help=(
                "an integer: measured instructions per pipeline run; "
                "a path: write JSONL trace spans there"
            ),
        )
        p.add_argument(
            "--warmup", type=int, default=None,
            help="cache warmup instructions per pipeline run",
        )
        p.add_argument(
            "--benchmarks", "--benchmark", type=str, default=None,
            help="comma-separated benchmark subset",
        )
        p.add_argument("--out", type=pathlib.Path, default=None, help=out_help)
        p.add_argument(
            "--workers", type=int, default=None,
            help="worker processes (default: REPRO_WORKERS or 1)",
        )
        p.add_argument(
            "--stats", action="store_true",
            help="print engine statistics after the run",
        )
        p.add_argument(
            "--estimator", choices=ESTIMATOR_KINDS, default=None,
            help=(
                "yield estimator: fixed (default), adaptive (CI-driven "
                "early stopping), stratified, is (importance sampling); "
                "the weighted kinds run through the 'estimators' "
                "experiment only"
            ),
        )
        p.add_argument(
            "--ci-target", type=float, default=None,
            help=(
                "stop sampling once every yield CI half-width is at or "
                "below this (requires --estimator; default: run to the "
                "full population)"
            ),
        )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    add_settings(
        run_parser,
        out_help=(
            "file to also write the result into "
            "(an existing directory gets <experiment>.txt)"
        ),
    )

    all_parser = sub.add_parser("all", help="run every experiment")
    add_settings(all_parser, out_help="directory to also write results into")

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result store"
    )
    cache_parser.add_argument("action", choices=["info", "clear"])

    trace_parser = sub.add_parser(
        "trace", help="inspect a JSONL trace written by --trace <file>"
    )
    trace_parser.add_argument("action", choices=["summary", "flamegraph"])
    trace_parser.add_argument(
        "file", type=pathlib.Path,
        help=(
            "JSONL trace to read; for flamegraph an .html path is also "
            "accepted here as the output (the trace then comes from "
            "--input or the default BENCH_trace.jsonl)"
        ),
    )
    trace_parser.add_argument(
        "--top", type=int, default=10,
        help="how many slowest spans to list (default 10, summary only)",
    )
    trace_parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="flamegraph output path (default: trace file with .html)",
    )
    trace_parser.add_argument(
        "--input", type=pathlib.Path, default=None,
        help="flamegraph trace input when the positional is the output",
    )

    bench_parser = sub.add_parser(
        "bench", help="benchmark suites, trend store and regression checks"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run a suite and record provenance-stamped timings"
    )
    bench_run.add_argument(
        "--suite", default="engine",
        help="suite to run, or 'all' (default: engine)",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=5,
        help="timed runs per benchmark (default 5)",
    )
    bench_run.add_argument(
        "--warmup-runs", type=int, default=1,
        help="untimed warmup runs per benchmark (default 1)",
    )
    bench_run.add_argument(
        "--workers", type=int, default=1,
        help="engine worker processes for the benchmarks (default 1)",
    )
    bench_run.add_argument(
        "--history", type=pathlib.Path, default=None,
        help="trend store path (default BENCH_history.json)",
    )
    bench_run.add_argument(
        "--allow-dirty", action="store_true",
        help="record timings even with uncommitted changes",
    )
    bench_run.add_argument(
        "--trace", type=pathlib.Path, default=None,
        help="JSONL trace output (default BENCH_trace.jsonl)",
    )
    bench_run.add_argument(
        "--no-trace", action="store_true", help="skip trace span export"
    )

    bench_compare = bench_sub.add_parser(
        "compare", help="classify the latest run against a baseline"
    )
    bench_compare.add_argument(
        "--history", type=pathlib.Path, default=None,
        help="trend store path (default BENCH_history.json)",
    )
    bench_compare.add_argument(
        "--baseline", default=None,
        help=(
            "baseline: a run-id prefix from the history, or a path to a "
            "BENCH_*.json file (default: the previous run in the history)"
        ),
    )
    bench_compare.add_argument(
        "--suite", default=None, help="restrict the comparison to one suite"
    )
    bench_compare.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative no-change band around the baseline median "
             "(default 0.05 = 5%%)",
    )
    bench_compare.add_argument(
        "--warn-only", action="store_true",
        help="exit 0 even when a regression is detected (CI smoke mode)",
    )

    bench_report = bench_sub.add_parser(
        "report", help="render the trend store as self-contained HTML"
    )
    bench_report.add_argument(
        "out", type=pathlib.Path, help="HTML output path"
    )
    bench_report.add_argument(
        "--history", type=pathlib.Path, default=None,
        help="trend store path (default BENCH_history.json)",
    )
    bench_report.add_argument(
        "--suite", default=None, help="restrict the report to one suite"
    )
    bench_report.add_argument(
        "--tolerance", type=float, default=0.05,
        help="tolerance for the embedded verdict table (default 0.05)",
    )

    serve_parser = sub.add_parser(
        "serve", help="run the long-lived yield-analysis HTTP service"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8787,
        help="bind port; 0 picks an ephemeral port (default 8787)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None,
        help="engine worker processes (default: REPRO_WORKERS or 1)",
    )
    serve_parser.add_argument(
        "--max-active", type=int, default=8,
        help="cold requests computing at once (default 8)",
    )
    serve_parser.add_argument(
        "--max-queued", type=int, default=64,
        help="cold requests waiting for admission before 503 (default 64)",
    )
    serve_parser.add_argument(
        "--max-per-client", type=int, default=16,
        help="queued requests per client before 429 (default 16)",
    )
    serve_parser.add_argument(
        "--batch-window", type=float, default=0.01,
        help="seconds compatible simulations wait to share one dispatch "
             "(default 0.01)",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to finish in-flight work on SIGTERM (default 30)",
    )
    serve_parser.add_argument(
        "--trace", type=pathlib.Path, default=None,
        help="write JSONL trace spans (one serve.request span per request)",
    )
    serve_parser.add_argument(
        "--log-requests", type=pathlib.Path, default=None, metavar="FILE",
        help="append one JSONL line per finished request to FILE",
    )
    serve_parser.add_argument(
        "--window", type=float, default=10.0, metavar="SECONDS",
        help="width of one rolling-SLO window on /metrics (default 10)",
    )
    serve_parser.add_argument(
        "--window-count", type=int, default=6, metavar="N",
        help="windows retained in the rolling ring (default 6)",
    )
    serve_parser.add_argument(
        "--no-dashboard", dest="dashboard", action="store_false",
        help="do not serve the live HTML dashboard at /dashboard",
    )
    return parser


def _split_trace_arg(
    value: Optional[str],
) -> Tuple[Optional[int], Optional[pathlib.Path]]:
    """Disambiguate ``--trace``: instruction count vs JSONL output path."""
    if value is None:
        return None, None
    try:
        return int(value), None
    except ValueError:
        return None, pathlib.Path(value)


def _settings_from_args(
    args: argparse.Namespace, trace_length: Optional[int]
) -> ExperimentSettings:
    defaults = ExperimentSettings()
    return ExperimentSettings(
        seed=args.seed if args.seed is not None else defaults.seed,
        chips=args.chips if args.chips is not None else defaults.chips,
        trace_length=(
            trace_length if trace_length is not None else defaults.trace_length
        ),
        warmup=args.warmup if args.warmup is not None else defaults.warmup,
        benchmarks=(
            tuple(args.benchmarks.split(","))
            if args.benchmarks
            else defaults.benchmarks
        ),
    )


def _write_into_dir(result, out: pathlib.Path) -> None:
    from repro.reporting.figures import figure_svg

    out.mkdir(parents=True, exist_ok=True)
    (out / f"{result.experiment}.txt").write_text(
        result.text + "\n", encoding="utf-8"
    )
    svg = figure_svg(result)
    if svg is not None:
        (out / f"{result.experiment}.svg").write_text(svg, encoding="utf-8")


def _write_into_file(result, out: pathlib.Path) -> None:
    from repro.reporting.figures import figure_svg

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(result.text + "\n", encoding="utf-8")
    svg = figure_svg(result)
    if svg is not None and out.suffix != ".svg":
        out.with_suffix(".svg").write_text(svg, encoding="utf-8")


def _emit(result, out: Optional[pathlib.Path], single: bool = False) -> None:
    print(result.text)
    print()
    if out is None:
        return
    if single and not out.is_dir():
        _write_into_file(result, out)
    else:
        _write_into_dir(result, out)


def _cache_command(action: str) -> int:
    from repro.workloads.compiled import clear_trace_cache, trace_cache_info

    store = get_engine().store
    if action == "clear":
        dropped = clear_trace_cache()
        if store is None:
            print("persistent cache disabled (REPRO_CACHE=0)")
        else:
            removed = store.clear()
            print(f"removed {removed} cache entries from {store.root}")
        print(f"dropped {dropped} compiled traces from the in-process cache")
        return 0
    if store is None:
        print("persistent cache disabled (REPRO_CACHE=0)")
    else:
        info = store.info()
        print(f"cache directory  {info['root']}")
        print(f"entries          {info['entries']}")
        print(f"size             {info['bytes'] / 1e6:.2f} MB")
        cap = info["max_bytes"]
        print(
            f"size cap         "
            f"{'none' if cap is None else f'{cap / 1e6:.0f} MB'}"
        )
        for kind, count in sorted(info["per_kind"].items()):
            print(f"  {kind:<14} {count}")
    # The compiled-trace cache is per process (workers each hold their
    # own); this row reports this process's view.
    ctrace = trace_cache_info()
    print(
        f"compiled traces  {ctrace['entries']} "
        f"({ctrace['instructions']} instructions, "
        f"{ctrace['bytes'] / 1e6:.2f} MB packed), "
        f"hit rate {ctrace['hit_rate']:.0%} "
        f"({ctrace['hits']} hits / {ctrace['misses']} misses)"
    )
    return 0


#: Default JSONL destination of ``repro bench run`` trace spans.
DEFAULT_BENCH_TRACE = pathlib.Path("BENCH_trace.jsonl")


def _default_flamegraph_input() -> Optional[pathlib.Path]:
    """The trace a bare ``repro trace flamegraph out.html`` should read."""
    import os

    env = os.environ.get("REPRO_TRACE_FILE")
    candidates = [pathlib.Path(env)] if env else []
    candidates += [DEFAULT_BENCH_TRACE, pathlib.Path("trace.jsonl")]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def _trace_command(args: argparse.Namespace) -> int:
    if args.action == "summary":
        print(summary_text(args.file, top=args.top))
        return 0
    # flamegraph: the positional is normally the trace, but accept an
    # .html path there as the output for symmetry with `bench report`.
    from repro.obs.report import render_flamegraph
    from repro.obs.summary import load_spans_counted

    if args.file.suffix == ".html" and not args.file.is_file():
        out = args.file
        source = args.input or _default_flamegraph_input()
        if source is None:
            print(
                "error: no trace input found — pass one with --input, or "
                "run `repro bench run` / `repro run --trace out.jsonl` "
                "first",
                file=sys.stderr,
            )
            return 2
    else:
        source = args.file
        out = args.out or args.file.with_suffix(".html")
    try:
        spans, skipped = load_spans_counted(source)
    except OSError as exc:
        print(f"error: cannot read trace {source}: {exc}", file=sys.stderr)
        return 2
    render_flamegraph(spans, out, skipped=skipped, source=str(source))
    if skipped:
        print(f"warning: skipped {skipped} malformed trace line(s)")
    print(f"flamegraph written to {out} ({len(spans)} spans)")
    return 0


def _bench_history(args: argparse.Namespace) -> pathlib.Path:
    from repro.obs.bench import DEFAULT_HISTORY_PATH

    return args.history if args.history is not None else DEFAULT_HISTORY_PATH


def _bench_run_command(args: argparse.Namespace) -> int:
    import time

    from repro.obs import ResourceSampler, provenance_stamp, working_tree_dirty
    from repro.obs.bench import (
        SUITES,
        append_history,
        available_suites,
        make_record,
        new_run_id,
        run_suite,
        write_latest,
    )

    if working_tree_dirty() is True and not args.allow_dirty:
        print(
            "error: the working tree has uncommitted changes, so the "
            "recorded git SHA would misattribute these timings.\n"
            "Commit (or stash) first, or pass --allow-dirty to record "
            "anyway (the record is then flagged dirty).",
            file=sys.stderr,
        )
        return 2
    suites = available_suites() if args.suite == "all" else [args.suite]
    unknown = [s for s in suites if s not in SUITES]
    if unknown:
        print(
            f"error: unknown suite {unknown[0]!r}; "
            f"available: {available_suites()} (or 'all')",
            file=sys.stderr,
        )
        return 2

    history = _bench_history(args)
    trace_path = None
    if not args.no_trace:
        trace_path = args.trace if args.trace is not None else DEFAULT_BENCH_TRACE
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        configure_tracing(trace_path)
    sampler = ResourceSampler()
    sampler.start()
    try:
        created = time.time()
        provenance = provenance_stamp(
            workers=args.workers,
            config={
                "suites": suites,
                "repeats": args.repeats,
                "warmup": args.warmup_runs,
                "workers": args.workers,
            },
        )
        run_id = new_run_id(",".join(suites), created, provenance)
        print(f"== bench run {run_id} ==")
        print(
            f"commit {provenance['git_sha'][:12]}"
            + (" (dirty)" if provenance["dirty"] else "")
            + f", python {provenance['python']}, workers {args.workers}, "
            f"repeats {args.repeats} (+{args.warmup_runs} warmup)"
        )
        records = []
        for suite in suites:
            results = run_suite(
                suite,
                repeats=args.repeats,
                warmup=args.warmup_runs,
                workers=args.workers,
            )
            sampler.sample_now()  # refresh gauges before records snapshot them
            suite_records = [
                make_record(result, run_id, created, provenance)
                for result in results
            ]
            records.extend(suite_records)
            latest = write_latest(suite, suite_records)
            for result in results:
                print(
                    f"  {result.bench:<28} median {result.median * 1e3:9.3f}ms"
                    f"  min {min(result.samples) * 1e3:9.3f}ms"
                    f"  max {max(result.samples) * 1e3:9.3f}ms"
                )
            print(f"  latest results -> {latest}")
        total = append_history(history, records)
        print(f"history -> {history} ({total} records)")
    finally:
        resources = sampler.stop()
        if trace_path is not None:
            disable_tracing()
    if trace_path is not None:
        print(f"trace spans -> {trace_path}")
    if resources.get("rss_peak_bytes"):
        print(
            f"peak rss {resources['rss_peak_bytes'] / 1e6:.1f} MB, "
            f"cpu {resources['cpu_user_seconds']:.2f}s user / "
            f"{resources['cpu_system_seconds']:.2f}s system"
        )
    return 0


def _resolve_baseline(
    baseline_arg: Optional[str],
    records,
    ids,
    suite: Optional[str],
):
    """The baseline's per-bench samples and a description of its origin."""
    from repro.core.errors import ConfigurationError
    from repro.obs.bench import load_history, run_ids, samples_by_bench

    if baseline_arg is not None:
        path = pathlib.Path(baseline_arg)
        if path.is_file():
            base_records, _ = load_history(path)
            base_ids = run_ids(base_records)
            if not base_ids:
                raise ConfigurationError(
                    f"baseline file {path} holds no valid records"
                )
            return (
                samples_by_bench(
                    base_records, run_id=base_ids[-1], suite=suite
                ),
                f"file {path} (run {base_ids[-1]})",
            )
        matches = [i for i in ids if i.startswith(baseline_arg)]
        if len(matches) != 1:
            raise ConfigurationError(
                f"baseline {baseline_arg!r} matches {len(matches)} runs in "
                f"the history; known run ids: {ids}"
            )
        return (
            samples_by_bench(records, run_id=matches[0], suite=suite),
            f"run {matches[0]}",
        )
    base_id = ids[-2] if len(ids) >= 2 else ids[-1]
    origin = f"run {base_id}" + (
        " (latest run compared against itself: only one run recorded)"
        if len(ids) < 2
        else ""
    )
    return samples_by_bench(records, run_id=base_id, suite=suite), origin


def _bench_compare_command(args: argparse.Namespace) -> int:
    from repro.obs.bench import load_history, run_ids, samples_by_bench
    from repro.obs.regress import REGRESSED, compare_runs, worst_verdict

    history = _bench_history(args)
    records, skipped = load_history(history)
    if skipped:
        print(f"warning: skipped {skipped} malformed history record(s)")
    if args.suite is not None:
        records = [r for r in records if r["suite"] == args.suite]
    ids = run_ids(records)
    if not ids:
        print(
            f"error: no bench records in {history}; "
            "run `repro bench run` first",
            file=sys.stderr,
        )
        return 2
    current_id = ids[-1]
    current = samples_by_bench(records, run_id=current_id, suite=args.suite)
    baseline, origin = _resolve_baseline(args.baseline, records, ids, args.suite)
    print(f"== bench compare: run {current_id} vs {origin} ==")
    comparisons, unmatched = compare_runs(
        baseline, current, tolerance=args.tolerance
    )
    for comparison in comparisons:
        print(f"  {comparison.describe()}")
    for name in unmatched:
        print(f"  {name:<28} (present in only one of the runs)")
    overall = worst_verdict(comparisons)
    if overall is None:
        print("no benchmarks in common with the baseline")
        return 2
    print(f"overall: {overall} (tolerance {args.tolerance * 100:g}%)")
    if overall == REGRESSED and not args.warn_only:
        return 1
    return 0


def _bench_report_command(args: argparse.Namespace) -> int:
    from repro.obs.bench import load_history, run_ids, samples_by_bench
    from repro.obs.regress import compare_runs
    from repro.obs.report import render_bench_report

    history = _bench_history(args)
    records, skipped = load_history(history)
    if args.suite is not None:
        records = [r for r in records if r["suite"] == args.suite]
    comparisons = None
    ids = run_ids(records)
    if len(ids) >= 2:
        comparisons, _ = compare_runs(
            samples_by_bench(records, run_id=ids[-2], suite=args.suite),
            samples_by_bench(records, run_id=ids[-1], suite=args.suite),
            tolerance=args.tolerance,
        )
    out = render_bench_report(
        records, args.out, skipped=skipped, comparisons=comparisons
    )
    print(f"bench report written to {out} ({len(records)} records)")
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    from repro.core.errors import ConfigurationError
    from repro.serve.server import ServeConfig, run_server

    if args.trace is not None:
        args.trace.parent.mkdir(parents=True, exist_ok=True)
        configure_tracing(args.trace)
    if args.workers is not None:
        configure_engine(workers=args.workers)
    if args.window <= 0:
        raise ConfigurationError("--window must be positive")
    if args.window_count < 1:
        raise ConfigurationError("--window-count must be >= 1")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_active=args.max_active,
        max_queued=args.max_queued,
        max_per_client=args.max_per_client,
        batch_window=args.batch_window,
        drain_timeout=args.drain_timeout,
        window_seconds=args.window,
        window_count=args.window_count,
        request_log=(
            str(args.log_requests) if args.log_requests is not None else None
        ),
        dashboard=args.dashboard,
    )

    def announce(server) -> None:
        print(
            f"repro serve listening on http://{server.host}:{server.port}",
            flush=True,
        )
        print(
            f"  workers {get_engine().config.workers}, "
            f"max-active {config.max_active}, "
            f"max-queued {config.max_queued}",
            flush=True,
        )
        if config.dashboard:
            print(
                f"  dashboard http://{server.host}:{server.port}/dashboard",
                flush=True,
            )
        if config.request_log:
            print(f"  request log {config.request_log}", flush=True)

    try:
        run_server(config, engine=get_engine(), announce=announce)
    finally:
        if args.trace is not None:
            disable_tracing()
    print("repro serve: drained, exiting", flush=True)
    return 0


def _bench_command(args: argparse.Namespace) -> int:
    from repro.core.errors import ConfigurationError

    try:
        if args.bench_command == "run":
            return _bench_run_command(args)
        if args.bench_command == "compare":
            return _bench_compare_command(args)
        return _bench_report_command(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    if args.command == "cache":
        return _cache_command(args.action)

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "bench":
        return _bench_command(args)

    if args.command == "serve":
        return _serve_command(args)

    from repro.obs import ResourceSampler

    trace_length, trace_path = _split_trace_arg(args.trace)
    if trace_path is not None:
        # Enable before the engine exists so pool workers (forked during
        # dispatch) inherit the tracer and append to the same file.
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        configure_tracing(trace_path)

    if args.ci_target is not None and args.estimator is None:
        print(
            "error: --ci-target requires --estimator "
            "(adaptive, stratified or is)",
            file=sys.stderr,
        )
        return 2
    if args.estimator in ("stratified", "is") and not (
        args.command == "run" and args.experiment == "estimators"
    ):
        print(
            f"error: the {args.estimator!r} estimator reweights chips and "
            "cannot back scheme-level experiments; run it through "
            "'repro run estimators'",
            file=sys.stderr,
        )
        return 2
    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.estimator is not None:
        try:
            overrides["estimator"] = EstimatorSpec(
                kind=args.estimator, ci_target=args.ci_target
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if overrides:
        configure_engine(**overrides)

    sampler = ResourceSampler()
    sampler.start()
    try:
        settings = _settings_from_args(args, trace_length)
        if args.command == "run":
            result = run_experiment(args.experiment, settings)
            _emit(result, args.out, single=True)
        else:  # `all`
            for name in available_experiments():
                result = run_experiment(name, settings)
                _emit(result, args.out)

        resources = sampler.stop()
        if args.stats:
            print(get_engine().stats.summary())
            if resources.get("rss_peak_bytes"):
                print(
                    f"peak rss           "
                    f"{resources['rss_peak_bytes'] / 1e6:.1f} MB"
                )
        if trace_path is not None:
            print(f"trace spans written to {trace_path}")
    finally:
        sampler.stop()
        if trace_path is not None:
            disable_tracing()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
