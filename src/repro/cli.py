"""Command-line interface.

Examples::

    repro list
    repro run table2
    repro run table6 --trace 20000 --benchmarks gzip,mcf,swim
    repro all --chips 500 --out results/

The same environment variables the experiment settings honour
(``REPRO_CHIPS`` etc.) also work; explicit flags win.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.experiments import (
    ExperimentSettings,
    available_experiments,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Yield-Aware Cache Architectures' (MICRO 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_settings(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=None, help="experiment seed")
        p.add_argument(
            "--chips", type=int, default=None, help="Monte Carlo population"
        )
        p.add_argument(
            "--trace", type=int, default=None,
            help="measured instructions per pipeline run",
        )
        p.add_argument(
            "--warmup", type=int, default=None,
            help="cache warmup instructions per pipeline run",
        )
        p.add_argument(
            "--benchmarks", type=str, default=None,
            help="comma-separated benchmark subset",
        )
        p.add_argument(
            "--out", type=pathlib.Path, default=None,
            help="directory to also write results into",
        )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    add_settings(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    add_settings(all_parser)
    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    defaults = ExperimentSettings()
    return ExperimentSettings(
        seed=args.seed if args.seed is not None else defaults.seed,
        chips=args.chips if args.chips is not None else defaults.chips,
        trace_length=args.trace if args.trace is not None else defaults.trace_length,
        warmup=args.warmup if args.warmup is not None else defaults.warmup,
        benchmarks=(
            tuple(args.benchmarks.split(","))
            if args.benchmarks
            else defaults.benchmarks
        ),
    )


def _emit(result, out: Optional[pathlib.Path]) -> None:
    from repro.reporting.figures import figure_svg

    print(result.text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{result.experiment}.txt").write_text(
            result.text + "\n", encoding="utf-8"
        )
        svg = figure_svg(result)
        if svg is not None:
            (out / f"{result.experiment}.svg").write_text(svg, encoding="utf-8")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    settings = _settings_from_args(args)
    if args.command == "run":
        result = run_experiment(args.experiment, settings)
        _emit(result, args.out)
        return 0

    # `all`
    for name in available_experiments():
        result = run_experiment(name, settings)
        _emit(result, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
