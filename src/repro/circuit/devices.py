"""First-order MOSFET behaviour under process variation.

Three effects carry essentially all of the paper's Section 2 physics:

* **Threshold roll-off** — a shorter channel lowers the effective
  threshold voltage (DIBL / short-channel effect). This couples gate-length
  variation into both delay (faster) and leakage (exponentially leakier),
  and is what makes the fast bins leaky (paper Sections 1-2).
* **Alpha-power-law drive current** — ``I_on ~ (W/L) * (Vdd - Vt_eff)^alpha``
  (Sakurai-Newton). Delay of a switching stage is then
  ``delay_coeff * C * Vdd / I_on``.
* **Subthreshold leakage** — exponential in the effective threshold:
  ``I_sub ~ (W/L) * 10^(-Vt_eff / swing)``, with the textbook thermal
  scaling (magnitude ~T^2, swing ~T) so yield can be studied at different
  binning temperatures; at the calibration reference (85 C) the thermal
  factors are exactly 1.
"""

from __future__ import annotations

from repro.circuit.technology import Technology
from repro.core.errors import ConfigurationError
from repro.variation.parameters import ProcessParameters

__all__ = [
    "effective_threshold",
    "drive_current",
    "subthreshold_current",
    "effective_resistance",
    "stage_delay",
]

#: Effective thresholds are floored here so the exponentials stay finite
#: even for extreme (clipped) parameter draws.
_MIN_VT = 0.02
#: Overdrive floor: a device this close to Vdd-limited is treated as broken
#: rather than producing absurd delays.
_MIN_OVERDRIVE = 0.05


def effective_threshold(params: ProcessParameters, tech: Technology) -> float:
    """Effective threshold voltage (V) after gate-length roll-off.

    ``Vt_eff = Vt - vt_rolloff * (L_nominal - L) / L_nominal`` — a device
    with a shorter-than-nominal channel has a lower threshold, a longer
    channel a higher one.
    """
    shortfall = (tech.nominal_lgate - params.lgate) / tech.nominal_lgate
    return max(params.vt - tech.vt_rolloff * shortfall, _MIN_VT)


def drive_current(width: float, params: ProcessParameters, tech: Technology) -> float:
    """Saturation drive current (A) of a device of the given width (m)."""
    if width <= 0:
        raise ConfigurationError(f"device width must be > 0, got {width}")
    vt_eff = effective_threshold(params, tech)
    overdrive = max(tech.vdd - vt_eff, _MIN_OVERDRIVE)
    mobility = tech.temperature_ratio ** (-tech.mobility_exponent)
    return (
        tech.drive_k * mobility * (width / params.lgate)
        * overdrive**tech.alpha
    )


def subthreshold_current(
    width: float, params: ProcessParameters, tech: Technology
) -> float:
    """Subthreshold (off-state) leakage current (A) of a device (width in m)."""
    if width <= 0:
        raise ConfigurationError(f"device width must be > 0, got {width}")
    vt_eff = effective_threshold(params, tech)
    ratio = tech.temperature_ratio
    swing = tech.subthreshold_swing * ratio  # n*kT/q*ln10 scales with T
    return (
        tech.leak_i0
        * ratio**2
        * (width / params.lgate)
        * 10.0 ** (-vt_eff / swing)
    )


def effective_resistance(
    width: float, params: ProcessParameters, tech: Technology
) -> float:
    """Effective switching resistance (ohm) of a driver of the given width."""
    return tech.vdd / drive_current(width, params, tech)


def stage_delay(
    drive_width: float,
    load_cap: float,
    params: ProcessParameters,
    tech: Technology,
) -> float:
    """Delay (s) of one switching stage driving ``load_cap`` farads."""
    if load_cap < 0:
        raise ConfigurationError(f"load capacitance must be >= 0, got {load_cap}")
    return tech.delay_coeff * effective_resistance(drive_width, params, tech) * load_cap
