"""Whole-cache delay and leakage under a sampled variation map.

:class:`CacheCircuitModel` is the reproduction's stand-in for the paper's
per-chip HSPICE run: given a :class:`~repro.variation.sampling.CacheVariationMap`
it produces a :class:`CacheCircuitResult` holding

* the delay of every (way, band) access path — the paper's
  "critical/near-critical paths" of each way,
* per-way access delay (max over its bands) and whole-cache access delay
  (max over ways),
* leakage decomposed into per-(way, band) array leakage and per-way
  peripheral leakage, which is exactly the granularity the power-down
  schemes reason about (YAPD removes a way's array *and* peripherals;
  H-YAPD removes one band of every way plus a fraction of peripherals).

An ``hyapd=True`` model applies the paper's measured 2.5% access-latency
overhead of the reorganised post-decoders (Section 4.2) uniformly to all
paths; leakage is unchanged.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.circuit import devices, interconnect, sram
from repro.circuit.devices import subthreshold_current
from repro.circuit.organization import CacheOrganization, PAPER_ORGANIZATION
from repro.circuit.paths import PathSizing, DEFAULT_PATH_SIZING, access_path_delay
from repro.circuit.technology import Technology, TECH45
from repro.core import units
from repro.core.errors import ConfigurationError
from repro.variation.parameters import TABLE1, VariationTable
from repro.variation.sampling import (
    CacheVariationMap,
    WayVariation,
    PERIPHERAL_SEGMENTS,
)

__all__ = ["WayCircuitResult", "CacheCircuitResult", "CacheCircuitModel"]

#: Effective leaking transistor width (m) of each peripheral segment,
#: sized so peripherals contribute a high-single-digit percentage of the
#: nominal cache leakage (the cell array dominates, as in the paper).
PERIPHERAL_LEAK_WIDTHS = {
    "decoder": 200 * units.UM,
    "precharge": 100 * units.UM,
    "senseamp": 120 * units.UM,
    "outdriver": 50 * units.UM,
}


class WayCircuitResult(NamedTuple):
    """Delay and leakage of one cache way.

    A ``NamedTuple``: population evaluation builds two of these per
    (chip, way) — regular and H-YAPD — so construction cost is hot.

    Attributes
    ----------
    way:
        Way index.
    band_delays:
        Access-path delay (s) through each horizontal band of this way.
    band_leakage:
        Array leakage power (W) of each band of this way.
    peripheral_leakage:
        Leakage power (W) of this way's decoder/precharge/sense/output
        periphery.
    """

    way: int
    band_delays: Tuple[float, ...]
    band_leakage: Tuple[float, ...]
    peripheral_leakage: float

    @property
    def delay(self) -> float:
        """Access delay (s) of the way: its slowest band path."""
        return max(self.band_delays)

    @property
    def array_leakage(self) -> float:
        """Total array leakage power (W) of the way."""
        return sum(self.band_leakage)

    @property
    def leakage(self) -> float:
        """Total leakage power (W) of the way (array + periphery)."""
        return self.array_leakage + self.peripheral_leakage

    def delay_without_band(self, band: int) -> float:
        """Way delay (s) if horizontal band ``band`` were powered down."""
        remaining = [d for i, d in enumerate(self.band_delays) if i != band]
        if not remaining:
            raise ConfigurationError("cannot power down the only band of a way")
        return max(remaining)

    def critical_band(self) -> int:
        """Index of the band holding this way's critical path."""
        return max(range(len(self.band_delays)), key=lambda i: self.band_delays[i])


class CacheCircuitResult(NamedTuple):
    """Delay and leakage of one manufactured cache."""

    chip_id: int
    ways: Tuple[WayCircuitResult, ...]
    hyapd: bool = False

    @property
    def num_ways(self) -> int:
        return len(self.ways)

    @property
    def num_bands(self) -> int:
        return len(self.ways[0].band_delays)

    @property
    def way_delays(self) -> Tuple[float, ...]:
        """Access delay (s) of every way."""
        return tuple(way.delay for way in self.ways)

    @property
    def access_delay(self) -> float:
        """Cache access delay (s): the slowest way (paper Section 5.1)."""
        return max(self.way_delays)

    @property
    def way_leakages(self) -> Tuple[float, ...]:
        """Total leakage power (W) of every way."""
        return tuple(way.leakage for way in self.ways)

    @property
    def total_leakage(self) -> float:
        """Total cache leakage power (W)."""
        return sum(self.way_leakages)

    def band_array_leakage(self, band: int) -> float:
        """Array leakage (W) of horizontal band ``band`` summed over ways."""
        return sum(way.band_leakage[band] for way in self.ways)

    def total_peripheral_leakage(self) -> float:
        """Leakage (W) of all way peripheries."""
        return sum(way.peripheral_leakage for way in self.ways)


class CacheCircuitModel:
    """Evaluates sampled caches into delays and leakage.

    Parameters
    ----------
    tech:
        Technology constants.
    org:
        Physical organisation.
    hyapd:
        If true, model the H-YAPD post-decoder organisation: all access
        paths take the paper's 2.5% latency overhead.
    sizing:
        Driver sizing of the access path.
    """

    def __init__(
        self,
        tech: Technology = TECH45,
        org: CacheOrganization = PAPER_ORGANIZATION,
        hyapd: bool = False,
        sizing: PathSizing = DEFAULT_PATH_SIZING,
    ) -> None:
        self.tech = tech
        self.org = org
        self.hyapd = hyapd
        self.sizing = sizing
        self._delay_scale = 1.0 + (tech.hyapd_delay_overhead if hyapd else 0.0)
        # Geometry constants of the access path that neither the sampled
        # way nor the band index changes. Each expression matches the
        # composed helper it replaces term for term (same association
        # order), so the flat kernel below is bit-identical to
        # `access_path_delay` — asserted by the circuit equivalence test.
        self._global_lengths = tuple(
            org.global_wire_length(band, tech.cell_height)
            for band in range(org.num_bands)
        )
        self._lwl_length = org.wordline_length(tech.cell_width)
        self._cell_gates = (
            org.cols_per_bank * tech.gate_cap_per_width * tech.cell_read_width
        )
        self._gwl_load = tech.gate_cap_per_width * sizing.lwl_driver_width
        self._bitline_length = org.bitline_segment_length(tech.cell_height)
        self._bitline_drains = (
            org.rows_per_segment * tech.drain_cap_per_width * tech.cell_read_width
        )
        # Device/technology subexpressions of the flattened kernel; each
        # matches the helper in `devices`/`interconnect`/`decoder` it was
        # lifted from, term for term.
        ratio = tech.temperature_ratio
        self._drive_coeff = tech.drive_k * ratio ** (-tech.mobility_exponent)
        self._leak_coeff = tech.leak_i0 * ratio**2
        self._swing = tech.subthreshold_swing * ratio
        self._miller_eps = tech.coupling_miller * tech.wire_cap_eps
        self._min_spacing = tech.wire_pitch * interconnect._MIN_SPACING_FRACTION
        decoder = sizing.decoder
        self._dec_first_gate_cap = (
            tech.gate_cap_per_width * decoder.stage_widths[0] * 4
        )
        widths = decoder.stage_widths
        self._dec_stages = tuple(
            (
                width,
                tech.gate_cap_per_width
                * (
                    widths[i + 1] * decoder.stage_fanout
                    if i + 1 < len(widths)
                    else decoder.wordline_driver_width
                ),
            )
            for i, width in enumerate(widths)
        )

    # ------------------------------------------------------------------
    def _way_base(
        self, way: WayVariation
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...], float]:
        """Scale-independent pieces of one way's evaluation.

        Returns ``(base_delays, band_leakage, peripheral_leakage)`` where
        ``base_delays[band]`` is the access-path delay times the band's
        residual, *before* the post-decoder scale — the quantity the
        regular and H-YAPD organisations share. The arithmetic replays
        the composed reference path (`access_path_delay` and friends)
        with band-invariant subterms hoisted out of the band loop;
        every surviving expression keeps the reference's association
        order so results match bit for bit.
        """
        tech = self.tech
        org = self.org
        sizing = self.sizing
        vdd = tech.vdd
        bits_per_bank = org.bits_per_bank
        nominal_lgate = tech.nominal_lgate
        vt_rolloff = tech.vt_rolloff
        alpha = tech.alpha
        delay_coeff = tech.delay_coeff
        drive_coeff = self._drive_coeff
        leak_coeff = self._leak_coeff
        swing = self._swing
        rho = tech.wire_resistivity
        eps = tech.wire_cap_eps
        pitch = tech.wire_pitch
        fringe = tech.wire_fringe_cap
        miller_eps = self._miller_eps
        min_spacing = self._min_spacing
        min_vt = devices._MIN_VT
        min_od = devices._MIN_OVERDRIVE

        # --- decoder segment: threshold/overdrive once, then the decode
        # chain, the global-wordline driver, and the segment's leakage
        params = way.decoder
        dec_lgate = params.lgate
        shortfall = (nominal_lgate - dec_lgate) / nominal_lgate
        dec_vt = params.vt - vt_rolloff * shortfall
        if dec_vt < min_vt:
            dec_vt = min_vt
        overdrive = vdd - dec_vt
        if overdrive < min_od:
            overdrive = min_od
        dec_pow = overdrive**alpha
        area = params.metal_width * params.metal_thickness
        if area <= 0:
            raise ConfigurationError("wire cross-section must be positive")
        dec_r = rho / area
        spacing = pitch - params.metal_width
        if spacing < min_spacing:
            spacing = min_spacing
        dec_c = (
            eps * params.metal_width / params.ild_thickness
            + fringe
            + miller_eps * params.metal_thickness / spacing
        )
        decoder = sizing.decoder
        bus_length = decoder.address_bus_length
        bus_res = vdd / (
            drive_coeff * (decoder.address_driver_width / dec_lgate) * dec_pow
        )
        r_wire = dec_r * bus_length
        c_wire = dec_c * bus_length
        first_gate_cap = self._dec_first_gate_cap
        decode = (
            0.69 * bus_res * (c_wire + first_gate_cap)
            + 0.38 * r_wire * c_wire
            + 0.69 * r_wire * first_gate_cap
        )
        for stage_width, stage_load in self._dec_stages:
            decode += (
                delay_coeff
                * (vdd / (drive_coeff * (stage_width / dec_lgate) * dec_pow))
                * stage_load
            )
        gwl_res = vdd / (
            drive_coeff * (sizing.gwl_driver_width / dec_lgate) * dec_pow
        )

        # --- precharge segment drive
        params = way.precharge
        shortfall = (nominal_lgate - params.lgate) / nominal_lgate
        pre_vt = params.vt - vt_rolloff * shortfall
        if pre_vt < min_vt:
            pre_vt = min_vt
        overdrive = vdd - pre_vt
        if overdrive < min_od:
            overdrive = min_od
        precharge_k = delay_coeff * (
            vdd
            / (
                drive_coeff
                * (sram.PRECHARGE_WIDTH / params.lgate)
                * overdrive**alpha
            )
        )

        # --- sense-amplifier segment
        params = way.senseamp
        shortfall = (nominal_lgate - params.lgate) / nominal_lgate
        sa_vt = params.vt - vt_rolloff * shortfall
        if sa_vt < min_vt:
            sa_vt = min_vt
        overdrive = vdd - sa_vt
        if overdrive < min_od:
            overdrive = min_od
        sense = sram.SENSEAMP_STAGES * (
            delay_coeff
            * (
                vdd
                / (
                    drive_coeff
                    * (sram.SENSEAMP_STAGE_WIDTH / params.lgate)
                    * overdrive**alpha
                )
            )
            * sram.SENSEAMP_STAGE_CAP
        )

        # --- output-driver segment
        params = way.outdriver
        shortfall = (nominal_lgate - params.lgate) / nominal_lgate
        out_vt = params.vt - vt_rolloff * shortfall
        if out_vt < min_vt:
            out_vt = min_vt
        overdrive = vdd - out_vt
        if overdrive < min_od:
            overdrive = min_od
        out_res = vdd / (
            drive_coeff
            * (sizing.output_driver_width / params.lgate)
            * overdrive**alpha
        )

        # --- way-level interconnect
        params = way.params
        area = params.metal_width * params.metal_thickness
        if area <= 0:
            raise ConfigurationError("wire cross-section must be positive")
        way_r = rho / area
        spacing = pitch - params.metal_width
        if spacing < min_spacing:
            spacing = min_spacing
        way_c = (
            eps * params.metal_width / params.ild_thickness
            + fringe
            + miller_eps * params.metal_thickness / spacing
        )

        gwl_load = self._gwl_load
        out_load = sizing.output_load_cap
        lwl_length = self._lwl_length
        cell_gates = self._cell_gates
        bitline_length = self._bitline_length
        bitline_drains = self._bitline_drains
        lwl_width = sizing.lwl_driver_width
        cell_read_width = tech.cell_read_width
        cell_leak_width = tech.cell_leak_width
        sense_swing = tech.sense_swing
        slew = sram.PRECHARGE_SLEW_FRACTION
        global_lengths = self._global_lengths
        bands = way.bands
        band_residual = way.band_residual

        base_delays = []
        band_leakage = []
        for band in range(org.num_bands):
            band_params = bands[band]
            global_length = global_lengths[band]
            way_r_wire = way_r * global_length
            way_c_wire = way_c * global_length

            band_lgate = band_params.lgate
            shortfall = (nominal_lgate - band_lgate) / nominal_lgate
            band_vt = band_params.vt - vt_rolloff * shortfall
            if band_vt < min_vt:
                band_vt = min_vt
            overdrive = vdd - band_vt
            if overdrive < min_od:
                overdrive = min_od
            band_pow = overdrive**alpha
            area = band_params.metal_width * band_params.metal_thickness
            if area <= 0:
                raise ConfigurationError("wire cross-section must be positive")
            band_r = rho / area
            spacing = pitch - band_params.metal_width
            if spacing < min_spacing:
                spacing = min_spacing
            band_c = (
                eps * band_params.metal_width / band_params.ild_thickness
                + fringe
                + miller_eps * band_params.metal_thickness / spacing
            )

            # 1. decode
            delay = decode
            # 2. global wordline out to the target bank
            delay += (
                0.69 * gwl_res * (way_c_wire + gwl_load)
                + 0.38 * way_r_wire * way_c_wire
                + 0.69 * way_r_wire * gwl_load
            )
            # 3. local wordline across the bank
            lwl_res = vdd / (
                drive_coeff * (lwl_width / band_lgate) * band_pow
            )
            lwl_r_wire = band_r * lwl_length
            lwl_c_wire = band_c * lwl_length
            delay += (
                0.69 * lwl_res * (lwl_c_wire + cell_gates)
                + 0.38 * lwl_r_wire * lwl_c_wire
                + 0.69 * lwl_r_wire * cell_gates
            )
            # 4. precharge release and bitline discharge (the bitline
            #    capacitance feeds both terms; the reference computes it
            #    twice from identical inputs, so sharing it is exact)
            bitline_cap = band_c * bitline_length + bitline_drains
            delay += precharge_k * (bitline_cap * slew)
            delay += (
                bitline_cap
                * sense_swing
                / (drive_coeff * (cell_read_width / band_lgate) * band_pow)
            )
            # 5. sense amplification
            delay += sense
            # 6. output drive and data return (same way-level wire)
            delay += (
                0.69 * out_res * (way_c_wire + out_load)
                + 0.38 * way_r_wire * way_c_wire
                + 0.69 * way_r_wire * out_load
            )
            base_delays.append(delay * band_residual(band))
            band_leakage.append(
                bits_per_bank
                * (
                    leak_coeff
                    * (cell_leak_width / band_lgate)
                    * 10.0 ** (-band_vt / swing)
                )
                * vdd
            )

        # --- peripheral leakage, in PERIPHERAL_SEGMENTS order (the
        # thresholds were already computed above for each segment)
        peripheral = (
            leak_coeff
            * (PERIPHERAL_LEAK_WIDTHS["decoder"] / way.decoder.lgate)
            * 10.0 ** (-dec_vt / swing)
            * vdd
            + leak_coeff
            * (PERIPHERAL_LEAK_WIDTHS["precharge"] / way.precharge.lgate)
            * 10.0 ** (-pre_vt / swing)
            * vdd
            + leak_coeff
            * (PERIPHERAL_LEAK_WIDTHS["senseamp"] / way.senseamp.lgate)
            * 10.0 ** (-sa_vt / swing)
            * vdd
            + leak_coeff
            * (PERIPHERAL_LEAK_WIDTHS["outdriver"] / way.outdriver.lgate)
            * 10.0 ** (-out_vt / swing)
            * vdd
        )
        return tuple(base_delays), tuple(band_leakage), peripheral

    def _evaluate_way(self, way: WayVariation) -> WayCircuitResult:
        base_delays, band_leakage, peripheral = self._way_base(way)
        scale = self._delay_scale
        return WayCircuitResult(
            way=way.way,
            band_delays=tuple(base * scale for base in base_delays),
            band_leakage=band_leakage,
            peripheral_leakage=peripheral,
        )

    def _evaluate_way_reference(self, way: WayVariation) -> WayCircuitResult:
        """Composed per-stage evaluation (differential-testing oracle).

        Calls `access_path_delay` per band exactly as the model
        originally did; :meth:`_evaluate_way` must match it bit for bit.
        """
        band_delays = tuple(
            access_path_delay(way, band, self.tech, self.org, self.sizing)
            * way.band_residual(band)
            * self._delay_scale
            for band in range(self.org.num_bands)
        )
        band_leakage = tuple(
            self.org.bits_per_bank
            * sram.cell_leakage(way.bands[band], self.tech)
            * self.tech.vdd
            for band in range(self.org.num_bands)
        )
        peripheral = sum(
            subthreshold_current(
                PERIPHERAL_LEAK_WIDTHS[name], way.peripheral(name), self.tech
            )
            * self.tech.vdd
            for name in PERIPHERAL_SEGMENTS
        )
        return WayCircuitResult(
            way=way.way,
            band_delays=band_delays,
            band_leakage=band_leakage,
            peripheral_leakage=peripheral,
        )

    def evaluate(self, cvmap: CacheVariationMap) -> CacheCircuitResult:
        """Evaluate one sampled cache."""
        if cvmap.num_bands != self.org.num_bands:
            raise ConfigurationError(
                f"variation map has {cvmap.num_bands} bands, "
                f"organisation expects {self.org.num_bands}"
            )
        return CacheCircuitResult(
            chip_id=cvmap.chip_id,
            ways=tuple(self._evaluate_way(way) for way in cvmap.ways),
            hyapd=self.hyapd,
        )

    def evaluate_pair(
        self, hyapd_model: "CacheCircuitModel", cvmap: CacheVariationMap
    ) -> Tuple[CacheCircuitResult, CacheCircuitResult]:
        """Evaluate one sampled cache under both post-decoder layouts.

        The regular and H-YAPD organisations differ only by the uniform
        post-decoder delay scale; everything else about a way's
        evaluation — the Elmore sums, residuals, leakage — is identical
        arithmetic on identical inputs. Sharing the base evaluation
        halves the population's circuit cost while keeping both results
        bit-identical to two independent :meth:`evaluate` calls.
        """
        if self.hyapd or not hyapd_model.hyapd:
            raise ConfigurationError(
                "evaluate_pair expects (regular model).evaluate_pair(hyapd model, ...)"
            )
        if (
            hyapd_model.tech is not self.tech
            or hyapd_model.org is not self.org
            or hyapd_model.sizing is not self.sizing
        ):
            raise ConfigurationError(
                "evaluate_pair needs both models to share tech/org/sizing"
            )
        if cvmap.num_bands != self.org.num_bands:
            raise ConfigurationError(
                f"variation map has {cvmap.num_bands} bands, "
                f"organisation expects {self.org.num_bands}"
            )
        regular_scale = self._delay_scale
        hyapd_scale = hyapd_model._delay_scale
        regular_ways = []
        hyapd_ways = []
        for way in cvmap.ways:
            base_delays, band_leakage, peripheral = self._way_base(way)
            regular_ways.append(
                WayCircuitResult(
                    way=way.way,
                    band_delays=tuple(b * regular_scale for b in base_delays),
                    band_leakage=band_leakage,
                    peripheral_leakage=peripheral,
                )
            )
            hyapd_ways.append(
                WayCircuitResult(
                    way=way.way,
                    band_delays=tuple(b * hyapd_scale for b in base_delays),
                    band_leakage=band_leakage,
                    peripheral_leakage=peripheral,
                )
            )
        return (
            CacheCircuitResult(
                chip_id=cvmap.chip_id, ways=tuple(regular_ways), hyapd=False
            ),
            CacheCircuitResult(
                chip_id=cvmap.chip_id, ways=tuple(hyapd_ways), hyapd=True
            ),
        )

    def nominal(self, table: VariationTable = TABLE1) -> CacheCircuitResult:
        """Evaluate the zero-variation cache (design reference)."""
        nominal = table.nominal()
        ways = tuple(
            WayVariation(
                way=w,
                params=nominal,
                decoder=nominal,
                precharge=nominal,
                senseamp=nominal,
                outdriver=nominal,
                bands=tuple(nominal for _ in range(self.org.num_bands)),
            )
            for w in range(self.org.num_ways)
        )
        cvmap = CacheVariationMap(chip_id=-1, die=nominal, ways=ways)
        return self.evaluate(cvmap)
