"""Whole-cache delay and leakage under a sampled variation map.

:class:`CacheCircuitModel` is the reproduction's stand-in for the paper's
per-chip HSPICE run: given a :class:`~repro.variation.sampling.CacheVariationMap`
it produces a :class:`CacheCircuitResult` holding

* the delay of every (way, band) access path — the paper's
  "critical/near-critical paths" of each way,
* per-way access delay (max over its bands) and whole-cache access delay
  (max over ways),
* leakage decomposed into per-(way, band) array leakage and per-way
  peripheral leakage, which is exactly the granularity the power-down
  schemes reason about (YAPD removes a way's array *and* peripherals;
  H-YAPD removes one band of every way plus a fraction of peripherals).

An ``hyapd=True`` model applies the paper's measured 2.5% access-latency
overhead of the reorganised post-decoders (Section 4.2) uniformly to all
paths; leakage is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.circuit import sram
from repro.circuit.devices import subthreshold_current
from repro.circuit.organization import CacheOrganization, PAPER_ORGANIZATION
from repro.circuit.paths import PathSizing, DEFAULT_PATH_SIZING, access_path_delay
from repro.circuit.technology import Technology, TECH45
from repro.core import units
from repro.core.errors import ConfigurationError
from repro.variation.parameters import TABLE1, VariationTable
from repro.variation.sampling import (
    CacheVariationMap,
    WayVariation,
    PERIPHERAL_SEGMENTS,
)

__all__ = ["WayCircuitResult", "CacheCircuitResult", "CacheCircuitModel"]

#: Effective leaking transistor width (m) of each peripheral segment,
#: sized so peripherals contribute a high-single-digit percentage of the
#: nominal cache leakage (the cell array dominates, as in the paper).
PERIPHERAL_LEAK_WIDTHS = {
    "decoder": 200 * units.UM,
    "precharge": 100 * units.UM,
    "senseamp": 120 * units.UM,
    "outdriver": 50 * units.UM,
}


@dataclass(frozen=True)
class WayCircuitResult:
    """Delay and leakage of one cache way.

    Attributes
    ----------
    way:
        Way index.
    band_delays:
        Access-path delay (s) through each horizontal band of this way.
    band_leakage:
        Array leakage power (W) of each band of this way.
    peripheral_leakage:
        Leakage power (W) of this way's decoder/precharge/sense/output
        periphery.
    """

    way: int
    band_delays: Tuple[float, ...]
    band_leakage: Tuple[float, ...]
    peripheral_leakage: float

    @property
    def delay(self) -> float:
        """Access delay (s) of the way: its slowest band path."""
        return max(self.band_delays)

    @property
    def array_leakage(self) -> float:
        """Total array leakage power (W) of the way."""
        return sum(self.band_leakage)

    @property
    def leakage(self) -> float:
        """Total leakage power (W) of the way (array + periphery)."""
        return self.array_leakage + self.peripheral_leakage

    def delay_without_band(self, band: int) -> float:
        """Way delay (s) if horizontal band ``band`` were powered down."""
        remaining = [d for i, d in enumerate(self.band_delays) if i != band]
        if not remaining:
            raise ConfigurationError("cannot power down the only band of a way")
        return max(remaining)

    def critical_band(self) -> int:
        """Index of the band holding this way's critical path."""
        return max(range(len(self.band_delays)), key=lambda i: self.band_delays[i])


@dataclass(frozen=True)
class CacheCircuitResult:
    """Delay and leakage of one manufactured cache."""

    chip_id: int
    ways: Tuple[WayCircuitResult, ...]
    hyapd: bool = False

    @property
    def num_ways(self) -> int:
        return len(self.ways)

    @property
    def num_bands(self) -> int:
        return len(self.ways[0].band_delays)

    @property
    def way_delays(self) -> Tuple[float, ...]:
        """Access delay (s) of every way."""
        return tuple(way.delay for way in self.ways)

    @property
    def access_delay(self) -> float:
        """Cache access delay (s): the slowest way (paper Section 5.1)."""
        return max(self.way_delays)

    @property
    def way_leakages(self) -> Tuple[float, ...]:
        """Total leakage power (W) of every way."""
        return tuple(way.leakage for way in self.ways)

    @property
    def total_leakage(self) -> float:
        """Total cache leakage power (W)."""
        return sum(self.way_leakages)

    def band_array_leakage(self, band: int) -> float:
        """Array leakage (W) of horizontal band ``band`` summed over ways."""
        return sum(way.band_leakage[band] for way in self.ways)

    def total_peripheral_leakage(self) -> float:
        """Leakage (W) of all way peripheries."""
        return sum(way.peripheral_leakage for way in self.ways)


class CacheCircuitModel:
    """Evaluates sampled caches into delays and leakage.

    Parameters
    ----------
    tech:
        Technology constants.
    org:
        Physical organisation.
    hyapd:
        If true, model the H-YAPD post-decoder organisation: all access
        paths take the paper's 2.5% latency overhead.
    sizing:
        Driver sizing of the access path.
    """

    def __init__(
        self,
        tech: Technology = TECH45,
        org: CacheOrganization = PAPER_ORGANIZATION,
        hyapd: bool = False,
        sizing: PathSizing = DEFAULT_PATH_SIZING,
    ) -> None:
        self.tech = tech
        self.org = org
        self.hyapd = hyapd
        self.sizing = sizing
        self._delay_scale = 1.0 + (tech.hyapd_delay_overhead if hyapd else 0.0)

    # ------------------------------------------------------------------
    def _evaluate_way(self, way: WayVariation) -> WayCircuitResult:
        band_delays = tuple(
            access_path_delay(way, band, self.tech, self.org, self.sizing)
            * way.band_residual(band)
            * self._delay_scale
            for band in range(self.org.num_bands)
        )
        band_leakage = tuple(
            self.org.bits_per_bank
            * sram.cell_leakage(way.bands[band], self.tech)
            * self.tech.vdd
            for band in range(self.org.num_bands)
        )
        peripheral = sum(
            subthreshold_current(
                PERIPHERAL_LEAK_WIDTHS[name], way.peripheral(name), self.tech
            )
            * self.tech.vdd
            for name in PERIPHERAL_SEGMENTS
        )
        return WayCircuitResult(
            way=way.way,
            band_delays=band_delays,
            band_leakage=band_leakage,
            peripheral_leakage=peripheral,
        )

    def evaluate(self, cvmap: CacheVariationMap) -> CacheCircuitResult:
        """Evaluate one sampled cache."""
        if cvmap.num_bands != self.org.num_bands:
            raise ConfigurationError(
                f"variation map has {cvmap.num_bands} bands, "
                f"organisation expects {self.org.num_bands}"
            )
        return CacheCircuitResult(
            chip_id=cvmap.chip_id,
            ways=tuple(self._evaluate_way(way) for way in cvmap.ways),
            hyapd=self.hyapd,
        )

    def nominal(self, table: VariationTable = TABLE1) -> CacheCircuitResult:
        """Evaluate the zero-variation cache (design reference)."""
        nominal = table.nominal()
        ways = tuple(
            WayVariation(
                way=w,
                params=nominal,
                decoder=nominal,
                precharge=nominal,
                senseamp=nominal,
                outdriver=nominal,
                bands=tuple(nominal for _ in range(self.org.num_bands)),
            )
            for w in range(self.org.num_ways)
        )
        cvmap = CacheVariationMap(chip_id=-1, die=nominal, ways=ways)
        return self.evaluate(cvmap)
