"""Row-decoder chain model (paper Section 3, Figure 3).

The decode path consists of the address bus into the way (the paper adds
coupling capacitance between its lines), a short predecode chain, and the
final gate that launches the global wordline. All devices in this path
take the way's *decoder* segment parameters; the address-bus wire takes the
same segment's interconnect parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.circuit import devices, interconnect
from repro.circuit.technology import Technology
from repro.core import units
from repro.core.validation import require_positive
from repro.variation.parameters import ProcessParameters

__all__ = ["DecoderSizing", "DEFAULT_DECODER_SIZING", "decoder_delay"]


@dataclass(frozen=True)
class DecoderSizing:
    """Gate sizing of the decode chain.

    Attributes
    ----------
    address_bus_length:
        Length (m) of the address bus from the drivers to the predecoders.
    address_driver_width:
        Width (m) of the address bus drivers.
    stage_widths:
        Widths (m) of the successive predecode/decode gates; each stage
        drives the next stage's gate capacitance times ``stage_fanout``.
    stage_fanout:
        Electrical fanout between consecutive decode stages.
    wordline_driver_width:
        Width (m) of the global wordline driver the chain must charge.
    """

    address_bus_length: float = 60 * units.UM
    address_driver_width: float = 1.5 * units.UM
    stage_widths: Tuple[float, ...] = (
        0.5 * units.UM,
        1.0 * units.UM,
        2.0 * units.UM,
    )
    stage_fanout: float = 4.0
    wordline_driver_width: float = 4.0 * units.UM

    def __post_init__(self) -> None:
        require_positive(self.address_bus_length, "address_bus_length")
        require_positive(self.address_driver_width, "address_driver_width")
        require_positive(self.stage_fanout, "stage_fanout")
        require_positive(self.wordline_driver_width, "wordline_driver_width")
        if not self.stage_widths:
            raise ValueError("decoder needs at least one stage")
        for width in self.stage_widths:
            require_positive(width, "stage width")


DEFAULT_DECODER_SIZING = DecoderSizing()


def decoder_delay(
    params: ProcessParameters,
    tech: Technology,
    sizing: DecoderSizing = DEFAULT_DECODER_SIZING,
) -> float:
    """Delay (s) from address arrival to the global wordline driver input."""
    # Address bus: driven RC line loaded by the first predecode gates.
    first_gate_cap = tech.gate_cap_per_width * sizing.stage_widths[0] * 4
    bus_delay = interconnect.elmore_delay(
        devices.effective_resistance(sizing.address_driver_width, params, tech),
        sizing.address_bus_length,
        params,
        tech,
        load_cap=first_gate_cap,
    )
    # Predecode/decode chain: each stage drives the next, the last stage
    # drives the global wordline driver gate.
    total = bus_delay
    widths = sizing.stage_widths
    for i, width in enumerate(widths):
        if i + 1 < len(widths):
            load_width = widths[i + 1] * sizing.stage_fanout
        else:
            load_width = sizing.wordline_driver_width
        load_cap = tech.gate_cap_per_width * load_width
        total += devices.stage_delay(width, load_cap, params, tech)
    return total
