"""Columnar circuit evaluation over a sampled population.

:meth:`CacheCircuitModel._way_base` evaluates one way at a time with
scalar Python arithmetic — fine for a chip, dominant for a population.
This module replays the *same* arithmetic over the whole population at
once: every scalar expression of the flat kernel becomes the identical
elementwise expression over ``(chips, ways)``- or ``(chips, ways,
bands)``-shaped arrays, keeping the reference's operation order and
association so each element is bit-identical to the per-way evaluation
(asserted by ``tests/test_columnar_diff.py``).

The entry point, :func:`evaluate_population_pair`, is the columnar
mirror of :meth:`CacheCircuitModel.evaluate_pair`: one pass over the
columns produces the regular *and* H-YAPD results (they differ only by
the uniform post-decoder delay scale), materialised back into the same
:class:`CacheCircuitResult` tuples the per-chip path returns — so the
engine's store payloads are byte-identical whichever path computed them.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

import numpy as np

from repro.circuit import devices, sram
from repro.circuit.cache_model import (
    CacheCircuitModel,
    CacheCircuitResult,
    PERIPHERAL_LEAK_WIDTHS,
    WayCircuitResult,
)
from repro.core.errors import ConfigurationError
from repro.variation.columnar import ColumnarPopulation

__all__ = [
    "CircuitColumns",
    "evaluate_population_columns",
    "evaluate_population_pair",
    "materialize_results",
]

# PARAMETER_NAMES order of the trailing parameter axis.
_LGATE, _VT, _METAL_WIDTH, _METAL_THICKNESS, _ILD = range(5)


class CircuitColumns(NamedTuple):
    """Scale-independent circuit outputs of one population, as columns.

    ``base_delays`` carries each (chip, way, band) access-path delay
    *including* its residual but before the post-decoder scale — the
    quantity the regular and H-YAPD organisations share. Multiply by a
    model's delay scale to get that organisation's band delays.
    """

    chip_ids: Tuple[int, ...]
    base_delays: np.ndarray  # (C, W, B)
    band_leakage: np.ndarray  # (C, W, B)
    peripheral_leakage: np.ndarray  # (C, W)

    def way_delays(self, delay_scale: float = 1.0) -> np.ndarray:
        """Per-way access delay (s): max over bands, scaled. (C, W)."""
        return (self.base_delays * delay_scale).max(axis=2)

    def access_delays(self, delay_scale: float = 1.0) -> np.ndarray:
        """Whole-cache access delay (s) per chip: slowest way. (C,)."""
        return self.way_delays(delay_scale).max(axis=1)

    def total_leakage(self) -> np.ndarray:
        """Total cache leakage (W) per chip, summed in the per-chip
        reference's left-to-right order (bands, then periphery, then
        ways) so the values are bit-identical to
        ``CacheCircuitResult.total_leakage``. (C,)."""
        num_ways = self.band_leakage.shape[1]
        num_bands = self.band_leakage.shape[2]
        total = None
        for way in range(num_ways):
            acc = self.band_leakage[:, way, 0].copy()
            for band in range(1, num_bands):
                acc += self.band_leakage[:, way, band]
            acc += self.peripheral_leakage[:, way]
            total = acc if total is None else total + acc
        return total


def _effective_vt(
    lgate: np.ndarray, vt: np.ndarray, model: CacheCircuitModel
) -> np.ndarray:
    """Gate-length roll-off plus the minimum-Vt floor (elementwise)."""
    tech = model.tech
    shortfall = (tech.nominal_lgate - lgate) / tech.nominal_lgate
    return np.maximum(vt - tech.vt_rolloff * shortfall, devices._MIN_VT)


def _pow_columns(base: np.ndarray, exponent: float) -> np.ndarray:
    """Elementwise ``base ** exponent`` via scalar pow.

    NumPy's vectorised pow kernels (SIMD) can differ from the scalar
    libm pow the per-chip reference uses by one ulp, so the few pow
    sites evaluate element by element with Python's ``**`` — the exact
    operation of the reference. Every other operation in this module
    (+, -, *, /, min, max) is elementwise IEEE arithmetic and therefore
    identical either way.
    """
    flat = base.reshape(-1).tolist()
    out = np.array([value**exponent for value in flat])
    return out.reshape(base.shape)


def _pow10_columns(exponent: np.ndarray) -> np.ndarray:
    """Elementwise ``10.0 ** exponent`` via scalar pow (see above)."""
    flat = exponent.reshape(-1).tolist()
    out = np.array([10.0**value for value in flat])
    return out.reshape(exponent.shape)


def _overdrive_pow(vt: np.ndarray, model: CacheCircuitModel) -> np.ndarray:
    overdrive = np.maximum(
        model.tech.vdd - vt, devices._MIN_OVERDRIVE
    )
    return _pow_columns(overdrive, model.tech.alpha)


def _wire_rc(
    params: np.ndarray, model: CacheCircuitModel
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-unit-length wire resistance and capacitance (elementwise)."""
    tech = model.tech
    width = params[..., _METAL_WIDTH]
    thickness = params[..., _METAL_THICKNESS]
    area = width * thickness
    if np.any(area <= 0):
        raise ConfigurationError("wire cross-section must be positive")
    resistance = tech.wire_resistivity / area
    spacing = np.maximum(tech.wire_pitch - width, model._min_spacing)
    capacitance = (
        tech.wire_cap_eps * width / params[..., _ILD]
        + tech.wire_fringe_cap
        + model._miller_eps * thickness / spacing
    )
    return resistance, capacitance


def _subthreshold_leakage(
    width: float, lgate: np.ndarray, vt: np.ndarray, model: CacheCircuitModel
) -> np.ndarray:
    """Leakage power (W) of one segment: I_sub * Vdd (elementwise)."""
    return (
        model._leak_coeff
        * (width / lgate)
        * _pow10_columns(-vt / model._swing)
        * model.tech.vdd
    )


def evaluate_population_columns(
    model: CacheCircuitModel, population: ColumnarPopulation
) -> CircuitColumns:
    """Evaluate every chip's access paths and leakage in bulk.

    The body is :meth:`CacheCircuitModel._way_base` with arrays in place
    of scalars — same subexpressions, same accumulation order.
    """
    if population.num_bands != model.org.num_bands:
        raise ConfigurationError(
            f"population has {population.num_bands} bands, "
            f"organisation expects {model.org.num_bands}"
        )
    tech = model.tech
    org = model.org
    sizing = model.sizing
    vdd = tech.vdd
    drive_coeff = model._drive_coeff
    delay_coeff = tech.delay_coeff

    # --- decoder segment: decode chain, GWL drive, leakage threshold
    dec = population.peripherals[:, :, 0, :]
    dec_lgate = dec[..., _LGATE]
    dec_vt = _effective_vt(dec_lgate, dec[..., _VT], model)
    dec_pow = _overdrive_pow(dec_vt, model)
    dec_r, dec_c = _wire_rc(dec, model)
    decoder = sizing.decoder
    bus_length = decoder.address_bus_length
    bus_res = vdd / (
        drive_coeff * (decoder.address_driver_width / dec_lgate) * dec_pow
    )
    r_wire = dec_r * bus_length
    c_wire = dec_c * bus_length
    first_gate_cap = model._dec_first_gate_cap
    decode = (
        0.69 * bus_res * (c_wire + first_gate_cap)
        + 0.38 * r_wire * c_wire
        + 0.69 * r_wire * first_gate_cap
    )
    for stage_width, stage_load in model._dec_stages:
        decode += (
            delay_coeff
            * (vdd / (drive_coeff * (stage_width / dec_lgate) * dec_pow))
            * stage_load
        )
    gwl_res = vdd / (
        drive_coeff * (sizing.gwl_driver_width / dec_lgate) * dec_pow
    )

    # --- precharge segment drive
    pre = population.peripherals[:, :, 1, :]
    pre_vt = _effective_vt(pre[..., _LGATE], pre[..., _VT], model)
    precharge_k = delay_coeff * (
        vdd
        / (
            drive_coeff
            * (sram.PRECHARGE_WIDTH / pre[..., _LGATE])
            * _overdrive_pow(pre_vt, model)
        )
    )

    # --- sense-amplifier segment
    sa = population.peripherals[:, :, 2, :]
    sa_vt = _effective_vt(sa[..., _LGATE], sa[..., _VT], model)
    sense = sram.SENSEAMP_STAGES * (
        delay_coeff
        * (
            vdd
            / (
                drive_coeff
                * (sram.SENSEAMP_STAGE_WIDTH / sa[..., _LGATE])
                * _overdrive_pow(sa_vt, model)
            )
        )
        * sram.SENSEAMP_STAGE_CAP
    )

    # --- output-driver segment
    out = population.peripherals[:, :, 3, :]
    out_vt = _effective_vt(out[..., _LGATE], out[..., _VT], model)
    out_res = vdd / (
        drive_coeff
        * (sizing.output_driver_width / out[..., _LGATE])
        * _overdrive_pow(out_vt, model)
    )

    # --- way-level interconnect
    way_r, way_c = _wire_rc(population.way_params, model)

    # --- per-band paths, all (C, W, B)
    global_lengths = np.array(model._global_lengths)  # (B,)
    way_r_wire = way_r[:, :, None] * global_lengths
    way_c_wire = way_c[:, :, None] * global_lengths
    bands = population.bands
    band_lgate = bands[..., _LGATE]
    band_vt = _effective_vt(band_lgate, bands[..., _VT], model)
    band_pow = _overdrive_pow(band_vt, model)
    band_r, band_c = _wire_rc(bands, model)

    # 1. decode
    delay = np.empty_like(band_pow)
    delay[:] = decode[:, :, None]
    # 2. global wordline out to the target bank
    gwl_load = model._gwl_load
    delay += (
        0.69 * gwl_res[:, :, None] * (way_c_wire + gwl_load)
        + 0.38 * way_r_wire * way_c_wire
        + 0.69 * way_r_wire * gwl_load
    )
    # 3. local wordline across the bank
    lwl_res = vdd / (
        drive_coeff * (sizing.lwl_driver_width / band_lgate) * band_pow
    )
    lwl_r_wire = band_r * model._lwl_length
    lwl_c_wire = band_c * model._lwl_length
    cell_gates = model._cell_gates
    delay += (
        0.69 * lwl_res * (lwl_c_wire + cell_gates)
        + 0.38 * lwl_r_wire * lwl_c_wire
        + 0.69 * lwl_r_wire * cell_gates
    )
    # 4. precharge release and bitline discharge
    bitline_cap = band_c * model._bitline_length + model._bitline_drains
    delay += precharge_k[:, :, None] * (
        bitline_cap * sram.PRECHARGE_SLEW_FRACTION
    )
    delay += (
        bitline_cap
        * tech.sense_swing
        / (drive_coeff * (tech.cell_read_width / band_lgate) * band_pow)
    )
    # 5. sense amplification
    delay += sense[:, :, None]
    # 6. output drive and data return
    delay += (
        0.69 * out_res[:, :, None] * (way_c_wire + sizing.output_load_cap)
        + 0.38 * way_r_wire * way_c_wire
        + 0.69 * way_r_wire * sizing.output_load_cap
    )
    base_delays = delay * population.band_residuals

    band_leakage = (
        org.bits_per_bank
        * (
            model._leak_coeff
            * (tech.cell_leak_width / band_lgate)
            * _pow10_columns(-band_vt / model._swing)
        )
        * vdd
    )

    # --- peripheral leakage, in PERIPHERAL_SEGMENTS order (same
    # left-to-right four-term sum as the reference)
    peripheral = (
        _subthreshold_leakage(
            PERIPHERAL_LEAK_WIDTHS["decoder"], dec_lgate, dec_vt, model
        )
        + _subthreshold_leakage(
            PERIPHERAL_LEAK_WIDTHS["precharge"], pre[..., _LGATE], pre_vt, model
        )
        + _subthreshold_leakage(
            PERIPHERAL_LEAK_WIDTHS["senseamp"], sa[..., _LGATE], sa_vt, model
        )
        + _subthreshold_leakage(
            PERIPHERAL_LEAK_WIDTHS["outdriver"], out[..., _LGATE], out_vt, model
        )
    )
    return CircuitColumns(
        chip_ids=population.chip_ids,
        base_delays=base_delays,
        band_leakage=band_leakage,
        peripheral_leakage=peripheral,
    )


def materialize_results(
    columns: CircuitColumns, delay_scale: float, hyapd: bool
) -> List[CacheCircuitResult]:
    """Columns -> per-chip :class:`CacheCircuitResult` list, one scale."""
    delays = (columns.base_delays * delay_scale).tolist()
    leakage = columns.band_leakage.tolist()
    peripheral = columns.peripheral_leakage.tolist()
    num_ways = columns.base_delays.shape[1]
    ways_range = range(num_ways)
    results = []
    for index, chip_id in enumerate(columns.chip_ids):
        chip_delays = delays[index]
        chip_leakage = leakage[index]
        chip_peripheral = peripheral[index]
        results.append(
            CacheCircuitResult(
                chip_id,
                tuple(
                    WayCircuitResult(
                        way,
                        tuple(chip_delays[way]),
                        tuple(chip_leakage[way]),
                        chip_peripheral[way],
                    )
                    for way in ways_range
                ),
                hyapd,
            )
        )
    return results


def evaluate_population_pair(
    regular_model: CacheCircuitModel,
    hyapd_model: CacheCircuitModel,
    population: ColumnarPopulation,
) -> Tuple[List[CacheCircuitResult], List[CacheCircuitResult]]:
    """Columnar mirror of :meth:`CacheCircuitModel.evaluate_pair`.

    One bulk evaluation, materialised under both post-decoder scales.
    The band-leakage tuples are shared between the two results, exactly
    as the per-chip pair evaluation shares them.
    """
    if regular_model.hyapd or not hyapd_model.hyapd:
        raise ConfigurationError(
            "evaluate_population_pair expects (regular model, hyapd model)"
        )
    if (
        hyapd_model.tech is not regular_model.tech
        or hyapd_model.org is not regular_model.org
        or hyapd_model.sizing is not regular_model.sizing
    ):
        raise ConfigurationError(
            "evaluate_population_pair needs both models to share "
            "tech/org/sizing"
        )
    columns = evaluate_population_columns(regular_model, population)
    regular_scale = regular_model._delay_scale
    hyapd_scale = hyapd_model._delay_scale
    reg_delays = (columns.base_delays * regular_scale).tolist()
    h_delays = (columns.base_delays * hyapd_scale).tolist()
    leakage = columns.band_leakage.tolist()
    peripheral = columns.peripheral_leakage.tolist()
    num_ways = columns.base_delays.shape[1]
    ways_range = range(num_ways)
    regular: List[CacheCircuitResult] = []
    horizontal: List[CacheCircuitResult] = []
    for index, chip_id in enumerate(columns.chip_ids):
        chip_reg = reg_delays[index]
        chip_h = h_delays[index]
        chip_leakage = [tuple(row) for row in leakage[index]]
        chip_peripheral = peripheral[index]
        regular.append(
            CacheCircuitResult(
                chip_id,
                tuple(
                    WayCircuitResult(
                        way,
                        tuple(chip_reg[way]),
                        chip_leakage[way],
                        chip_peripheral[way],
                    )
                    for way in ways_range
                ),
                False,
            )
        )
        horizontal.append(
            CacheCircuitResult(
                chip_id,
                tuple(
                    WayCircuitResult(
                        way,
                        tuple(chip_h[way]),
                        chip_leakage[way],
                        chip_peripheral[way],
                    )
                    for way in ways_range
                ),
                True,
            )
        )
    return regular, horizontal
