"""Interconnect parasitics and Elmore delay (paper Section 2, Figure 2).

The paper models interconnect variation through metal thickness (T),
inter-layer dielectric thickness (H), and line width (W), and replaces the
cache's internal wires with distributed RC ladders. We reproduce that with
closed forms:

* resistance per metre ``R' = rho / (W * T)`` — note the *reciprocal*
  dependence: thin/narrow excursions produce a fat right tail in delay,
* ground capacitance per metre ``C'_g = eps * W / H`` plus a fixed fringe
  term,
* coupling capacitance per metre ``C'_c = miller * eps * T / S`` where the
  spacing ``S = pitch - W`` shrinks as the line widens (the paper notes
  line-space is not an independent parameter),
* Elmore delay of a distributed line with a lumped driver and load:
  ``0.69 R_drv (C_w + C_L) + 0.38 R_w C_w + 0.69 R_w C_L``.
"""

from __future__ import annotations

from repro.circuit.technology import Technology
from repro.core.errors import ConfigurationError
from repro.variation.parameters import ProcessParameters

__all__ = [
    "wire_resistance_per_m",
    "wire_capacitance_per_m",
    "wire_resistance",
    "wire_capacitance",
    "elmore_delay",
]

#: Spacing can never collapse below this fraction of the pitch (etch rules).
_MIN_SPACING_FRACTION = 0.15


def wire_resistance_per_m(params: ProcessParameters, tech: Technology) -> float:
    """Wire resistance per metre (ohm/m) for the sampled W and T."""
    area = params.metal_width * params.metal_thickness
    if area <= 0:
        raise ConfigurationError("wire cross-section must be positive")
    return tech.wire_resistivity / area


def wire_capacitance_per_m(params: ProcessParameters, tech: Technology) -> float:
    """Wire capacitance per metre (F/m): ground + fringe + Miller-coupled."""
    ground = tech.wire_cap_eps * params.metal_width / params.ild_thickness
    spacing = max(
        tech.wire_pitch - params.metal_width,
        tech.wire_pitch * _MIN_SPACING_FRACTION,
    )
    coupling = (
        tech.coupling_miller * tech.wire_cap_eps * params.metal_thickness / spacing
    )
    return ground + tech.wire_fringe_cap + coupling


def wire_resistance(length: float, params: ProcessParameters, tech: Technology) -> float:
    """Total resistance (ohm) of a wire of the given length (m)."""
    if length < 0:
        raise ConfigurationError(f"wire length must be >= 0, got {length}")
    return wire_resistance_per_m(params, tech) * length


def wire_capacitance(length: float, params: ProcessParameters, tech: Technology) -> float:
    """Total capacitance (F) of a wire of the given length (m)."""
    if length < 0:
        raise ConfigurationError(f"wire length must be >= 0, got {length}")
    return wire_capacitance_per_m(params, tech) * length


def elmore_delay(
    driver_resistance: float,
    length: float,
    params: ProcessParameters,
    tech: Technology,
    load_cap: float = 0.0,
) -> float:
    """Elmore delay (s) of a distributed RC line.

    Parameters
    ----------
    driver_resistance:
        Effective resistance of the lumped driver (ohm).
    length:
        Wire length (m).
    params:
        Sampled interconnect parameters for this segment.
    tech:
        Technology constants.
    load_cap:
        Lumped capacitance at the far end (F).
    """
    if driver_resistance < 0 or load_cap < 0:
        raise ConfigurationError("driver resistance and load cap must be >= 0")
    r_wire = wire_resistance(length, params, tech)
    c_wire = wire_capacitance(length, params, tech)
    return (
        0.69 * driver_resistance * (c_wire + load_cap)
        + 0.38 * r_wire * c_wire
        + 0.69 * r_wire * load_cap
    )
