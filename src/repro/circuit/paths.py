"""Composition of one address-to-data access path (paper Figure 3).

A path through way ``w`` and horizontal band (bank) ``b`` is:

1. decode chain (decoder segment parameters),
2. global wordline from the decoder to bank ``b`` — an RC line whose
   length grows with the band's physical distance (way-level interconnect
   parameters),
3. local wordline across the bank (band parameters),
4. precharge release + bitline discharge in the bank (precharge and band
   parameters),
5. sense amplification (sense-amp segment parameters),
6. output drive and the data return wire back past ``b`` banks
   (output-driver segment parameters over way-level metal).

The per-band global-wire distance is what makes far banks naturally
near-critical, and the shared band variation component is what aligns the
*same* band's criticality across ways — together they reproduce the
paper's Section 4.2 premise for H-YAPD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit import devices, interconnect, sram
from repro.circuit.decoder import DecoderSizing, DEFAULT_DECODER_SIZING, decoder_delay
from repro.circuit.organization import CacheOrganization
from repro.circuit.technology import Technology
from repro.core import units
from repro.core.validation import require_positive
from repro.variation.sampling import WayVariation

__all__ = ["PathSizing", "DEFAULT_PATH_SIZING", "access_path_delay"]


@dataclass(frozen=True)
class PathSizing:
    """Driver sizing of the array-access portion of the path.

    Attributes
    ----------
    gwl_driver_width:
        Global wordline driver width (m).
    lwl_driver_width:
        Local wordline driver width (m).
    output_driver_width:
        Data output driver width (m).
    output_load_cap:
        Lumped load at the end of the data return path (F) — the way
        multiplexer and the bus to the load/store unit.
    decoder:
        Sizing of the decode chain.
    """

    gwl_driver_width: float = 4.0 * units.UM
    lwl_driver_width: float = 2.0 * units.UM
    output_driver_width: float = 4.0 * units.UM
    output_load_cap: float = 25.0 * units.FF
    decoder: DecoderSizing = DEFAULT_DECODER_SIZING

    def __post_init__(self) -> None:
        require_positive(self.gwl_driver_width, "gwl_driver_width")
        require_positive(self.lwl_driver_width, "lwl_driver_width")
        require_positive(self.output_driver_width, "output_driver_width")
        require_positive(self.output_load_cap, "output_load_cap")


DEFAULT_PATH_SIZING = PathSizing()


def access_path_delay(
    way: WayVariation,
    band: int,
    tech: Technology,
    org: CacheOrganization,
    sizing: PathSizing = DEFAULT_PATH_SIZING,
) -> float:
    """Address-to-data delay (s) through ``way`` and horizontal band ``band``."""
    band_params = way.bands[band]
    global_length = org.global_wire_length(band, tech.cell_height)

    # 1. decode
    delay = decoder_delay(way.decoder, tech, sizing.decoder)

    # 2. global wordline out to the target bank (way-level metal)
    gwl_load = tech.gate_cap_per_width * sizing.lwl_driver_width
    delay += interconnect.elmore_delay(
        devices.effective_resistance(sizing.gwl_driver_width, way.decoder, tech),
        global_length,
        way.params,
        tech,
        load_cap=gwl_load,
    )

    # 3. local wordline across the bank: the wire plus every cell's access
    #    transistor gate on the row.
    lwl_length = org.wordline_length(tech.cell_width)
    cell_gates = org.cols_per_bank * tech.gate_cap_per_width * tech.cell_read_width
    delay += interconnect.elmore_delay(
        devices.effective_resistance(sizing.lwl_driver_width, band_params, tech),
        lwl_length,
        band_params,
        tech,
        load_cap=cell_gates,
    )

    # 4. precharge release and bitline discharge
    delay += sram.precharge_delay(way.precharge, band_params, tech, org)
    delay += sram.bitline_delay(band_params, tech, org)

    # 5. sense amplification
    delay += sram.senseamp_delay(way.senseamp, tech)

    # 6. output drive and data return past `band` banks (way-level metal)
    delay += interconnect.elmore_delay(
        devices.effective_resistance(
            sizing.output_driver_width, way.outdriver, tech
        ),
        global_length,
        way.params,
        tech,
        load_cap=sizing.output_load_cap,
    )
    return delay
