"""Analytic circuit model of the 16 KB 4-way data cache (paper Section 3).

The paper builds an HSPICE netlist of a 16 KB, 4-way set-associative cache
following Amrutur and Horowitz, with 45 nm PTM device and interconnect
models, then re-simulates it 2000 times under sampled process parameters.
No SPICE engine is available here, so this subpackage substitutes a
first-order analytic model of the same address-to-data path:

* :mod:`repro.circuit.technology` — 45 nm technology constants and the
  calibration knobs of the analytic model.
* :mod:`repro.circuit.devices` — alpha-power-law MOSFET drive current,
  gate-length threshold roll-off, and subthreshold leakage.
* :mod:`repro.circuit.interconnect` — wire R/C (with coupling) and Elmore
  delay of distributed RC lines.
* :mod:`repro.circuit.organization` — the physical organisation (4 ways x
  4 banks x 64x128 bits, divided bitlines).
* :mod:`repro.circuit.sram` — bitline discharge, sense amplifier, and cell
  leakage models.
* :mod:`repro.circuit.decoder` — the row-decoder chain.
* :mod:`repro.circuit.paths` — composition of one address-to-data path.
* :mod:`repro.circuit.cache_model` — per-way/per-band delay and leakage of
  a whole cache under a sampled variation map.

The yield experiments depend only on the joint distribution of per-way
delay and leakage that this model induces, not on absolute picoseconds;
see DESIGN.md for the substitution argument.
"""

from repro.circuit.technology import Technology, TECH45
from repro.circuit.organization import CacheOrganization, PAPER_ORGANIZATION
from repro.circuit.cache_model import (
    CacheCircuitModel,
    CacheCircuitResult,
    WayCircuitResult,
)

__all__ = [
    "Technology",
    "TECH45",
    "CacheOrganization",
    "PAPER_ORGANIZATION",
    "CacheCircuitModel",
    "CacheCircuitResult",
    "WayCircuitResult",
]
