"""Physical organisation of the modelled cache (paper Section 3, Figure 3).

The paper's cache: 16 KB, 4-way set associative; each way divided into 4
banks of 64 x 128 bits; each bitline partitioned into two segments to cut
the bitline delay. We identify a *horizontal band* (the H-YAPD power-down
granularity) with one bank row-range per way: disabling band ``b`` turns
off the same physical rows of every way, which is exactly the paper's
Figure 6 geometry at our modelling granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.validation import (
    require_divides,
    require_positive,
    require_power_of_two,
)

__all__ = ["CacheOrganization", "PAPER_ORGANIZATION"]


@dataclass(frozen=True)
class CacheOrganization:
    """Physical array organisation of the modelled cache.

    Attributes
    ----------
    num_ways:
        Associativity (the paper: 4).
    banks_per_way:
        Number of banks stacked in each way (the paper: 4); each bank is
        one horizontal band for H-YAPD purposes.
    rows_per_bank, cols_per_bank:
        Bank array dimensions in bits (the paper: 64 x 128).
    bitline_segments:
        Number of segments each bitline is divided into (the paper: 2).
    block_bytes:
        Cache block size of the L1 data cache (the paper: 32 B).
    """

    num_ways: int = 4
    banks_per_way: int = 4
    rows_per_bank: int = 64
    cols_per_bank: int = 128
    bitline_segments: int = 2
    block_bytes: int = 32

    def __post_init__(self) -> None:
        require_positive(self.num_ways, "num_ways")
        require_positive(self.banks_per_way, "banks_per_way")
        require_power_of_two(self.rows_per_bank, "rows_per_bank")
        require_power_of_two(self.cols_per_bank, "cols_per_bank")
        require_positive(self.bitline_segments, "bitline_segments")
        require_divides(self.bitline_segments, self.rows_per_bank, "bitline_segments")
        require_power_of_two(self.block_bytes, "block_bytes")

    # ------------------------------------------------------------------
    # derived counts
    # ------------------------------------------------------------------
    @property
    def bits_per_bank(self) -> int:
        return self.rows_per_bank * self.cols_per_bank

    @property
    def bits_per_way(self) -> int:
        return self.bits_per_bank * self.banks_per_way

    @property
    def total_bits(self) -> int:
        return self.bits_per_way * self.num_ways

    @property
    def capacity_bytes(self) -> int:
        """Data capacity in bytes (the paper's model: 16 KB)."""
        return self.total_bits // 8

    @property
    def num_bands(self) -> int:
        """Horizontal power-down bands per way (one per bank)."""
        return self.banks_per_way

    @property
    def rows_per_segment(self) -> int:
        """Rows attached to one bitline segment."""
        return self.rows_per_bank // self.bitline_segments

    # ------------------------------------------------------------------
    # derived physical dimensions (need a Technology for cell size)
    # ------------------------------------------------------------------
    def wordline_length(self, cell_width: float) -> float:
        """Local wordline length (m) across one bank."""
        return self.cols_per_bank * cell_width

    def bitline_segment_length(self, cell_height: float) -> float:
        """Length (m) of one bitline segment."""
        return self.rows_per_segment * cell_height

    def bank_height(self, cell_height: float) -> float:
        """Physical height (m) of one bank, used for global-wire distances."""
        return self.rows_per_bank * cell_height

    def global_wire_length(self, band: int, cell_height: float) -> float:
        """Length (m) of the global wires from the way edge to band ``band``.

        Band 0 sits next to the decoder/sense periphery; farther bands pay
        proportionally longer global wordline and data-return wires. A
        half-bank stub reaches the middle of the target bank.
        """
        if not 0 <= band < self.num_bands:
            raise ValueError(f"band {band} out of range")
        return (band + 0.5) * self.bank_height(cell_height)


#: The paper's 16 KB, 4-way, 4-banks-per-way organisation.
PAPER_ORGANIZATION = CacheOrganization()

# Sanity: the defaults must describe a 16 KB cache like the paper's.
assert PAPER_ORGANIZATION.capacity_bytes == 16 * units.KB
