"""SRAM array stage models: precharge, bitline discharge, sense, leakage.

The bitline stage dominates array delay: after the wordline rises, the
selected cell's read stack discharges one bitline until the differential
reaches the sense amplifier's required swing. Its delay is

    t_bl = C_bitline * sense_swing / I_cell

where ``C_bitline`` combines the wire parasitics of one bitline segment
(the paper divides each bitline in two) with the drain junctions of every
cell attached to the segment, and ``I_cell`` is the read-stack drive
current of the accessed cell. Cell leakage is the subthreshold current of
the cell's effective leaking width; with ~131K cells it dominates the
cache's static power, exactly as the paper assumes.
"""

from __future__ import annotations

from repro.circuit import devices, interconnect
from repro.circuit.organization import CacheOrganization
from repro.circuit.technology import Technology
from repro.core import units
from repro.variation.parameters import ProcessParameters

__all__ = [
    "bitline_capacitance",
    "bitline_delay",
    "precharge_delay",
    "senseamp_delay",
    "cell_leakage",
]

#: Precharge PMOS width (m); sized to restore a segment quickly.
PRECHARGE_WIDTH = 2.0 * units.UM
#: Fraction of the bitline capacitance the precharge stage must slew before
#: the wordline can fire (models precharge-release overlap).
PRECHARGE_SLEW_FRACTION = 0.15
#: Sense-amplifier input/regeneration stage widths (m).
SENSEAMP_STAGE_WIDTH = 1.0 * units.UM
#: Capacitive load of one sense-amplifier stage (F).
SENSEAMP_STAGE_CAP = 4.0 * units.FF
#: Number of gate stages inside the sense amplifier.
SENSEAMP_STAGES = 2


def bitline_capacitance(
    params: ProcessParameters, tech: Technology, org: CacheOrganization
) -> float:
    """Capacitance (F) of one bitline segment: wire plus cell drains."""
    length = org.bitline_segment_length(tech.cell_height)
    wire = interconnect.wire_capacitance(length, params, tech)
    drains = org.rows_per_segment * tech.drain_cap_per_width * tech.cell_read_width
    return wire + drains


def bitline_delay(
    params: ProcessParameters, tech: Technology, org: CacheOrganization
) -> float:
    """Time (s) for the accessed cell to develop the sense swing."""
    cap = bitline_capacitance(params, tech, org)
    current = devices.drive_current(tech.cell_read_width, params, tech)
    return cap * tech.sense_swing / current


def precharge_delay(
    precharge_params: ProcessParameters,
    array_params: ProcessParameters,
    tech: Technology,
    org: CacheOrganization,
) -> float:
    """Precharge-release overhead (s) before the bitline can discharge.

    The precharge devices' own parameters set the drive; the bitline load
    comes from the array segment's parameters.
    """
    cap = bitline_capacitance(array_params, tech, org) * PRECHARGE_SLEW_FRACTION
    return devices.stage_delay(PRECHARGE_WIDTH, cap, precharge_params, tech)


def senseamp_delay(params: ProcessParameters, tech: Technology) -> float:
    """Sense amplifier resolution delay (s): a short regenerative chain."""
    per_stage = devices.stage_delay(
        SENSEAMP_STAGE_WIDTH, SENSEAMP_STAGE_CAP, params, tech
    )
    return SENSEAMP_STAGES * per_stage


def cell_leakage(params: ProcessParameters, tech: Technology) -> float:
    """Subthreshold leakage current (A) of one SRAM cell."""
    return devices.subthreshold_current(tech.cell_leak_width, params, tech)
