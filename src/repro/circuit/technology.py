"""45 nm technology constants for the analytic cache circuit model.

The paper uses 45 nm PTM device and interconnect cards inside HSPICE. The
analytic substitute reduces those cards to the constants below. Two groups:

* *Physical constants* with directly meaningful units (supply voltage,
  copper resistivity, capacitance coefficients, cell dimensions).
* *Calibration knobs* (`alpha`, `vt_rolloff`, `subthreshold_swing`,
  `drive_k`, `leak_i0`) whose values are chosen so the model reproduces the
  variation behaviour the paper cites: roughly 3x subthreshold leakage per
  10% gate-length reduction, 5-10x leakage from threshold-voltage spread,
  and double-digit-percent access-time variation — see
  ``tests/test_circuit_sensitivity.py`` which pins these behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import units
from repro.core.validation import require_positive

__all__ = ["Technology", "TECH45", "REFERENCE_TEMPERATURE"]

#: Junction temperature (K) at which the model was calibrated (85 C).
REFERENCE_TEMPERATURE = 358.0


@dataclass(frozen=True)
class Technology:
    """Technology constants consumed by the circuit model.

    Attributes
    ----------
    vdd:
        Supply voltage (V).
    nominal_lgate:
        Drawn/nominal gate length (m); the reference for threshold
        roll-off.
    nominal_vt:
        Nominal threshold voltage (V).
    alpha:
        Velocity-saturation exponent of the alpha-power-law drive current.
    vt_rolloff:
        Threshold reduction per unit *fractional* gate-length reduction
        (V); models DIBL/short-channel roll-off. 1.0 means a 10% shorter
        channel lowers Vt by 100 mV.
    subthreshold_swing:
        Subthreshold swing (V/decade of leakage current).
    drive_k:
        Drive-current coefficient (A): I_on = drive_k * (W/L) *
        (Vdd - Vt_eff)^alpha.
    leak_i0:
        Leakage coefficient (A): I_sub = leak_i0 * (W/L) *
        10^(-Vt_eff / subthreshold_swing).
    gate_cap_per_width:
        Gate capacitance per metre of transistor width (F/m).
    drain_cap_per_width:
        Drain junction capacitance per metre of width (F/m).
    delay_coeff:
        RC-to-delay coefficient for a switching stage (0.69 for a step
        input in the Elmore approximation).
    wire_resistivity:
        Effective interconnect resistivity including barrier/scattering
        (ohm * m).
    wire_cap_eps:
        Effective dielectric permittivity coefficient used for both the
        ground and coupling components of wire capacitance (F/m).
    wire_fringe_cap:
        Fringe capacitance per metre of wire (F/m), width-independent.
    wire_pitch:
        Interconnect pitch (m); line spacing is pitch minus line width.
    coupling_miller:
        Miller factor applied to coupling capacitance (worst-case
        simultaneous opposite switching of both neighbours would be 2.0).
    sense_swing:
        Bitline differential the sense amplifier needs (V).
    cell_width, cell_height:
        SRAM cell footprint (m) along the wordline and bitline directions.
    cell_read_width:
        Effective width (m) of the cell's read stack (access transistor in
        series with the pull-down).
    cell_leak_width:
        Total effective leaking width per cell (m).
    hyapd_delay_overhead:
        Fractional access-latency increase of the H-YAPD post-decoder
        organisation (paper Section 4.2: 2.5%).
    temperature:
        Operating junction temperature (K). Subthreshold leakage scales
        with T^2 and the swing with T; carrier mobility (drive current)
        falls as T^mobility_exponent. The calibration reference is
        :data:`REFERENCE_TEMPERATURE` (85 C, a typical hot-spot binning
        condition), at which all temperature factors are exactly 1.
    mobility_exponent:
        Exponent of the mobility-vs-temperature power law.
    """

    vdd: float = 0.9
    nominal_lgate: float = 45 * units.NM
    nominal_vt: float = 220 * units.MV
    alpha: float = 2.4
    vt_rolloff: float = 2.60
    subthreshold_swing: float = 150 * units.MV
    drive_k: float = 8.0e-6
    leak_i0: float = 5.0e-6
    gate_cap_per_width: float = 1.0e-9
    drain_cap_per_width: float = 0.8e-9
    delay_coeff: float = 0.69
    wire_resistivity: float = 3.0e-8
    wire_cap_eps: float = 2.0e-11
    wire_fringe_cap: float = 40e-12
    wire_pitch: float = 0.5 * units.UM
    coupling_miller: float = 1.5
    sense_swing: float = 100 * units.MV
    cell_width: float = 0.80 * units.UM
    cell_height: float = 0.46 * units.UM
    cell_read_width: float = 55 * units.NM
    cell_leak_width: float = 180 * units.NM
    hyapd_delay_overhead: float = 0.025
    temperature: float = 358.0
    mobility_exponent: float = 1.5

    def __post_init__(self) -> None:
        for name in (
            "vdd",
            "nominal_lgate",
            "nominal_vt",
            "alpha",
            "subthreshold_swing",
            "drive_k",
            "leak_i0",
            "gate_cap_per_width",
            "drain_cap_per_width",
            "delay_coeff",
            "wire_resistivity",
            "wire_cap_eps",
            "wire_pitch",
            "sense_swing",
            "cell_width",
            "cell_height",
            "cell_read_width",
            "cell_leak_width",
            "temperature",
        ):
            require_positive(getattr(self, name), name)

    def replace(self, **changes) -> "Technology":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def temperature_ratio(self) -> float:
        """T / T_reference: the scale factor of the thermal models."""
        return self.temperature / REFERENCE_TEMPERATURE


#: Default 45 nm technology instance used by the paper reproduction.
TECH45 = Technology()
