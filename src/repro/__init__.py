"""Reproduction of "Yield-Aware Cache Architectures" (MICRO 2006).

Public API overview
-------------------
* :mod:`repro.variation` — Table 1 process parameters, spatial correlation,
  Monte Carlo sampling of manufactured caches.
* :mod:`repro.circuit` — analytic circuit model of the 16 KB 4-way cache
  (the HSPICE substitute): per-way/per-band delay and leakage.
* :mod:`repro.yieldmodel` — yield constraints, loss classification, and the
  population analysis behind Tables 2-5 and Figure 8.
* :mod:`repro.schemes` — YAPD, H-YAPD, VACA, Hybrid, and naive binning.
* :mod:`repro.cache` — functional set-associative caches with way disable,
  H-YAPD address remapping, and per-way latencies.
* :mod:`repro.uarch` — the out-of-order pipeline simulator (SimpleScalar
  substitute) with speculative scheduling, load-bypass buffers and replay.
* :mod:`repro.workloads` — SPEC2000-like synthetic workload profiles.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "1.0.0"
