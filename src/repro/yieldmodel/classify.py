"""Per-chip yield classification (paper Tables 2, 3 and 6).

A :class:`ChipCase` binds one evaluated cache to a set of constraints and
derives everything the schemes and the tables need: per-way access cycles,
the delay-violating ways, the leakage verdict, the loss reason bucket, and
the "a-b-c" way-latency configuration key of Table 6 (a ways at 4 cycles,
b at 5, c at 6 or more).

Bucket semantics follow the paper's tables: a chip that violates the
leakage limit is counted under "Leakage Constraint" whether or not it also
has delay trouble (Table 6's 4-0-0 row, "leakage power limited caches that
did not violate the timing requirements", accounts for 105 + 33 = all 138
leakage-bucket chips, which fixes this reading); the "Delay Constraint
(N ways)" buckets hold chips that violate delay only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Tuple

import numpy as np

from repro.circuit.cache_model import CacheCircuitResult
from repro.core.errors import ConfigurationError
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES, YieldConstraints

__all__ = [
    "LossReason",
    "ChipCase",
    "config_key",
    "LEAKAGE_CODE",
    "PASS_CODE",
    "way_cycles_columns",
    "delay_violations_columns",
    "loss_codes_columns",
    "loss_reason_for_code",
    "loss_census_columns",
    "config_keys_columns",
]

#: VACA supports exactly one extra cycle (single-entry load-bypass buffers).
VACA_MAX_CYCLES = BASE_ACCESS_CYCLES + 1


class LossReason(enum.Enum):
    """Why a chip fails parametric testing (or NONE if it passes)."""

    NONE = "passes"
    LEAKAGE = "leakage constraint"
    DELAY_1 = "delay constraint (1 way)"
    DELAY_2 = "delay constraint (2 ways)"
    DELAY_3 = "delay constraint (3 ways)"
    DELAY_4 = "delay constraint (4 ways)"
    # Higher-associativity organisations (the associativity ablation) can
    # have more violating ways than the paper's 4-way cache.
    DELAY_5 = "delay constraint (5 ways)"
    DELAY_6 = "delay constraint (6 ways)"
    DELAY_7 = "delay constraint (7 ways)"
    DELAY_8 = "delay constraint (8 ways)"

    @staticmethod
    def delay(num_ways: int) -> "LossReason":
        """The delay bucket for ``num_ways`` violating ways."""
        try:
            return LossReason[f"DELAY_{num_ways}"]
        except KeyError:
            raise ConfigurationError(
                f"no delay bucket for {num_ways} violating ways"
            ) from None

    @property
    def is_loss(self) -> bool:
        return self is not LossReason.NONE


def config_key(way_cycles: Tuple[int, ...]) -> str:
    """Table 6 configuration key for a tuple of per-way access cycles.

    ``"3-1-0"`` means three 4-cycle ways, one 5-cycle way and no way
    needing 6 or more cycles.
    """
    n4 = sum(1 for c in way_cycles if c == BASE_ACCESS_CYCLES)
    n5 = sum(1 for c in way_cycles if c == VACA_MAX_CYCLES)
    n6 = sum(1 for c in way_cycles if c > VACA_MAX_CYCLES)
    if n4 + n5 + n6 != len(way_cycles):
        raise ConfigurationError(f"unclassifiable way cycles {way_cycles}")
    return f"{n4}-{n5}-{n6}"


# ----------------------------------------------------------------------
# column-wise classification (the columnar population fast path)
# ----------------------------------------------------------------------
#: Loss code of a leakage-limited chip in :func:`loss_codes_columns`.
LEAKAGE_CODE = -1
#: Loss code of a passing chip; positive codes count delay-violating ways.
PASS_CODE = 0


def way_cycles_columns(
    way_delays: np.ndarray, constraints: YieldConstraints
) -> np.ndarray:
    """Vectorised :meth:`YieldConstraints.cycles_for_delay`.

    ``way_delays`` is a ``(chips, ways)`` array of per-way access delays;
    the result holds each way's access-cycle count. Elementwise the
    arithmetic is the scalar method's, so every entry equals the
    per-chip classification bit for bit.
    """
    delays = np.asarray(way_delays, dtype=float)
    if np.any(delays <= 0):
        raise ConfigurationError("delay must be > 0")
    slice_time = constraints.delay_limit / BASE_ACCESS_CYCLES
    stretched = np.ceil(delays / slice_time - 1e-12).astype(np.int64)
    return np.where(
        delays <= constraints.delay_limit, BASE_ACCESS_CYCLES, stretched
    )


def delay_violations_columns(
    way_delays: np.ndarray, constraints: YieldConstraints
) -> np.ndarray:
    """Boolean ``(chips, ways)`` mask of ways missing the 4-cycle latency.

    Uses the delay limit directly (not the cycle count): a delay a hair
    over the limit still rounds to 4 cycles under the reference's 1e-12
    ceiling guard yet violates :meth:`YieldConstraints.meets_delay`,
    exactly as :attr:`ChipCase.delay_violating_ways` sees it.
    """
    return np.asarray(way_delays, dtype=float) > constraints.delay_limit


def loss_codes_columns(
    way_delays: np.ndarray,
    total_leakage: np.ndarray,
    constraints: YieldConstraints,
) -> np.ndarray:
    """Per-chip loss codes over a population, as one ``(chips,)`` array.

    ``LEAKAGE_CODE`` (-1) marks leakage-limited chips (taking precedence
    over delay trouble, as in :attr:`ChipCase.loss_reason`), ``PASS_CODE``
    (0) passing chips, and a positive code the number of delay-violating
    ways.
    """
    violating = delay_violations_columns(way_delays, constraints).sum(axis=1)
    leakage = np.asarray(total_leakage, dtype=float) > constraints.leakage_limit
    return np.where(leakage, LEAKAGE_CODE, violating).astype(np.int64)


def loss_reason_for_code(code: int) -> LossReason:
    """The :class:`LossReason` a :func:`loss_codes_columns` code denotes."""
    if code == LEAKAGE_CODE:
        return LossReason.LEAKAGE
    if code == PASS_CODE:
        return LossReason.NONE
    if code < 0:
        raise ConfigurationError(f"unknown loss code {code}")
    return LossReason.delay(int(code))


def loss_census_columns(codes: np.ndarray) -> Dict[LossReason, int]:
    """Count failing chips per loss reason from a loss-code column.

    Matches the ``base_counts`` of :class:`LossBreakdown` (passing chips
    are not counted; insertion order follows code order, which is how
    the per-case loop encounters reasons only incidentally — compare by
    content, not order).
    """
    codes = np.asarray(codes)
    census: Dict[LossReason, int] = {}
    values, counts = np.unique(codes, return_counts=True)
    for value, count in zip(values.tolist(), counts.tolist()):
        reason = loss_reason_for_code(value)
        if reason.is_loss:
            census[reason] = int(count)
    return census


def config_keys_columns(way_cycles: np.ndarray) -> List[str]:
    """Table 6 configuration keys for a ``(chips, ways)`` cycle array."""
    cycles = np.asarray(way_cycles)
    n4 = (cycles == BASE_ACCESS_CYCLES).sum(axis=1)
    n5 = (cycles == VACA_MAX_CYCLES).sum(axis=1)
    n6 = (cycles > VACA_MAX_CYCLES).sum(axis=1)
    if np.any(n4 + n5 + n6 != cycles.shape[1]):
        raise ConfigurationError("unclassifiable way cycles in population")
    return [
        f"{a}-{b}-{c}"
        for a, b, c in zip(n4.tolist(), n5.tolist(), n6.tolist())
    ]


@dataclass(frozen=True)
class ChipCase:
    """One manufactured chip held against a set of yield constraints."""

    circuit: CacheCircuitResult
    constraints: YieldConstraints

    # ------------------------------------------------------------------
    # derived facts
    # ------------------------------------------------------------------
    @cached_property
    def way_cycles(self) -> Tuple[int, ...]:
        """Access cycles each way needs at the binned frequency."""
        return tuple(
            self.constraints.cycles_for_delay(d) for d in self.circuit.way_delays
        )

    @cached_property
    def delay_violating_ways(self) -> Tuple[int, ...]:
        """Indices of ways that miss the 4-cycle design latency."""
        return tuple(
            w
            for w, d in enumerate(self.circuit.way_delays)
            if not self.constraints.meets_delay(d)
        )

    @property
    def leakage_violation(self) -> bool:
        """True when total leakage exceeds the power limit."""
        return not self.constraints.meets_leakage(self.circuit.total_leakage)

    @property
    def delay_violation(self) -> bool:
        """True when any way misses the 4-cycle latency."""
        return bool(self.delay_violating_ways)

    @property
    def passes(self) -> bool:
        """True when the chip needs no yield-aware scheme at all."""
        return not (self.leakage_violation or self.delay_violation)

    @cached_property
    def loss_reason(self) -> LossReason:
        """The paper's loss bucket for this chip."""
        if self.leakage_violation:
            return LossReason.LEAKAGE
        if self.delay_violation:
            return LossReason.delay(len(self.delay_violating_ways))
        return LossReason.NONE

    @cached_property
    def configuration(self) -> str:
        """Table 6 way-latency configuration key (e.g. ``"3-1-0"``)."""
        return config_key(self.way_cycles)

    # ------------------------------------------------------------------
    # helpers the schemes use
    # ------------------------------------------------------------------
    def leakage_after_disabling_way(self, way: int) -> float:
        """Total leakage (W) with one way fully gated off."""
        return self.circuit.total_leakage - self.circuit.ways[way].leakage

    def max_leakage_way(self) -> int:
        """The way with the highest total leakage (YAPD's disable choice)."""
        leakages = self.circuit.way_leakages
        return max(range(len(leakages)), key=lambda w: leakages[w])

    def way_cycles_without_band(self, band: int) -> Tuple[int, ...]:
        """Per-way cycles if horizontal band ``band`` were powered down."""
        return tuple(
            self.constraints.cycles_for_delay(way.delay_without_band(band))
            for way in self.circuit.ways
        )
