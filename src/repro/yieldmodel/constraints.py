"""Yield constraints and the delay-to-cycles mapping.

The paper adopts Rao et al.'s methodology: the *performance limit* is the
population mean plus a multiple of its standard deviation, and the *power
limit* is a multiple of the population's average leakage. Three constraint
policies appear in the evaluation:

=========  =====================  ==================
policy     delay limit            leakage limit
=========  =====================  ==================
nominal    mean + 1.0 sigma       3x average
relaxed    mean + 1.5 sigma       4x average
strict     mean + 0.5 sigma       2x average
=========  =====================  ==================

The delay limit corresponds to the cache's design latency of 4 cycles: a
way whose delay fits within the limit answers in 4 cycles; each additional
quarter of the limit buys one more cycle (a 5-cycle access grants the
array 25% more time). Ways needing 6 or more cycles are beyond what VACA's
single-entry load-bypass buffers can absorb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.validation import require_positive

__all__ = [
    "BASE_ACCESS_CYCLES",
    "YieldConstraints",
    "ConstraintPolicy",
    "NOMINAL_POLICY",
    "RELAXED_POLICY",
    "STRICT_POLICY",
    "PAPER_POLICIES",
]

#: Design access latency of the L1 data cache, in cycles (paper: 4).
BASE_ACCESS_CYCLES = 4


@dataclass(frozen=True)
class YieldConstraints:
    """Concrete delay and leakage limits for a chip population.

    Attributes
    ----------
    delay_limit:
        Maximum access delay (s) that still meets the design's 4-cycle
        latency at the binned frequency.
    leakage_limit:
        Maximum total cache leakage power (W).
    """

    delay_limit: float
    leakage_limit: float

    def __post_init__(self) -> None:
        require_positive(self.delay_limit, "delay_limit")
        require_positive(self.leakage_limit, "leakage_limit")

    def cycles_for_delay(self, delay: float) -> int:
        """Access cycles a path of the given delay (s) needs.

        4 cycles within the limit; one more cycle per additional quarter
        of the limit (the access is pipelined over equal cycle slices).
        """
        if delay <= 0:
            raise ConfigurationError(f"delay must be > 0, got {delay}")
        if delay <= self.delay_limit:
            return BASE_ACCESS_CYCLES
        slice_time = self.delay_limit / BASE_ACCESS_CYCLES
        return int(math.ceil(delay / slice_time - 1e-12))

    def meets_delay(self, delay: float) -> bool:
        """True when the delay fits the 4-cycle design latency."""
        return delay <= self.delay_limit

    def meets_leakage(self, leakage: float) -> bool:
        """True when the total leakage fits the power limit."""
        return leakage <= self.leakage_limit


@dataclass(frozen=True)
class ConstraintPolicy:
    """A rule for deriving :class:`YieldConstraints` from a population.

    Attributes
    ----------
    name:
        Policy label ("nominal", "relaxed", "strict").
    delay_sigma_multiple:
        The delay limit is population mean + this many standard
        deviations.
    leakage_mean_multiple:
        The leakage limit is this multiple of the population's average.
    """

    name: str
    delay_sigma_multiple: float
    leakage_mean_multiple: float

    def __post_init__(self) -> None:
        require_positive(self.delay_sigma_multiple, "delay_sigma_multiple")
        require_positive(self.leakage_mean_multiple, "leakage_mean_multiple")

    def derive(
        self, delays: Sequence[float], leakages: Sequence[float]
    ) -> YieldConstraints:
        """Compute concrete limits from a population's delays and leakages."""
        if len(delays) < 2 or len(leakages) < 2:
            raise ConfigurationError(
                "need at least two chips to derive population limits"
            )
        n = len(delays)
        mean_delay = sum(delays) / n
        var = sum((d - mean_delay) ** 2 for d in delays) / n
        sigma = math.sqrt(var)
        mean_leak = sum(leakages) / len(leakages)
        return YieldConstraints(
            delay_limit=mean_delay + self.delay_sigma_multiple * sigma,
            leakage_limit=self.leakage_mean_multiple * mean_leak,
        )


#: The paper's Section 5.1 policy (Rao-style, adjusted for 45 nm caches).
NOMINAL_POLICY = ConstraintPolicy("nominal", 1.0, 3.0)
#: The relaxed policy of Tables 4 and 5.
RELAXED_POLICY = ConstraintPolicy("relaxed", 1.5, 4.0)
#: The strict policy of Tables 4 and 5.
STRICT_POLICY = ConstraintPolicy("strict", 0.5, 2.0)

#: All policies used in the paper's evaluation.
PAPER_POLICIES = (NOMINAL_POLICY, RELAXED_POLICY, STRICT_POLICY)
