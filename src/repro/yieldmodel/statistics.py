"""Statistical error bars for Monte Carlo yield estimates.

The paper reports point estimates over 2000 simulated chips. Any such
estimate carries sampling error; this module quantifies it two ways:

* :func:`wilson_interval` — the analytic Wilson score interval for a
  binomial proportion (a chip passes or it does not), which behaves well
  near 0 and 1 where yields live.
* :func:`bootstrap_interval` — a nonparametric percentile bootstrap over
  chips, usable for any per-chip statistic (e.g. loss *reduction*, which
  is a ratio of two correlated counts and has no closed form).

`PopulationResult.yield_interval` style helpers are provided through
:func:`scheme_yield_interval`, which resamples rescue outcomes directly.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import spawn
from repro.core.validation import require_in_range, require_positive

__all__ = [
    "z_score",
    "wilson_interval",
    "bootstrap_replicates",
    "bootstrap_interval",
    "scheme_yield_interval",
    "loss_reduction_interval",
]

#: z-scores for the supported confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ConfigurationError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        ) from None


def z_score(confidence: float) -> float:
    """Two-sided normal z-score for a supported confidence level.

    The public face of the table behind :func:`wilson_interval`, shared
    with the estimator layer's normal-approximation intervals so both
    always quote the same critical value for the same confidence.
    """
    return _z_for(confidence)


def wilson_interval(
    successes: int, total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if total <= 0:
        raise ConfigurationError("total must be > 0")
    if not 0 <= successes <= total:
        raise ConfigurationError("successes must be within [0, total]")
    z = _z_for(confidence)
    p = successes / total
    denom = 1 + z**2 / total
    centre = (p + z**2 / (2 * total)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / total + z**2 / (4 * total**2))
        / denom
    )
    low = max(0.0, centre - half)
    high = min(1.0, centre + half)
    # Pin the exact endpoints (floating point can land a hair inside and
    # exclude the point estimate at p = 0 or 1).
    if successes == 0:
        low = 0.0
    if successes == total:
        high = 1.0
    return (low, high)


def bootstrap_replicates(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    resamples: int = 2000,
    seed: int = 0,
    start: int = 0,
) -> np.ndarray:
    """``resamples`` bootstrap replicates of ``statistic`` over ``values``.

    Shardable: replicate ``i`` draws from an RNG derived from
    ``(seed, start + i)`` alone, so disjoint ``(start, resamples)`` chunks
    computed anywhere concatenate to the exact serial replicate vector.
    """
    if not len(values):
        raise ConfigurationError("values must be non-empty")
    require_positive(resamples, "resamples")
    if start < 0:
        raise ConfigurationError(f"start must be >= 0, got {start}")
    data = np.asarray(values, dtype=float)
    stats = np.empty(resamples)
    n = len(data)
    for i in range(resamples):
        rng = spawn(seed, f"bootstrap-{start + i}")
        sample = data[rng.integers(0, n, size=n)]
        stats[i] = statistic(sample)
    return stats


def bootstrap_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap interval of ``statistic`` over ``values``."""
    require_in_range(confidence, 0.5, 0.999, "confidence")
    stats = bootstrap_replicates(
        values, statistic=statistic, resamples=resamples, seed=seed
    )
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def _ship_flags(population, scheme) -> List[float]:
    """1.0 per chip that ships (passes outright or is rescued)."""
    flags = []
    for case in population.cases:
        if case.passes:
            flags.append(1.0)
        else:
            flags.append(1.0 if scheme.rescue(case).saved else 0.0)
    return flags


def scheme_yield_interval(
    population, scheme, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson interval for the yield achieved by ``scheme``.

    ``population`` is a :class:`~repro.yieldmodel.analysis.PopulationResult`.
    """
    flags = _ship_flags(population, scheme)
    return wilson_interval(int(sum(flags)), len(flags), confidence)


def loss_reduction_interval(
    population,
    scheme,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap interval for the scheme's fractional loss reduction.

    Loss reduction is ``1 - residual/base`` — a ratio of correlated
    counts, so the bootstrap resamples (failing, saved) chip pairs.
    """
    outcomes = []
    for case in population.cases:
        if case.passes:
            continue
        outcomes.append(1.0 if scheme.rescue(case).saved else 0.0)
    if not outcomes:
        raise ConfigurationError("no failing chips to estimate from")
    return bootstrap_interval(
        outcomes,
        statistic=np.mean,  # saved fraction of failures == loss reduction
        confidence=confidence,
        resamples=resamples,
        seed=seed,
    )
