"""Batch dispatch: the bridge between estimators and the worker pool.

A :class:`BatchRunner` turns one tagged chip range into shard jobs,
ships them through a :class:`~repro.engine.executor.ShardedExecutor`
(the engine's own, when driven from :meth:`Engine.estimate`), and merges
the shards back in chip-id order. Because every chip is keyed by
``(seed, tag, chip_id)`` alone and the executor returns results in job
order, the merged batch is bit-identical at any worker count — the
estimators above this layer never see how the work was split.
"""

from __future__ import annotations

import math
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from repro.circuit.cache_model import CacheCircuitResult
from repro.engine.executor import ShardedExecutor
from repro.obs.trace import span as trace_span

__all__ = ["BatchRunner", "ShardData"]

#: Smallest shard worth shipping to a worker (matches engine dispatch).
_MIN_SHARD = 16


class ShardData(NamedTuple):
    """One merged batch: circuit results per architecture + raw die z."""

    regular: List[CacheCircuitResult]
    horizontal: List[CacheCircuitResult]
    die_z: List[Tuple[float, ...]]

    def extend(self, other: "ShardData") -> None:
        self.regular.extend(other.regular)
        self.horizontal.extend(other.horizontal)
        self.die_z.extend(other.die_z)

    @property
    def count(self) -> int:
        return len(self.regular)


class BatchRunner:
    """Dispatches tagged chip ranges over an executor, shards merged in order.

    Parameters
    ----------
    executor:
        The sharded executor to dispatch on (``None`` builds a serial one).
    workers:
        Worker count used to size shards (mirrors engine population jobs).
    stats:
        Optional :class:`~repro.engine.stats.EngineStats` fed per-job
        compute time.
    progress:
        Optional ``progress(done, total)`` per completed shard of each
        dispatch (the serve layer's streaming hook).
    """

    def __init__(
        self,
        executor: Optional[ShardedExecutor] = None,
        workers: int = 1,
        stats=None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.executor = (
            executor if executor is not None else ShardedExecutor(workers=1)
        )
        self.workers = max(1, int(workers))
        self.stats = stats
        self.progress = progress

    # ------------------------------------------------------------------
    def _jobs(
        self,
        seed: int,
        tag: str,
        start: int,
        stop: int,
        shift: Optional[Sequence[float]],
        stratum: Optional[Tuple[int, int]],
    ) -> List[dict]:
        base = {
            "seed": seed,
            "tag": tag,
            "shift": list(shift) if shift is not None else None,
            "stratum": list(stratum) if stratum is not None else None,
        }
        if self.workers <= 1:
            return [dict(base, start=start, stop=stop)]
        shard = max(
            _MIN_SHARD, math.ceil((stop - start) / (self.workers * 4))
        )
        return [
            dict(base, start=lo, stop=min(lo + shard, stop))
            for lo in range(start, stop, shard)
        ]

    def run(
        self,
        seed: int,
        tag: str,
        start: int,
        stop: int,
        shift: Optional[Sequence[float]] = None,
        stratum: Optional[Tuple[int, int]] = None,
    ) -> ShardData:
        """Draw and evaluate chips ``[start, stop)`` of stream ``tag``."""
        # Imported here, not at module top: this module is imported by
        # repro.engine.core, and repro.engine.workers imports back into
        # the estimators package — the lazy import keeps the package
        # import graph acyclic.
        from repro.engine.workers import estimate_shard

        if stop <= start:
            return ShardData([], [], [])
        jobs = self._jobs(seed, tag, start, stop, shift, stratum)
        with trace_span(
            "estimator.batch", tag=tag, chips=stop - start, jobs=len(jobs)
        ):
            shards = self.executor.run(
                estimate_shard, jobs, self.stats, progress=self.progress
            )
        merged = ShardData([], [], [])
        for regular, horizontal, die_z in shards:
            merged.regular.extend(regular)
            merged.horizontal.extend(horizontal)
            merged.die_z.extend(die_z)
        return merged
