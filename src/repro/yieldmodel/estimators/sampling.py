"""Shard-level sampling for the estimator layer.

:func:`sample_shard` is the worker body behind
:func:`repro.engine.workers.estimate_shard`: it draws chips
``[start, stop)`` of one tagged stream through the columnar population
sampler, optionally transforms the die-level standard-normal slot
(stratum restriction, importance-sampling mean shift), evaluates both
architectures, and returns the circuit results plus the transformed
die-slot z values the parent needs for exact likelihood ratios.

Determinism contract: chip ``i`` of stream ``tag`` always draws from
``spawn(seed, f"{tag}-{i}")``, and both transforms are elementwise —
so any sharding of an id range concatenates bit-identically, at any
worker count. The ``"chip"`` tag reproduces exactly the chips of the
reference fixed-N population (the per-chip sampler's own spawn keys),
which is what makes pilot batches a strict prefix of the brute-force
population.

``REPRO_COLUMNAR=0`` switches circuit evaluation to the per-chip
reference path (``chip_map`` + ``evaluate_pair``); sampling always goes
through the columnar sampler, which is bit-identical to the per-chip
reference by the PR-7 differential battery — so the escape hatch trades
speed only, exactly as it does for plain populations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.cache_model import CacheCircuitModel, CacheCircuitResult
from repro.circuit.columnar import evaluate_population_pair
from repro.circuit.organization import PAPER_ORGANIZATION
from repro.circuit.technology import TECH45
from repro.core.errors import ConfigurationError
from repro.core.rng import spawn
from repro.variation.columnar import ColumnarPopulationSampler, columnar_enabled
from repro.variation.parameters import PARAMETER_NAMES
from repro.variation.sampling import CacheVariationSampler
from repro.yieldmodel.estimators.normal import ndtri, normal_cdf

__all__ = ["NUM_DIE_PARAMS", "STRATUM_PARAM", "sample_shard"]

#: Size of the die-level z slot (the five Table 1 parameters).
NUM_DIE_PARAMS = len(PARAMETER_NAMES)

#: Die-slot column the stratified estimator partitions: the threshold
#: voltage, the parameter both delay and leakage are most sensitive to.
STRATUM_PARAM = PARAMETER_NAMES.index("vt")

#: Keep the stratum-restricted uniform strictly inside (0, 1): a raw
#: draw extreme enough for Phi(z) to round to exactly 0 or 1 would
#: otherwise map onto a stratum boundary (and ndtri's domain edge).
_U_EPS = 1e-12


def _apply_stratum(die_z: np.ndarray, index: int, strata: int) -> None:
    """Restrict the stratum column to equiprobable stratum ``index``.

    The measure-preserving transform ``z' = ndtri((h + Phi(z)) / K)``
    maps a standard-normal draw onto the exact conditional distribution
    of stratum ``h`` of ``K`` — applied per element, in chip order, so
    shard layout cannot change a value.
    """
    if not 0 <= index < strata:
        raise ConfigurationError(
            f"stratum index {index} out of range for {strata} strata"
        )
    column = die_z[:, STRATUM_PARAM]
    for i in range(column.shape[0]):
        u = normal_cdf(float(column[i]))
        u = min(max(u, _U_EPS), 1.0 - _U_EPS)
        column[i] = ndtri((index + u) / strata)


def sample_shard(
    seed: int,
    tag: str,
    start: int,
    stop: int,
    shift: Optional[Sequence[float]] = None,
    stratum: Optional[Tuple[int, int]] = None,
) -> Tuple[
    List[CacheCircuitResult], List[CacheCircuitResult], List[Tuple[float, ...]]
]:
    """Draw, transform and evaluate chips ``[start, stop)`` of one stream.

    Returns ``(regular, horizontal, die_z)`` where ``die_z[i]`` is chip
    ``start + i``'s die-slot standard-normal vector *after* any
    transform — i.e. the z the chip was actually manufactured from,
    which is what the importance-sampling likelihood ratio needs.
    """
    if not 0 <= start <= stop:
        raise ConfigurationError(f"invalid chip range [{start}, {stop})")
    sampler = CacheVariationSampler()
    columnar = ColumnarPopulationSampler(sampler)
    if not columnar.supported or not columnar._die_drawn:
        raise ConfigurationError(
            "yield estimators require the stock variation table with "
            "die-level variation (inter_die factor > 0)"
        )
    count = stop - start
    raw = columnar.allocate(count)
    for index, chip_id in enumerate(range(start, stop)):
        columnar.draw_chip(spawn(seed, f"{tag}-{chip_id}"), index, raw)
    die_z = raw.head_z[:, :NUM_DIE_PARAMS]
    if stratum is not None:
        _apply_stratum(die_z, stratum[0], stratum[1])
    if shift is not None:
        if len(shift) != NUM_DIE_PARAMS:
            raise ConfigurationError(
                f"shift must have {NUM_DIE_PARAMS} components, "
                f"got {len(shift)}"
            )
        die_z += np.asarray(shift, dtype=float)
    population = columnar.finalize(list(range(start, stop)), raw)
    z_rows = [
        tuple(float(v) for v in die_z[i]) for i in range(count)
    ]
    regular_model = CacheCircuitModel(
        tech=TECH45, org=PAPER_ORGANIZATION, hyapd=False
    )
    hyapd_model = CacheCircuitModel(
        tech=TECH45, org=PAPER_ORGANIZATION, hyapd=True
    )
    if columnar_enabled():
        regular, horizontal = evaluate_population_pair(
            regular_model, hyapd_model, population
        )
    else:
        regular, horizontal = [], []
        for i in range(count):
            cvmap = population.chip_map(i)
            reg_result, hyapd_result = regular_model.evaluate_pair(
                hyapd_model, cvmap
            )
            regular.append(reg_result)
            horizontal.append(hyapd_result)
    return regular, horizontal, z_rows
