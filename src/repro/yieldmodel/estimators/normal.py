"""Standard-normal CDF and quantile function, stdlib only.

The stratified estimator needs the probability transform both ways: the
CDF maps a raw draw into (0, 1), and the quantile function (``ndtri``)
maps the stratum-restricted uniform back to a z value. SciPy is not a
dependency of this repo, so ``ndtri`` is implemented here as Acklam's
rational approximation refined with one Halley step against the exact
(``math.erfc``-based) CDF — accurate to ~1e-15 over the usable range,
and bit-deterministic across platforms because every operation is plain
scalar IEEE arithmetic.
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigurationError

__all__ = ["ndtri", "normal_cdf"]

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)

# Acklam's coefficients for the inverse normal CDF.
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)

#: Central/tail crossover of the rational approximation.
_P_LOW = 0.02425


def normal_cdf(x: float) -> float:
    """Phi(x), the standard-normal CDF (``erfc`` form: exact in tails)."""
    return 0.5 * math.erfc(-x / _SQRT2)


def _ndtri_approx(p: float) -> float:
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q
            + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p <= 1.0 - _P_LOW:
        q = p - 0.5
        r = q * q
        return (
            (
                ((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4])
                * r
                + _A[5]
            )
            * q
        ) / (
            ((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r
            + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q
        + _C[5]
    ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)


def ndtri(p: float) -> float:
    """Inverse standard-normal CDF: the x with ``normal_cdf(x) == p``."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"ndtri requires 0 < p < 1, got {p}")
    x = _ndtri_approx(p)
    # One Halley step against the exact CDF lifts the approximation from
    # ~1e-9 to near machine precision. Skipped in the extreme tails where
    # exp(x^2/2) would overflow long before the refinement matters.
    if abs(x) < 8.0:
        err = normal_cdf(x) - p
        u = err * _SQRT_2PI * math.exp(x * x / 2.0)
        x = x - u / (1.0 + x * u / 2.0)
    return x
