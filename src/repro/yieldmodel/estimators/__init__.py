"""Smart yield estimators: same numbers as brute-force MC, fewer chips.

Yield estimation is rare-event estimation — the paper's 2000-chip
brute-force Monte Carlo spends nearly all of its samples on chips far
from the delay/leakage limit surfaces. This package provides estimators
that reach the same yield figures at a fraction of the samples:

* ``fixed`` — the legacy fixed-N estimator (Wilson intervals over the
  full population), kept as the reference everything else is compared
  against.
* ``adaptive`` — sequential batches through the columnar fast path,
  stopping as soon as the Wilson CI half-width of every tracked yield
  figure falls below a target.
* ``stratified`` — the die-offset parameter space partitioned into
  equiprobable strata, sized by pilot-run variance (Neyman allocation),
  recombined with exact 1/K weights.
* ``is`` — importance sampling: the die-level process-parameter
  distribution is mean-shifted toward the limit surfaces (tilt computed
  from a pilot batch's near-limit chips) and reweighted by exact
  likelihood ratios computed on the raw standard-normal columns.

Everything is deterministic per ``(seed, spec)`` at any worker count:
each chip's RNG comes from ``spawn(seed, f"{tag}-{chip_id}")`` alone, so
shard layout never changes a single draw, and every stopping/allocation
decision is a pure function of the drawn data.
"""

from repro.yieldmodel.estimators.core import (
    ESTIMATOR_KINDS,
    estimate_adaptive,
    estimate_fixed,
    estimate_is,
    estimate_stratified,
    neyman_allocation,
    run_estimate,
)
from repro.yieldmodel.estimators.normal import ndtri, normal_cdf
from repro.yieldmodel.estimators.results import EstimateReport, YieldEstimate
from repro.yieldmodel.estimators.runner import BatchRunner, ShardData
from repro.yieldmodel.estimators.spec import EstimatorSpec

__all__ = [
    "BatchRunner",
    "ESTIMATOR_KINDS",
    "EstimateReport",
    "EstimatorSpec",
    "ShardData",
    "YieldEstimate",
    "estimate_adaptive",
    "estimate_fixed",
    "estimate_is",
    "estimate_stratified",
    "ndtri",
    "neyman_allocation",
    "normal_cdf",
    "run_estimate",
]
