"""Estimator specification: the identity of one estimation strategy.

An :class:`EstimatorSpec` names which estimator runs and every knob that
changes its numbers. It is part of the content-addressed store key of an
estimate (and of an adaptively-stopped population), so two runs agree on
an answer exactly when they agree on ``(seed, chips, policy, spec)`` —
the same identity discipline every other engine job follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.errors import ConfigurationError

__all__ = ["ESTIMATOR_KINDS", "EstimatorSpec"]

#: Supported estimator kinds, in presentation order.
ESTIMATOR_KINDS = ("fixed", "adaptive", "stratified", "is")

#: Confidence levels the Wilson/normal intervals support.
_CONFIDENCES = (0.90, 0.95, 0.99)


@dataclass(frozen=True)
class EstimatorSpec:
    """How one yield estimate is computed.

    Attributes
    ----------
    kind:
        ``fixed`` | ``adaptive`` | ``stratified`` | ``is``.
    ci_target:
        Stop once every tracked figure's CI half-width is at or below
        this (``None`` = no CI stopping; the estimator runs to its
        sample cap, which is the legacy fixed-N behaviour).
    batch_size:
        Chips drawn per sequential round.
    max_chips:
        Hard sample cap; ``None`` defers to the run's population size.
    pilot_chips:
        Pilot-batch size (stratified allocation / IS tilt calibration).
    strata:
        Stratum count of the stratified estimator.
    tilt_scale:
        Multiplier on the IS mean-shift computed from the pilot.
    confidence:
        Interval confidence level (0.90, 0.95 or 0.99).
    """

    kind: str = "fixed"
    ci_target: Optional[float] = None
    batch_size: int = 250
    max_chips: Optional[int] = None
    pilot_chips: int = 200
    strata: int = 4
    tilt_scale: float = 1.0
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.kind not in ESTIMATOR_KINDS:
            raise ConfigurationError(
                f"unknown estimator kind {self.kind!r}; "
                f"available: {list(ESTIMATOR_KINDS)}"
            )
        if self.ci_target is not None and not 0.0 < self.ci_target < 0.5:
            raise ConfigurationError(
                f"ci_target must be in (0, 0.5), got {self.ci_target}"
            )
        if self.batch_size < 2:
            raise ConfigurationError(
                f"batch_size must be >= 2, got {self.batch_size}"
            )
        if self.max_chips is not None and self.max_chips < 2:
            raise ConfigurationError(
                f"max_chips must be >= 2, got {self.max_chips}"
            )
        if self.pilot_chips < 8:
            raise ConfigurationError(
                f"pilot_chips must be >= 8, got {self.pilot_chips}"
            )
        if not 2 <= self.strata <= 16:
            raise ConfigurationError(
                f"strata must be in [2, 16], got {self.strata}"
            )
        if not 0.0 < self.tilt_scale <= 4.0:
            raise ConfigurationError(
                f"tilt_scale must be in (0, 4], got {self.tilt_scale}"
            )
        if round(self.confidence, 2) not in _CONFIDENCES:
            raise ConfigurationError(
                f"confidence must be one of {list(_CONFIDENCES)}, "
                f"got {self.confidence}"
            )

    # ------------------------------------------------------------------
    def identity(self) -> Dict[str, object]:
        """The spec's contribution to a content-addressed job key.

        Only the fields the chosen kind actually consumes are included,
        so e.g. changing ``strata`` never invalidates an IS estimate.
        ``fixed`` contributes just its name — a fixed estimate's key
        depends only on the population identity, exactly as before this
        layer existed.
        """
        identity: Dict[str, object] = {"kind": self.kind}
        if self.kind == "fixed":
            return identity
        identity["batch_size"] = self.batch_size
        identity["ci_target"] = self.ci_target
        identity["max_chips"] = self.max_chips
        identity["confidence"] = self.confidence
        if self.kind == "stratified":
            identity["pilot_chips"] = self.pilot_chips
            identity["strata"] = self.strata
        elif self.kind == "is":
            identity["pilot_chips"] = self.pilot_chips
            identity["tilt_scale"] = self.tilt_scale
        return identity

    @classmethod
    def from_payload(cls, payload: object) -> "EstimatorSpec":
        """Build a spec from a JSON-shaped dict (serve bodies, CLI).

        Unknown fields raise — a typoed knob must not silently select
        the default and cache the wrong identity.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError("estimator spec must be a JSON object")
        allowed = {
            "kind", "ci_target", "batch_size", "max_chips",
            "pilot_chips", "strata", "tilt_scale", "confidence",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown estimator field(s) {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        fields: Dict[str, object] = {}
        for name in allowed:
            if name in payload:
                fields[name] = payload[name]
        for name in ("batch_size", "max_chips", "pilot_chips", "strata"):
            value = fields.get(name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ConfigurationError(
                    f"estimator field {name!r} must be an integer"
                )
        for name in ("ci_target", "tilt_scale", "confidence"):
            value = fields.get(name)
            if value is not None and not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"estimator field {name!r} must be a number"
                )
        if "kind" in fields and not isinstance(fields["kind"], str):
            raise ConfigurationError("estimator field 'kind' must be a string")
        return cls(**fields)
