"""Result types of the estimator layer.

A :class:`YieldEstimate` is one figure (e.g. the regular architecture's
base yield) with its confidence interval, sample count and effective
sample size; an :class:`EstimateReport` bundles every tracked figure of
one estimation run together with the spec identity and the constraints
the chips were held against. Both are plain data with exact-float dict
codecs (:func:`estimate_to_dict` / :func:`estimate_from_dict`) so the
engine's store round-trips them bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.errors import ConfigurationError
from repro.yieldmodel.constraints import YieldConstraints

__all__ = [
    "FIGURES",
    "EstimateReport",
    "YieldEstimate",
    "estimate_from_dict",
    "estimate_to_dict",
]

#: The yield figures every estimator tracks, in report order.
FIGURES = ("regular.base", "horizontal.base")


@dataclass(frozen=True)
class YieldEstimate:
    """One estimated yield figure with its uncertainty.

    ``ess`` is the effective sample size: equal to ``samples`` for
    unweighted estimators, and ``(sum w)^2 / sum w^2`` under importance
    sampling — how many unweighted chips this weighted sample is worth.
    """

    figure: str
    estimate: float
    ci_low: float
    ci_high: float
    samples: int
    ess: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


@dataclass(frozen=True)
class EstimateReport:
    """Everything one estimation run produced."""

    kind: str
    spec: Dict[str, object]
    policy: str
    constraints: YieldConstraints
    estimates: Tuple[YieldEstimate, ...]
    samples_total: int
    batches: int
    pilot_samples: int

    def estimate_for(self, figure: str) -> YieldEstimate:
        """The estimate of one tracked figure (e.g. ``"regular.base"``)."""
        for estimate in self.estimates:
            if estimate.figure == figure:
                return estimate
        raise ConfigurationError(
            f"no estimate for figure {figure!r}; tracked: "
            f"{[e.figure for e in self.estimates]}"
        )


# ----------------------------------------------------------------------
# dict codecs (the store's JSON payload shape)
# ----------------------------------------------------------------------
def estimate_to_dict(report: EstimateReport) -> dict:
    """Flatten a report to a JSON-able dict (floats survive exactly)."""
    return {
        "kind": report.kind,
        "spec": dict(report.spec),
        "policy": report.policy,
        "constraints": {
            "delay_limit": report.constraints.delay_limit,
            "leakage_limit": report.constraints.leakage_limit,
        },
        "estimates": [
            {
                "figure": e.figure,
                "estimate": e.estimate,
                "ci_low": e.ci_low,
                "ci_high": e.ci_high,
                "samples": e.samples,
                "ess": e.ess,
            }
            for e in report.estimates
        ],
        "samples_total": report.samples_total,
        "batches": report.batches,
        "pilot_samples": report.pilot_samples,
    }


def estimate_from_dict(payload: dict) -> EstimateReport:
    """Rebuild a report from its stored payload."""
    return EstimateReport(
        kind=str(payload["kind"]),
        spec=dict(payload["spec"]),
        policy=str(payload["policy"]),
        constraints=YieldConstraints(
            delay_limit=payload["constraints"]["delay_limit"],
            leakage_limit=payload["constraints"]["leakage_limit"],
        ),
        estimates=tuple(
            YieldEstimate(
                figure=str(e["figure"]),
                estimate=float(e["estimate"]),
                ci_low=float(e["ci_low"]),
                ci_high=float(e["ci_high"]),
                samples=int(e["samples"]),
                ess=float(e["ess"]),
            )
            for e in payload["estimates"]
        ),
        samples_total=int(payload["samples_total"]),
        batches=int(payload["batches"]),
        pilot_samples=int(payload["pilot_samples"]),
    )
