"""The estimator algorithms: fixed-N, adaptive, stratified, IS.

All four produce an :class:`~repro.yieldmodel.estimators.results.EstimateReport`
tracking the base yield of both architectures. Shared discipline:

* every chip comes from a tagged ``(seed, tag, chip_id)`` stream through
  the :class:`~repro.yieldmodel.estimators.runner.BatchRunner`, so the
  numbers are bit-deterministic at any worker count;
* the ``"chip"`` tag is the reference population's own stream — pilots
  and adaptive batches are literal prefixes of the brute-force
  population;
* the constraint limits are population-derived (mean + k·sigma), so the
  fixed and adaptive estimators re-derive them over their cumulative
  sample, while the stratified and IS estimators freeze them from their
  pilot (a weighted/conditioned sample cannot re-derive nominal
  population moments) — the yields they estimate are yields *given*
  those pilot limits, which agree with the brute-force limits to within
  pilot sampling error.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.yieldmodel.constraints import ConstraintPolicy, YieldConstraints
from repro.yieldmodel.estimators.results import (
    EstimateReport,
    FIGURES,
    YieldEstimate,
)
from repro.yieldmodel.estimators.runner import BatchRunner, ShardData
from repro.yieldmodel.estimators.sampling import NUM_DIE_PARAMS
from repro.yieldmodel.estimators.spec import ESTIMATOR_KINDS, EstimatorSpec
from repro.yieldmodel.statistics import wilson_interval, z_score

__all__ = [
    "ESTIMATOR_KINDS",
    "estimate_adaptive",
    "estimate_fixed",
    "estimate_is",
    "estimate_stratified",
    "neyman_allocation",
    "run_estimate",
]

#: Largest |component| the IS mean shift may take: a tilt beyond two
#: sigma starves the nominal bulk and explodes weight variance.
_MAX_TILT = 2.0

#: Pilot-score quantile above which a passing chip still counts as
#: "near-limit" for the tilt direction.
_NEAR_LIMIT_QUANTILE = 0.9


def _passes(circuit, constraints: YieldConstraints) -> bool:
    """Does this chip ship? (mirrors ``ChipCase.passes`` arithmetic)."""
    if circuit.total_leakage > constraints.leakage_limit:
        return False
    for delay in circuit.way_delays:
        if delay > constraints.delay_limit:
            return False
    return True


def _derive(policy: ConstraintPolicy, circuits) -> YieldConstraints:
    return policy.derive(
        [c.access_delay for c in circuits],
        [c.total_leakage for c in circuits],
    )


def _figure_circuits(data: ShardData) -> List[Tuple[str, list]]:
    return [(FIGURES[0], data.regular), (FIGURES[1], data.horizontal)]


def _wilson_estimates(
    data: ShardData, constraints: YieldConstraints, confidence: float
) -> Tuple[YieldEstimate, ...]:
    estimates = []
    total = data.count
    for figure, circuits in _figure_circuits(data):
        ships = sum(1 for c in circuits if _passes(c, constraints))
        low, high = wilson_interval(ships, total, confidence)
        estimates.append(
            YieldEstimate(
                figure=figure,
                estimate=ships / total,
                ci_low=low,
                ci_high=high,
                samples=total,
                ess=float(total),
            )
        )
    return tuple(estimates)


def _max_halfwidth(estimates: Sequence[YieldEstimate]) -> float:
    return max(e.ci_halfwidth for e in estimates)


# ----------------------------------------------------------------------
# fixed-N (the legacy reference)
# ----------------------------------------------------------------------
def estimate_fixed(
    runner: BatchRunner,
    spec: EstimatorSpec,
    seed: int,
    chips: int,
    policy: ConstraintPolicy,
) -> EstimateReport:
    """Brute-force Monte Carlo over the full population, Wilson CIs."""
    total = spec.max_chips if spec.max_chips is not None else chips
    data = runner.run(seed, "chip", 0, total)
    constraints = _derive(policy, data.regular)
    return EstimateReport(
        kind="fixed",
        spec=spec.identity(),
        policy=policy.name,
        constraints=constraints,
        estimates=_wilson_estimates(data, constraints, spec.confidence),
        samples_total=total,
        batches=1,
        pilot_samples=0,
    )


# ----------------------------------------------------------------------
# adaptive sequential
# ----------------------------------------------------------------------
def estimate_adaptive(
    runner: BatchRunner,
    spec: EstimatorSpec,
    seed: int,
    chips: int,
    policy: ConstraintPolicy,
) -> EstimateReport:
    """Sequential batches of the reference stream with CI-driven stopping.

    Limits are re-derived over the cumulative population after every
    batch (they are population statistics), so at any stopping point N
    the estimate equals exactly what ``fixed`` with N chips would
    report. Without a ``ci_target`` the estimator runs to its cap — the
    legacy fixed-N behaviour.
    """
    cap = spec.max_chips if spec.max_chips is not None else chips
    data = ShardData([], [], [])
    batches = 0
    estimates: Tuple[YieldEstimate, ...] = ()
    constraints: Optional[YieldConstraints] = None
    while True:
        take = min(spec.batch_size, cap - data.count)
        batch = runner.run(seed, "chip", data.count, data.count + take)
        data.extend(batch)
        batches += 1
        constraints = _derive(policy, data.regular)
        estimates = _wilson_estimates(data, constraints, spec.confidence)
        if data.count >= cap:
            break
        if (
            spec.ci_target is not None
            and _max_halfwidth(estimates) <= spec.ci_target
        ):
            break
    return EstimateReport(
        kind="adaptive",
        spec=spec.identity(),
        policy=policy.name,
        constraints=constraints,
        estimates=estimates,
        samples_total=data.count,
        batches=batches,
        pilot_samples=0,
    )


# ----------------------------------------------------------------------
# stratified with Neyman allocation
# ----------------------------------------------------------------------
def neyman_allocation(
    weights: Sequence[float],
    sigmas: Sequence[float],
    total: int,
    floor: int = 0,
) -> List[int]:
    """Allocate ``total`` samples across strata, n_h proportional to w_h·s_h.

    Deterministic largest-remainder rounding: the result always sums to
    ``total`` exactly, every stratum gets at least ``floor``, and ties
    break by stratum index. All-zero scores degrade to an equal split.
    """
    strata = len(weights)
    if strata == 0:
        raise ConfigurationError("need at least one stratum")
    if len(sigmas) != strata:
        raise ConfigurationError("weights and sigmas must align")
    if floor < 0:
        raise ConfigurationError(f"floor must be >= 0, got {floor}")
    if total < strata * floor:
        raise ConfigurationError(
            f"cannot allocate {total} samples with a per-stratum floor of "
            f"{floor} over {strata} strata"
        )
    scores = [
        max(0.0, float(w)) * max(0.0, float(s))
        for w, s in zip(weights, sigmas)
    ]
    if not any(scores):
        scores = [1.0] * strata
    spendable = total - strata * floor
    score_sum = sum(scores)
    raw = [spendable * score / score_sum for score in scores]
    alloc = [floor + int(math.floor(r)) for r in raw]
    remaining = total - sum(alloc)
    by_remainder = sorted(
        range(strata), key=lambda h: (-(raw[h] - math.floor(raw[h])), h)
    )
    for i in range(remaining):
        alloc[by_remainder[i % strata]] += 1
    return alloc


def _shrunk(fails: int, drawn: int) -> float:
    """Shrunk failure probability (never exactly 0 or 1).

    Used for variance terms and allocation scores: an all-pass stratum
    must keep a nonzero variance floor, or its CI collapses to a point
    and the allocator starves it forever.
    """
    return (fails + 0.5) / (drawn + 1.0)


def estimate_stratified(
    runner: BatchRunner,
    spec: EstimatorSpec,
    seed: int,
    chips: int,
    policy: ConstraintPolicy,
) -> EstimateReport:
    """Equiprobable VT strata, pilot-sized by Neyman allocation.

    The die-level threshold-voltage draw is partitioned into ``K``
    equiprobable strata via the measure-preserving probability
    transform; per-stratum yields recombine with exact ``1/K`` weights.
    A balanced pilot (the same chip count in every stratum *is* a valid
    population sample) derives the frozen limits and seeds the
    per-stratum variance estimates that drive each round's allocation.
    """
    strata = spec.strata
    weight = 1.0 / strata
    z = z_score(spec.confidence)
    cap = spec.max_chips if spec.max_chips is not None else chips
    pilot_each = max(4, spec.pilot_chips // strata)
    if cap < strata * pilot_each + strata:
        raise ConfigurationError(
            f"sample cap {cap} leaves no room beyond the "
            f"{strata}x{pilot_each}-chip stratified pilot"
        )

    pilot_batches = [
        runner.run(
            seed, f"s{h}-chip", 0, pilot_each, stratum=(h, strata)
        )
        for h in range(strata)
    ]
    constraints = policy.derive(
        [c.access_delay for b in pilot_batches for c in b.regular],
        [c.total_leakage for b in pilot_batches for c in b.regular],
    )
    drawn = [pilot_each] * strata
    fails: Dict[str, List[int]] = {figure: [0] * strata for figure in FIGURES}
    for h, batch in enumerate(pilot_batches):
        for figure, circuits in _figure_circuits(batch):
            fails[figure][h] = sum(
                1 for c in circuits if not _passes(c, constraints)
            )
    total = strata * pilot_each
    batches = 1

    def halfwidth(figure: str) -> float:
        variance = sum(
            weight * weight * _shrunk(fails[figure][h], drawn[h])
            * (1.0 - _shrunk(fails[figure][h], drawn[h])) / drawn[h]
            for h in range(strata)
        )
        return z * math.sqrt(variance)

    while total < cap:
        if spec.ci_target is not None and all(
            halfwidth(figure) <= spec.ci_target for figure in FIGURES
        ):
            break
        budget = min(spec.batch_size, cap - total)
        sigmas = [
            max(
                math.sqrt(
                    _shrunk(fails[figure][h], drawn[h])
                    * (1.0 - _shrunk(fails[figure][h], drawn[h]))
                )
                for figure in FIGURES
            )
            for h in range(strata)
        ]
        allocation = neyman_allocation([weight] * strata, sigmas, budget)
        for h, extra in enumerate(allocation):
            if extra <= 0:
                continue
            batch = runner.run(
                seed, f"s{h}-chip", drawn[h], drawn[h] + extra,
                stratum=(h, strata),
            )
            for figure, circuits in _figure_circuits(batch):
                fails[figure][h] += sum(
                    1 for c in circuits if not _passes(c, constraints)
                )
            drawn[h] += extra
        total += budget
        batches += 1

    estimates = []
    for figure in FIGURES:
        loss = sum(
            weight * fails[figure][h] / drawn[h] for h in range(strata)
        )
        value = 1.0 - loss
        half = halfwidth(figure)
        estimates.append(
            YieldEstimate(
                figure=figure,
                estimate=value,
                ci_low=max(0.0, value - half),
                ci_high=min(1.0, value + half),
                samples=total,
                ess=float(total),
            )
        )
    return EstimateReport(
        kind="stratified",
        spec=spec.identity(),
        policy=policy.name,
        constraints=constraints,
        estimates=tuple(estimates),
        samples_total=total,
        batches=batches,
        pilot_samples=strata * pilot_each,
    )


# ----------------------------------------------------------------------
# importance sampling (mean-shift tilt, exact likelihood ratios)
# ----------------------------------------------------------------------
def _tilt_from_pilot(
    pilot: ShardData, constraints: YieldConstraints, tilt_scale: float
) -> List[float]:
    """Mean shift toward the limit surfaces, from the pilot's worst chips.

    Selects every failing chip (either architecture) plus the passing
    chips nearest the limits (top decile of max(delay, leakage) limit
    utilisation), then points the tilt at their average die-level z.
    """
    scores = [
        max(
            c.access_delay / constraints.delay_limit,
            c.total_leakage / constraints.leakage_limit,
        )
        for c in pilot.regular
    ]
    count = len(scores)
    threshold = sorted(scores)[
        min(count - 1, int(math.floor(_NEAR_LIMIT_QUANTILE * (count - 1))))
    ]
    selected = [
        i
        for i in range(count)
        if not _passes(pilot.regular[i], constraints)
        or not _passes(pilot.horizontal[i], constraints)
        or scores[i] >= threshold
    ]
    tilt = []
    for j in range(NUM_DIE_PARAMS):
        mean = sum(pilot.die_z[i][j] for i in selected) / len(selected)
        tilt.append(max(-_MAX_TILT, min(_MAX_TILT, tilt_scale * mean)))
    return tilt


def _mean_halfwidth(values: Sequence[float], z: float) -> float:
    count = len(values)
    if count < 2:
        return math.inf
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    return z * math.sqrt(variance / count)


def estimate_is(
    runner: BatchRunner,
    spec: EstimatorSpec,
    seed: int,
    chips: int,
    policy: ConstraintPolicy,
) -> EstimateReport:
    """Importance sampling with a pilot-calibrated mean-shift tilt.

    A nominal pilot derives the limits and the tilt direction; the main
    stream draws die-level z from N(theta, I) instead of N(0, I) and
    reweights each chip by the exact likelihood ratio
    ``w = exp(sum_j theta_j^2/2 - theta_j z'_j)`` computed on the raw
    columns. The failure-probability estimator ``mean(w * 1[fail])`` is
    unbiased for the nominal-measure failure rate — the clip and every
    downstream transform are deterministic functions applied identically
    under both measures.
    """
    z = z_score(spec.confidence)
    cap = spec.max_chips if spec.max_chips is not None else chips
    pilot_n = spec.pilot_chips
    if cap <= pilot_n + 1:
        raise ConfigurationError(
            f"sample cap {cap} leaves no room beyond the "
            f"{pilot_n}-chip IS pilot"
        )
    pilot = runner.run(seed, "chip", 0, pilot_n)
    constraints = _derive(policy, pilot.regular)
    tilt = _tilt_from_pilot(pilot, constraints, spec.tilt_scale)

    weights: List[float] = []
    values: Dict[str, List[float]] = {figure: [] for figure in FIGURES}
    drawn = 0
    batches = 1  # the pilot
    while True:
        take = min(spec.batch_size, cap - pilot_n - drawn)
        batch = runner.run(seed, "is-chip", drawn, drawn + take, shift=tilt)
        for reg, hor, die_z in zip(
            batch.regular, batch.horizontal, batch.die_z
        ):
            log_w = sum(
                t * t / 2.0 - t * zj for t, zj in zip(tilt, die_z)
            )
            w = math.exp(log_w)
            weights.append(w)
            values[FIGURES[0]].append(
                0.0 if _passes(reg, constraints) else w
            )
            values[FIGURES[1]].append(
                0.0 if _passes(hor, constraints) else w
            )
        drawn += take
        batches += 1
        if pilot_n + drawn >= cap:
            break
        if spec.ci_target is not None and all(
            _mean_halfwidth(values[figure], z) <= spec.ci_target
            for figure in FIGURES
        ):
            break

    weight_sum = sum(weights)
    weight_sq_sum = sum(w * w for w in weights)
    ess = (
        weight_sum * weight_sum / weight_sq_sum if weight_sq_sum > 0 else 0.0
    )
    samples = pilot_n + drawn
    estimates = []
    for figure in FIGURES:
        loss = sum(values[figure]) / drawn
        value = min(1.0, max(0.0, 1.0 - loss))
        half = _mean_halfwidth(values[figure], z)
        estimates.append(
            YieldEstimate(
                figure=figure,
                estimate=value,
                ci_low=max(0.0, value - half),
                ci_high=min(1.0, value + half),
                samples=samples,
                ess=ess,
            )
        )
    return EstimateReport(
        kind="is",
        spec=spec.identity(),
        policy=policy.name,
        constraints=constraints,
        estimates=tuple(estimates),
        samples_total=samples,
        batches=batches,
        pilot_samples=pilot_n,
    )


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
_ESTIMATORS = {
    "fixed": estimate_fixed,
    "adaptive": estimate_adaptive,
    "stratified": estimate_stratified,
    "is": estimate_is,
}


def run_estimate(
    runner: BatchRunner,
    spec: EstimatorSpec,
    seed: int,
    chips: int,
    policy: ConstraintPolicy,
) -> EstimateReport:
    """Run the estimator ``spec`` selects (the engine's entry point)."""
    if chips < 2:
        raise ConfigurationError(
            f"need at least two chips to estimate yield, got {chips}"
        )
    return _ESTIMATORS[spec.kind](runner, spec, seed, chips, policy)
