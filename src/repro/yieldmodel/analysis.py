"""Population yield analysis (paper Section 5.1, Tables 2-5, Figure 8).

:class:`YieldStudy` runs the full pipeline once per experiment seed:

1. draw ``count`` manufactured caches (Monte Carlo over the correlated
   process parameters),
2. evaluate each with the regular-organisation circuit model *and* the
   H-YAPD-organisation model (same variation map — the paper applies the
   same process parameters to both architectures),
3. derive the delay/leakage limits from the regular population with the
   chosen constraint policy (the delay limit is a design constraint, so
   the H-YAPD architecture is held to the same absolute limits),
4. classify every chip and apply any number of schemes.

The result object knows how to produce the paper's loss-breakdown tables
(Tables 2/3), the relaxed/strict totals (Tables 4/5), the Figure 8
scatter, and the Table 6 configuration census.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.cache_model import CacheCircuitModel, CacheCircuitResult
from repro.circuit.columnar import CircuitColumns, evaluate_population_pair
from repro.circuit.organization import CacheOrganization, PAPER_ORGANIZATION
from repro.circuit.technology import Technology, TECH45
from repro.core.errors import ConfigurationError
from repro.core.validation import require_positive
from repro.variation.columnar import ColumnarPopulationSampler, columnar_enabled
from repro.variation.montecarlo import PAPER_POPULATION
from repro.variation.sampling import CacheVariationSampler
from repro.yieldmodel.classify import (
    ChipCase,
    LossReason,
    config_keys_columns,
    loss_census_columns,
    loss_codes_columns,
    way_cycles_columns,
)
from repro.yieldmodel.constraints import (
    ConstraintPolicy,
    NOMINAL_POLICY,
    YieldConstraints,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.schemes.base import RescueOutcome, Scheme

__all__ = [
    "LossBreakdown",
    "PopulationResult",
    "YieldStudy",
    "ColumnarClassification",
    "classify_population_columns",
]

#: Order in which loss reasons appear in the paper's tables. The 5-8 way
#: buckets only occur for higher-associativity organisations; rows() hides
#: them when empty so the paper's 4-way tables keep the paper's shape.
LOSS_ROW_ORDER: Tuple[LossReason, ...] = (
    LossReason.LEAKAGE,
    LossReason.DELAY_1,
    LossReason.DELAY_2,
    LossReason.DELAY_3,
    LossReason.DELAY_4,
    LossReason.DELAY_5,
    LossReason.DELAY_6,
    LossReason.DELAY_7,
    LossReason.DELAY_8,
)

#: Rows always shown, even when zero (the paper's table shape).
_CANONICAL_ROWS = LOSS_ROW_ORDER[:5]


@dataclass
class LossBreakdown:
    """One scheme-comparison table (the shape of the paper's Tables 2/3).

    Attributes
    ----------
    base_counts:
        Failing chips per loss reason before any scheme.
    scheme_losses:
        Residual losses per scheme name, per loss reason.
    population:
        Total number of chips simulated.
    """

    base_counts: Dict[LossReason, int]
    scheme_losses: Dict[str, Dict[LossReason, int]]
    population: int

    @property
    def base_total(self) -> int:
        """Total failing chips before any scheme."""
        return sum(self.base_counts.values())

    def scheme_total(self, scheme: str) -> int:
        """Total residual losses of ``scheme``."""
        return sum(self.scheme_losses[scheme].values())

    def loss_reduction(self, scheme: str) -> float:
        """Fractional reduction in yield loss achieved by ``scheme``."""
        base = self.base_total
        if base == 0:
            return 0.0
        return 1.0 - self.scheme_total(scheme) / base

    def yield_with(self, scheme: Optional[str] = None) -> float:
        """Overall yield, optionally after applying ``scheme``.

        An empty population has no shippable chips: yield is 0.0, not a
        division error (empty breakdowns reach here through zero-chip
        filter views).
        """
        if self.population == 0:
            return 0.0
        losses = self.base_total if scheme is None else self.scheme_total(scheme)
        return 1.0 - losses / self.population

    def rows(self) -> List[Tuple[LossReason, int, Dict[str, int]]]:
        """Table rows: (reason, base count, per-scheme residual losses).

        The paper's five rows always appear; the extra high-associativity
        buckets appear only when populated.
        """
        out = []
        for reason in LOSS_ROW_ORDER:
            base = self.base_counts.get(reason, 0)
            if base == 0 and reason not in _CANONICAL_ROWS:
                continue
            out.append(
                (
                    reason,
                    base,
                    {
                        name: losses.get(reason, 0)
                        for name, losses in self.scheme_losses.items()
                    },
                )
            )
        return out


#: Cap on distinct ``{arch}.{label}`` gauge series minted by
#: :func:`_emit_estimator_gauges` over a process lifetime. Scheme names
#: are caller-supplied, so a long-lived serve process evaluating
#: ad-hoc scheme sets could otherwise mint unbounded series — the same
#: hazard ``RequestRollup`` bounds by collapsing unknown paths into
#: ``<other>``. 32 covers the paper's scheme vocabulary many times over.
_GAUGE_SERIES_CAP = 32

_gauge_series_seen: set = set()
_gauge_series_lock = threading.Lock()


def _gauge_series_label(arch: str, name: str) -> str:
    """Admit ``{arch}.{name}`` as a gauge series, or collapse it.

    First-come-first-served up to :data:`_GAUGE_SERIES_CAP` distinct
    labels; everything past the cap lands on ``{arch}.<other>`` (the
    overflow series itself is pre-admitted so it never consumes the
    budget). Keeps ``/metrics`` output bounded no matter what scheme
    names flow through breakdowns.
    """
    key = f"{arch}.{name}"
    with _gauge_series_lock:
        if key in _gauge_series_seen:
            return key
        if len(_gauge_series_seen) < _GAUGE_SERIES_CAP:
            _gauge_series_seen.add(key)
            return key
    return f"{arch}.<other>"


def _emit_estimator_gauges(breakdown: LossBreakdown, horizontal: bool) -> None:
    """Publish estimator-quality gauges for one loss breakdown.

    Every breakdown is a set of binomial yield estimates (base and one
    per scheme); alongside each point estimate we publish its 95% Wilson
    CI half-width and the sample count, so statistical efficiency —
    "how many chips bought how tight an interval" — is visible on
    ``/metrics`` and the live dashboard, not just in offline reports
    (ROADMAP: report estimator variance alongside yield). Series labels
    are capped via :func:`_gauge_series_label`.
    """
    from repro.obs.metrics import get_metrics
    from repro.yieldmodel.statistics import wilson_interval

    total = breakdown.population
    if total <= 0:
        return
    registry = get_metrics()
    arch = "horizontal" if horizontal else "regular"
    targets = [("base", breakdown.base_total)]
    targets.extend(
        (name, breakdown.scheme_total(name))
        for name in breakdown.scheme_losses
    )
    for name, losses in targets:
        ships = total - losses
        low, high = wilson_interval(ships, total)
        key = _gauge_series_label(arch, name)
        registry.gauge(f"yield.estimate.{key}").set(ships / total)
        registry.gauge(f"yield.ci_halfwidth.{key}").set((high - low) / 2.0)
        registry.gauge(f"yield.samples.{key}").set(total)


@dataclass
class PopulationResult:
    """All per-chip cases of one Monte Carlo population."""

    constraints: YieldConstraints
    cases: List[ChipCase]
    h_cases: List[ChipCase]
    policy: ConstraintPolicy = NOMINAL_POLICY

    @property
    def population(self) -> int:
        return len(self.cases)

    def select(self, horizontal: bool) -> List[ChipCase]:
        """The regular- or H-YAPD-architecture cases."""
        return self.h_cases if horizontal else self.cases

    def reconstrained(self, policy: ConstraintPolicy) -> "PopulationResult":
        """Re-derive limits under another policy over the *same* chips.

        Tables 4 and 5 change the constraints without re-manufacturing
        the population; limits are always derived from the regular
        architecture's delays (the design constraint both architectures
        are held to).
        """
        constraints = policy.derive(
            [case.circuit.access_delay for case in self.cases],
            [case.circuit.total_leakage for case in self.cases],
        )
        return PopulationResult(
            constraints=constraints,
            cases=[
                ChipCase(circuit=case.circuit, constraints=constraints)
                for case in self.cases
            ],
            h_cases=[
                ChipCase(circuit=case.circuit, constraints=constraints)
                for case in self.h_cases
            ],
            policy=policy,
        )

    # ------------------------------------------------------------------
    def apply_scheme(
        self, scheme: "Scheme", horizontal: bool = False
    ) -> List["RescueOutcome"]:
        """Run ``scheme`` over every chip of the chosen architecture."""
        return [scheme.rescue(case) for case in self.select(horizontal)]

    def breakdown(
        self,
        schemes: Sequence["Scheme"],
        horizontal: bool = False,
    ) -> LossBreakdown:
        """Build a Tables 2/3-style loss breakdown for ``schemes``."""
        cases = self.select(horizontal)
        base_counts: Dict[LossReason, int] = {}
        for case in cases:
            reason = case.loss_reason
            if reason.is_loss:
                base_counts[reason] = base_counts.get(reason, 0) + 1

        scheme_losses: Dict[str, Dict[LossReason, int]] = {}
        for scheme in schemes:
            losses: Dict[LossReason, int] = {}
            for case in cases:
                reason = case.loss_reason
                if not reason.is_loss:
                    continue
                if not scheme.rescue(case).saved:
                    losses[reason] = losses.get(reason, 0) + 1
            scheme_losses[scheme.name] = losses
        result = LossBreakdown(
            base_counts=base_counts,
            scheme_losses=scheme_losses,
            population=len(cases),
        )
        _emit_estimator_gauges(result, horizontal)
        return result

    def configuration_census(
        self, scheme: "Scheme", horizontal: bool = False
    ) -> Dict[str, int]:
        """Count saved-from-loss chips per Table 6 configuration key.

        Only chips converted from yield loss to yield gain are counted
        (chips that pass outright never engage a scheme).
        """
        census: Dict[str, int] = {}
        for case in self.select(horizontal):
            if case.passes:
                continue
            outcome = scheme.rescue(case)
            if outcome.saved:
                census[outcome.configuration] = (
                    census.get(outcome.configuration, 0) + 1
                )
        return census

    def scatter(
        self, horizontal: bool = False
    ) -> Tuple[List[float], List[float]]:
        """Figure 8 data: (normalized leakage, access delay in seconds).

        Leakage is normalized to the population average, matching the
        paper's "normalized leakage power" axis.
        """
        cases = self.select(horizontal)
        leakages = [case.circuit.total_leakage for case in cases]
        mean = sum(leakages) / len(leakages)
        delays = [case.circuit.access_delay for case in cases]
        return [leak / mean for leak in leakages], delays


@dataclass(frozen=True)
class ColumnarClassification:
    """Column-wise yield classification of one population.

    The array counterpart of a list of :class:`ChipCase`\\ s: per-way
    cycle counts, per-chip loss codes (see
    :func:`~repro.yieldmodel.classify.loss_codes_columns`), and the
    population delays/leakages the limits were held against. Every
    derived number matches the per-case classification bit for bit
    (asserted by the columnar differential battery).
    """

    constraints: YieldConstraints
    way_cycles: np.ndarray  # (chips, ways) int
    loss_codes: np.ndarray  # (chips,) int
    access_delays: np.ndarray  # (chips,) float
    total_leakages: np.ndarray  # (chips,) float

    @property
    def population(self) -> int:
        return int(self.loss_codes.shape[0])

    def loss_census(self) -> Dict[LossReason, int]:
        """Failing chips per loss reason — ``LossBreakdown.base_counts``."""
        return loss_census_columns(self.loss_codes)

    def yield_fraction(self) -> float:
        """Overall yield — ``LossBreakdown.yield_with(None)``."""
        losses = int(np.count_nonzero(self.loss_codes))
        return 1.0 - losses / self.population

    def configuration_keys(self) -> List[str]:
        """Per-chip Table 6 keys — ``ChipCase.configuration`` columns."""
        return config_keys_columns(self.way_cycles)

    def scatter(self) -> Tuple[List[float], List[float]]:
        """Figure 8 data, identical to :meth:`PopulationResult.scatter`."""
        leakages = self.total_leakages.tolist()
        mean = sum(leakages) / len(leakages)
        return [leak / mean for leak in leakages], self.access_delays.tolist()


def classify_population_columns(
    columns: CircuitColumns,
    policy: ConstraintPolicy = NOMINAL_POLICY,
    constraints: Optional[YieldConstraints] = None,
    delay_scale: float = 1.0,
) -> ColumnarClassification:
    """Classify a whole evaluated population column-wise.

    The column mirror of :meth:`YieldStudy.assemble` plus per-case
    classification: derive limits with ``policy`` over these columns
    (unless explicit ``constraints`` are given — pass the regular
    architecture's limits when classifying H-YAPD columns, since both
    architectures are held to the limits derived from the regular
    population), then bucket every chip. The limit derivation feeds
    ``policy.derive`` plain Python floats, so the limits equal the
    per-case path's exactly.
    """
    way_delays = columns.way_delays(delay_scale)
    access_delays = columns.access_delays(delay_scale)
    leakages = columns.total_leakage()
    if constraints is None:
        constraints = policy.derive(access_delays.tolist(), leakages.tolist())
    return ColumnarClassification(
        constraints=constraints,
        way_cycles=way_cycles_columns(way_delays, constraints),
        loss_codes=loss_codes_columns(way_delays, leakages, constraints),
        access_delays=access_delays,
        total_leakages=leakages,
    )


@dataclass
class YieldStudy:
    """End-to-end Monte Carlo yield study.

    Parameters
    ----------
    seed:
        Experiment seed (chips are reproducible per seed).
    count:
        Population size (the paper uses 2000).
    policy:
        Constraint policy used to derive limits from the population.
    tech, organization:
        Circuit model inputs.
    sampler:
        Variation sampler; defaults to the paper's Table 1 / correlation
        factor configuration.
    """

    seed: int = 2006
    count: int = PAPER_POPULATION
    policy: ConstraintPolicy = NOMINAL_POLICY
    tech: Technology = TECH45
    organization: CacheOrganization = PAPER_ORGANIZATION
    sampler: CacheVariationSampler = field(default_factory=CacheVariationSampler)

    def __post_init__(self) -> None:
        require_positive(self.count, "count")

    def _columnar_sampler(self) -> Optional[ColumnarPopulationSampler]:
        """The columnar fast-path sampler, or None when unavailable.

        The fast path requires the stock sampler type (a subclass could
        override the draw procedure the columnar sampler mirrors) and a
        non-degenerate table (see
        :attr:`ColumnarPopulationSampler.supported`). Built lazily and
        cached on the study; the ``REPRO_COLUMNAR`` switch is checked at
        call time so flipping it between runs takes effect.
        """
        cached = self.__dict__.get("_columnar_cache", False)
        if cached is not False:
            return cached
        columnar: Optional[ColumnarPopulationSampler] = None
        if type(self.sampler) is CacheVariationSampler:
            candidate = ColumnarPopulationSampler(self.sampler)
            if candidate.supported:
                columnar = candidate
        self.__dict__["_columnar_cache"] = columnar
        return columnar

    def evaluate_chips(
        self, start: int, stop: int
    ) -> Tuple[List["CacheCircuitResult"], List["CacheCircuitResult"]]:
        """Evaluate chip ids ``[start, stop)`` under both architectures.

        This is the shardable half of :meth:`run`: each chip's RNG stream
        is derived from ``(seed, chip_id)`` alone, so disjoint id ranges
        can be evaluated in any order — or in parallel processes — and
        concatenated into the exact serial population.

        When the columnar fast path applies (stock sampler, positive
        sigmas, ``REPRO_COLUMNAR`` not 0) the range is sampled and
        evaluated as whole-population arrays instead of chip by chip —
        same results bit for bit, so callers (and the engine's result
        store) cannot tell the paths apart.
        """
        if not 0 <= start <= stop:
            raise ConfigurationError(
                f"invalid chip range [{start}, {stop})"
            )
        regular_model = CacheCircuitModel(
            tech=self.tech, org=self.organization, hyapd=False
        )
        hyapd_model = CacheCircuitModel(
            tech=self.tech, org=self.organization, hyapd=True
        )
        if columnar_enabled():
            columnar = self._columnar_sampler()
            if columnar is not None:
                population = columnar.sample_range(self.seed, start, stop)
                return evaluate_population_pair(
                    regular_model, hyapd_model, population
                )
        regular = []
        horizontal = []
        for chip_id in range(start, stop):
            cvmap = self.sampler.sample_chip(self.seed, chip_id)
            reg_result, hyapd_result = regular_model.evaluate_pair(
                hyapd_model, cvmap
            )
            regular.append(reg_result)
            horizontal.append(hyapd_result)
        return regular, horizontal

    def assemble(
        self,
        regular: List["CacheCircuitResult"],
        horizontal: List["CacheCircuitResult"],
    ) -> PopulationResult:
        """Derive limits over the full population and classify every chip.

        ``regular``/``horizontal`` are the concatenated shard outputs of
        :meth:`evaluate_chips` in chip-id order. Limits always come from
        the complete regular population (never per shard), so assembly is
        independent of how the evaluation was split.
        """
        if len(regular) != len(horizontal):
            raise ConfigurationError(
                "regular and horizontal populations differ in size"
            )
        constraints = self.policy.derive(
            [r.access_delay for r in regular],
            [r.total_leakage for r in regular],
        )
        return PopulationResult(
            constraints=constraints,
            cases=[ChipCase(circuit=r, constraints=constraints) for r in regular],
            h_cases=[
                ChipCase(circuit=h, constraints=constraints) for h in horizontal
            ],
            policy=self.policy,
        )

    def run(self) -> PopulationResult:
        """Sample, evaluate both architectures, derive limits, classify."""
        return self.assemble(*self.evaluate_chips(0, self.count))
