"""Parametric yield modelling (paper Section 5.1).

The paper estimates yield by Monte Carlo: simulate 2000 manufactured
caches, set a delay limit (mean + sigma of the population's access delay,
following Rao et al.) and a leakage limit (3x the population's average
leakage), and classify every chip that violates either as parametric yield
loss. The yield-aware schemes then try to *rescue* failing chips, and the
residual losses are tabulated by the reason of loss.

* :mod:`repro.yieldmodel.constraints` — limit policies (nominal, relaxed,
  strict) and the delay -> access-cycles mapping.
* :mod:`repro.yieldmodel.classify` — per-chip case records and loss
  classification.
* :mod:`repro.yieldmodel.analysis` — the population study that regenerates
  Tables 2-5 and Figure 8.
"""

from repro.yieldmodel.constraints import (
    ConstraintPolicy,
    YieldConstraints,
    NOMINAL_POLICY,
    RELAXED_POLICY,
    STRICT_POLICY,
    BASE_ACCESS_CYCLES,
)
from repro.yieldmodel.classify import ChipCase, LossReason, config_key
from repro.yieldmodel.analysis import (
    LossBreakdown,
    PopulationResult,
    YieldStudy,
)
from repro.yieldmodel.statistics import (
    bootstrap_interval,
    loss_reduction_interval,
    scheme_yield_interval,
    wilson_interval,
)

__all__ = [
    "ConstraintPolicy",
    "YieldConstraints",
    "NOMINAL_POLICY",
    "RELAXED_POLICY",
    "STRICT_POLICY",
    "BASE_ACCESS_CYCLES",
    "ChipCase",
    "LossReason",
    "config_key",
    "LossBreakdown",
    "PopulationResult",
    "YieldStudy",
    "wilson_interval",
    "bootstrap_interval",
    "scheme_yield_interval",
    "loss_reduction_interval",
]
