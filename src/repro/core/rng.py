"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (Monte Carlo process
variation, workload trace synthesis, replacement tie-breaking) draws from a
:class:`RandomSource` derived from a single experiment seed, so that every
table and figure regenerates bit-identically. Seeds for sub-components are
derived from the parent seed and a string label, which keeps results stable
when unrelated components are added or removed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn", "RandomSource"]

_SEED_MASK = (1 << 63) - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a string ``label``.

    The derivation is a SHA-256 hash, so children with different labels are
    statistically independent and insertion order of siblings is irrelevant.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _SEED_MASK


def spawn(parent_seed: int, label: str) -> np.random.Generator:
    """Create a NumPy generator seeded from ``parent_seed`` and ``label``."""
    return np.random.default_rng(derive_seed(parent_seed, label))


class RandomSource:
    """A labelled tree of deterministic random generators.

    Parameters
    ----------
    seed:
        Root seed for this source.
    label:
        Human-readable label, recorded for diagnostics.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = int(seed)
        self.label = label
        self.generator = np.random.default_rng(self.seed)

    def child(self, label: str) -> "RandomSource":
        """Create an independent child source identified by ``label``."""
        return RandomSource(derive_seed(self.seed, label), f"{self.label}/{label}")

    def normal(self, mean: float, sigma: float) -> float:
        """Draw a single normal variate."""
        return float(self.generator.normal(mean, sigma))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a single uniform variate."""
        return float(self.generator.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """Draw a single integer in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed}, label={self.label!r})"
