"""Small validation helpers shared by configuration dataclasses."""

from __future__ import annotations

import os

from repro.core.errors import ConfigurationError

__all__ = [
    "env_int",
    "env_positive_int",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_power_of_two",
    "require_divides",
]


def env_int(name: str, default: int) -> int:
    """Integer environment variable ``name``, or ``default`` when unset.

    Raises :class:`ConfigurationError` naming the variable when the value
    is not a valid integer, instead of a bare ``ValueError``.
    """
    value = os.environ.get(name)
    if not value:
        return default
    try:
        return int(value)
    except ValueError:
        raise ConfigurationError(
            f"environment variable {name} must be an integer, got {value!r}"
        ) from None


def env_positive_int(name: str, default: int) -> int:
    """Like :func:`env_int`, but the value must be strictly positive.

    A zero or negative value raises :class:`ConfigurationError` naming
    the environment variable, so a bad ``REPRO_WORKERS=0`` fails at
    configuration time with an actionable message instead of surfacing
    later as an opaque pool error.
    """
    value = env_int(name, default)
    if value <= 0:
        raise ConfigurationError(
            f"environment variable {name} must be > 0, got {value}"
        )
    return value


def require_positive(value: float, name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is >= 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Raise unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_power_of_two(value: int, name: str) -> None:
    """Raise unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")


def require_divides(divisor: int, dividend: int, name: str) -> None:
    """Raise unless ``divisor`` evenly divides ``dividend``."""
    if divisor <= 0 or dividend % divisor:
        raise ConfigurationError(
            f"{name}: {divisor} must evenly divide {dividend}"
        )
