"""Shared primitives used across the reproduction.

This subpackage deliberately contains no domain logic: it provides the
exception hierarchy, unit constants, deterministic RNG plumbing and small
validation helpers that every other subpackage builds on.
"""

from repro.core.errors import (
    ReproError,
    ConfigurationError,
    CalibrationError,
    SimulationError,
    TraceError,
)
from repro.core.rng import RandomSource, derive_seed, spawn
from repro.core import units

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CalibrationError",
    "SimulationError",
    "TraceError",
    "RandomSource",
    "derive_seed",
    "spawn",
    "units",
]
