"""Exception hierarchy for the yield-aware cache reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class CalibrationError(ReproError):
    """A calibration routine failed to reach its target."""


class SimulationError(ReproError):
    """An internal invariant of a simulator was violated at runtime."""


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent with its metadata."""
