"""Unit constants and conversion helpers.

All internal quantities are SI: seconds, metres, volts, amperes, watts,
farads, ohms. The constants below make literals in technology files and
tests readable (``45 * units.NM``, ``220 * units.MV``) and the helpers
render values back into the units the paper reports.
"""

from __future__ import annotations

# --- scale prefixes -------------------------------------------------------
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

# --- lengths --------------------------------------------------------------
NM = NANO
UM = MICRO
MM = MILLI

# --- time -----------------------------------------------------------------
PS = PICO
NS = NANO
US = MICRO

# --- electrical -----------------------------------------------------------
MV = MILLI  # volts
UA = MICRO  # amperes
NA = NANO
MA = MILLI
UW = MICRO  # watts
MW = MILLI
FF = 1e-15  # farads
PF = PICO
KOHM = KILO

# --- data sizes -----------------------------------------------------------
KB = 1024
MB = 1024 * 1024


def to_ps(seconds: float) -> float:
    """Express a time in picoseconds."""
    return seconds / PS


def to_ns(seconds: float) -> float:
    """Express a time in nanoseconds."""
    return seconds / NS


def to_mw(watts: float) -> float:
    """Express a power in milliwatts."""
    return watts / MW


def to_uw(watts: float) -> float:
    """Express a power in microwatts."""
    return watts / UW


def to_mv(volts: float) -> float:
    """Express a voltage in millivolts."""
    return volts / MV


def to_um(metres: float) -> float:
    """Express a length in micrometres."""
    return metres / UM


def to_nm(metres: float) -> float:
    """Express a length in nanometres."""
    return metres / NM
