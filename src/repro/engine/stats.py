"""Execution statistics for the parallel engine.

:class:`EngineStats` reports where every logical job (a population shard
or one pipeline simulation) was satisfied — computed, replayed from the
in-process memo, or loaded from the persistent store — and how a run
spent its wall time, for ``repro run --stats``.

Since the observability layer landed, the class is a thin *view* over a
:class:`~repro.obs.metrics.MetricsRegistry`: every counter attribute
(``jobs_run``, ``busy_seconds``, ...) reads and writes a registry
instrument, so the engine's executor can keep saying
``stats.jobs_run += 1`` while dashboards and tests read the same numbers
through ``engine.metrics.snapshot()``. Stage timings land in per-stage
latency histograms (``stage.<name>``) and, when tracing is enabled, each
stage emits a ``stage:<name>`` trace span around exactly the region it
books — so ``repro trace summary`` and ``--stats`` agree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as _trace_span

__all__ = ["EngineStats"]

#: Attribute name -> registry counter name.
_COUNTERS = {
    "jobs_run": "engine.jobs.run",
    "jobs_cached_memory": "engine.jobs.cached_memory",
    "jobs_cached_disk": "engine.jobs.cached_disk",
    "jobs_retried": "engine.jobs.retried",
    "jobs_degraded": "engine.jobs.degraded",
    "busy_seconds": "engine.busy_seconds",
    "pool_seconds": "engine.pool_seconds",
}

#: Prefix under which stage wall time is recorded as histograms.
_STAGE_PREFIX = "stage."


def _int_counter(metric: str):
    def getter(self: "EngineStats") -> int:
        return int(self.registry.counter(metric).value)

    def setter(self: "EngineStats", value: float) -> None:
        self.registry.counter(metric).value = float(value)

    return property(getter, setter)


def _float_counter(metric: str):
    def getter(self: "EngineStats") -> float:
        return self.registry.counter(metric).value

    def setter(self: "EngineStats", value: float) -> None:
        self.registry.counter(metric).value = float(value)

    return property(getter, setter)


class EngineStats:
    """Counters and timings for one engine lifetime (a registry view).

    Parameters
    ----------
    workers:
        Configured worker-process count (kept on the view, not in the
        registry — it is configuration, not a measurement).
    registry:
        Backing registry; a private one is created when not given, so a
        standalone ``EngineStats()`` behaves exactly like the plain
        dataclass it used to be.

    Attributes (all backed by registry counters)
    --------------------------------------------
    jobs_run:
        Jobs actually computed (in a worker or in-process).
    jobs_cached_memory, jobs_cached_disk:
        Jobs satisfied by the in-process memo / the persistent store.
    jobs_retried:
        Pool jobs re-submitted after a failure or timeout.
    jobs_degraded:
        Jobs that fell back to in-process execution after the pool
        failed them twice.
    busy_seconds:
        Summed per-job compute wall time (measured inside the worker).
    pool_seconds:
        Wall time spent inside parallel dispatch sections.
    """

    def __init__(
        self, workers: int = 1, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.workers = workers
        self.registry = registry if registry is not None else MetricsRegistry()

    jobs_run = _int_counter(_COUNTERS["jobs_run"])
    jobs_cached_memory = _int_counter(_COUNTERS["jobs_cached_memory"])
    jobs_cached_disk = _int_counter(_COUNTERS["jobs_cached_disk"])
    jobs_retried = _int_counter(_COUNTERS["jobs_retried"])
    jobs_degraded = _int_counter(_COUNTERS["jobs_degraded"])
    busy_seconds = _float_counter(_COUNTERS["busy_seconds"])
    pool_seconds = _float_counter(_COUNTERS["pool_seconds"])

    # ------------------------------------------------------------------
    # derived ratios (all guarded against empty runs)
    # ------------------------------------------------------------------
    @property
    def jobs_cached(self) -> int:
        """Jobs satisfied without computing (memo + store)."""
        return self.jobs_cached_memory + self.jobs_cached_disk

    @property
    def jobs_total(self) -> int:
        """All jobs the engine was asked for."""
        return self.jobs_run + self.jobs_cached

    @property
    def hit_ratio(self) -> float:
        """Fraction of jobs served from a cache (0.0 when no jobs ran)."""
        total = self.jobs_total
        if total <= 0:
            return 0.0
        return self.jobs_cached / total

    @property
    def utilization(self) -> float:
        """Fraction of the pool's capacity kept busy during dispatch.

        0.0 when nothing was dispatched (no division by zero on empty
        runs or pathological worker counts).
        """
        if self.pool_seconds <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.pool_seconds * self.workers))

    # ------------------------------------------------------------------
    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Wall time per named stage (a view over the stage histograms)."""
        return {
            name[len(_STAGE_PREFIX):]: hist.total
            for name, hist in self.registry.histograms().items()
            if name.startswith(_STAGE_PREFIX) and hist.count
        }

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of a ``with`` block under ``name``.

        Feeds the per-stage latency histogram and, when tracing is on,
        emits a ``stage:<name>`` span covering the same region.
        """
        with _trace_span(f"stage:{name}"):
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.registry.histogram(_STAGE_PREFIX + name).observe(elapsed)

    def reset(self) -> None:
        """Zero every counter and timing (the worker count is kept)."""
        self.registry.reset()

    def summary(self) -> str:
        """Human-readable multi-line report (``repro run --stats``)."""
        lines = [
            "== engine statistics ==",
            f"workers            {self.workers}",
            f"jobs run           {self.jobs_run}",
            f"jobs cached (memo) {self.jobs_cached_memory}",
            f"jobs cached (disk) {self.jobs_cached_disk}",
            f"jobs retried       {self.jobs_retried}",
            f"jobs degraded      {self.jobs_degraded}",
            f"cache hit ratio    {self.hit_ratio * 100:.1f}%",
            f"busy seconds       {self.busy_seconds:.3f}",
            f"pool utilization   {self.utilization * 100:.1f}%",
        ]
        stage_seconds = self.stage_seconds
        for name in sorted(stage_seconds):
            lines.append(f"stage {name:<24} {stage_seconds[name]:.3f}s")
        return "\n".join(lines)
