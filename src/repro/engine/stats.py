"""Execution statistics for the parallel engine.

:class:`EngineStats` counts where every logical job (a population shard
or one pipeline simulation) was satisfied — computed, replayed from the
in-process memo, or loaded from the persistent store — and accumulates
wall time per stage so ``repro run --stats`` can report how a run spent
its time and how well the worker pool was utilised.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters and timings for one engine lifetime.

    Attributes
    ----------
    workers:
        Configured worker-process count.
    jobs_run:
        Jobs actually computed (in a worker or in-process).
    jobs_cached_memory, jobs_cached_disk:
        Jobs satisfied by the in-process memo / the persistent store.
    jobs_retried:
        Pool jobs re-submitted after a failure or timeout.
    jobs_degraded:
        Jobs that fell back to in-process execution after the pool
        failed them twice.
    busy_seconds:
        Summed per-job compute wall time (measured inside the worker).
    pool_seconds:
        Wall time spent inside parallel dispatch sections.
    stage_seconds:
        Wall time per named stage (``population``, ``simulation``,
        ``experiment:<name>`` ...).
    """

    workers: int = 1
    jobs_run: int = 0
    jobs_cached_memory: int = 0
    jobs_cached_disk: int = 0
    jobs_retried: int = 0
    jobs_degraded: int = 0
    busy_seconds: float = 0.0
    pool_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def jobs_cached(self) -> int:
        """Jobs satisfied without computing (memo + store)."""
        return self.jobs_cached_memory + self.jobs_cached_disk

    @property
    def jobs_total(self) -> int:
        """All jobs the engine was asked for."""
        return self.jobs_run + self.jobs_cached

    @property
    def utilization(self) -> float:
        """Fraction of the pool's capacity kept busy during dispatch."""
        if self.pool_seconds <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.pool_seconds * self.workers))

    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of a ``with`` block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed

    def reset(self) -> None:
        """Zero every counter and timing (the worker count is kept)."""
        self.jobs_run = 0
        self.jobs_cached_memory = 0
        self.jobs_cached_disk = 0
        self.jobs_retried = 0
        self.jobs_degraded = 0
        self.busy_seconds = 0.0
        self.pool_seconds = 0.0
        self.stage_seconds = {}

    def summary(self) -> str:
        """Human-readable multi-line report (``repro run --stats``)."""
        lines = [
            "== engine statistics ==",
            f"workers            {self.workers}",
            f"jobs run           {self.jobs_run}",
            f"jobs cached (memo) {self.jobs_cached_memory}",
            f"jobs cached (disk) {self.jobs_cached_disk}",
            f"jobs retried       {self.jobs_retried}",
            f"jobs degraded      {self.jobs_degraded}",
            f"busy seconds       {self.busy_seconds:.3f}",
            f"pool utilization   {self.utilization * 100:.1f}%",
        ]
        for name in sorted(self.stage_seconds):
            lines.append(f"stage {name:<24} {self.stage_seconds[name]:.3f}s")
        return "\n".join(lines)
