"""The execution engine: sharded compute behind a two-level cache.

Every expensive job the experiments need — evaluating a Monte Carlo chip
population, running one pipeline simulation — funnels through one
:class:`Engine`, which satisfies it from (in order):

1. the **in-process memo** (same semantics the old per-module dicts had;
   ``clear_caches()`` empties exactly this level),
2. the **persistent store** (`.repro_cache/` by default) keyed by the
   SHA-256 of the job's full identity, shared across processes and runs,
3. **computation**, sharded over a :class:`~repro.engine.executor.ShardedExecutor`
   when more than one worker is configured.

Configuration comes from the environment (overridable per instance):

* ``REPRO_WORKERS`` — worker processes (default 1, the serial path).
* ``REPRO_CACHE_DIR`` — store location (default ``.repro_cache``).
* ``REPRO_CACHE`` — set to ``0`` to disable the persistent store.
* ``REPRO_CACHE_MB`` — store size cap in MiB (default 512).
* ``REPRO_JOB_TIMEOUT`` — seconds per pool job before retry (default 900).
* ``REPRO_COLUMNAR`` — set to ``0`` to disable the columnar population
  fast path (bit-identical either way; see
  :mod:`repro.variation.columnar`). Worker processes inherit it, so the
  switch governs serial and sharded dispatch alike.
"""

from __future__ import annotations

import math
import os
import pathlib
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.validation import env_int, env_positive_int, require_positive
from repro.core.errors import ConfigurationError
from repro.engine.codec import (
    decode_estimate,
    decode_population,
    decode_simulation,
    encode_estimate,
    encode_population,
    encode_simulation,
    policy_identity,
    way_cycles_identity,
)
from repro.engine.executor import ShardedExecutor
from repro.engine.stats import EngineStats
from repro.engine.store import ResultStore
from repro.engine.workers import population_shard, simulation_job
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import provenance_stamp
from repro.obs.trace import span as trace_span, tracing_enabled
from repro.yieldmodel.constraints import ConstraintPolicy, NOMINAL_POLICY
from repro.yieldmodel.estimators.spec import EstimatorSpec

__all__ = [
    "EngineConfig",
    "Engine",
    "SimulationSpec",
    "get_engine",
    "configure_engine",
    "reset_engine",
]

#: One simulation request: (benchmark, way_cycles, uniform_latency).
SimulationSpec = Tuple[str, Optional[Tuple[Optional[int], ...]], Optional[int]]

#: Smallest population shard worth shipping to a worker.
_MIN_SHARD = 16


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs (see module docstring for the env mapping)."""

    workers: int = 1
    cache_dir: pathlib.Path = pathlib.Path(".repro_cache")
    persistent: bool = True
    max_cache_bytes: int = 512 * 1024 * 1024
    job_timeout: float = 900.0
    #: Default estimator spec for population/estimate jobs (``None`` =
    #: legacy fixed-N). Set by the CLI's ``--estimator``/``--ci-target``.
    estimator: Optional[EstimatorSpec] = None

    def __post_init__(self) -> None:
        require_positive(self.workers, "workers")
        require_positive(self.job_timeout, "job_timeout")

    @classmethod
    def from_env(cls) -> "EngineConfig":
        """Build the default configuration from ``REPRO_*`` variables.

        Non-positive ``REPRO_WORKERS`` / ``REPRO_JOB_TIMEOUT`` values
        raise :class:`~repro.core.errors.ConfigurationError` naming the
        variable, instead of passing a nonsense count through to the
        pool.
        """
        return cls(
            workers=env_positive_int("REPRO_WORKERS", 1),
            cache_dir=pathlib.Path(
                os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
            ),
            persistent=os.environ.get("REPRO_CACHE", "1") != "0",
            max_cache_bytes=env_int("REPRO_CACHE_MB", 512) * 1024 * 1024,
            job_timeout=env_positive_int("REPRO_JOB_TIMEOUT", 900),
        )


class Engine:
    """Parallel, cache-backed executor for populations and simulations."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config if config is not None else EngineConfig.from_env()
        #: One registry per engine lifetime: EngineStats is a view over
        #: it, and the store feeds its I/O counters into the same place.
        self.metrics = MetricsRegistry()
        self.stats = EngineStats(
            workers=self.config.workers, registry=self.metrics
        )
        self.store: Optional[ResultStore] = (
            ResultStore(
                self.config.cache_dir,
                self.config.max_cache_bytes,
                metrics=self.metrics,
            )
            if self.config.persistent
            else None
        )
        self._executor = ShardedExecutor(
            workers=self.config.workers, timeout=self.config.job_timeout
        )
        self._memo: Dict[str, object] = {}
        self._provenance: Optional[Dict[str, object]] = None
        # Scheduler state: in-flight dedup table plus the thread pool the
        # async submission API (`submit_*`) runs leaders on. A key appears
        # in `_inflight` from the moment a leader claims it until its
        # result (or error) is settled, so concurrent identical
        # submissions — the serve layer's whole request mix — collapse
        # onto one computation.
        self._inflight: Dict[str, Future] = {}
        self._inflight_lock = threading.Lock()
        self._submit_pool: Optional[ThreadPoolExecutor] = None

    def provenance(self) -> Dict[str, object]:
        """Provenance stamp of this engine's code and configuration.

        Computed once per engine (the git subprocesses cost ~10ms) and
        attached to every dispatch trace span, so traced runs — and the
        bench records built on them — always say which commit and which
        engine configuration produced the numbers.
        """
        if self._provenance is None:
            self._provenance = provenance_stamp(
                workers=self.config.workers,
                config={
                    "workers": self.config.workers,
                    "persistent": self.config.persistent,
                    "job_timeout": self.config.job_timeout,
                },
            )
        return self._provenance

    def _dispatch_provenance(self) -> Dict[str, object]:
        """Provenance attrs for dispatch spans (empty when untraced).

        Guarded so untraced runs never pay the one-time git subprocess
        cost of building the stamp.
        """
        if not tracing_enabled():
            return {}
        stamp = self.provenance()
        return {
            "sha": stamp["git_sha"],
            "dirty": stamp["dirty"],
            "config": stamp["config_hash"],
        }

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process memo (the old ``clear_caches`` semantics)."""
        self._memo.clear()

    def _lookup(self, kind: str, key: str, decode):
        """Memo then store; ``None`` when the job must be computed."""
        if key in self._memo:
            self.stats.jobs_cached_memory += 1
            self.metrics.counter(f"engine.memo.hit.{kind}").inc()
            return self._memo[key]
        if self.store is not None:
            payload = self.store.load(kind, key)
            if payload is not None:
                try:
                    result = decode(payload)
                except (KeyError, TypeError, ValueError):
                    return None  # stale/garbled payload: recompute
                self.stats.jobs_cached_disk += 1
                self._memo[key] = result
                return result
        return None

    def _settle(self, kind: str, key: str, result, encode) -> None:
        self._memo[key] = result
        if self.store is not None:
            self.store.save(kind, key, encode(result))

    def has_cached(self, kind: str, key: str) -> bool:
        """Is ``(kind, key)`` answerable without computing?

        Checks the in-process memo, then bare file existence in the
        persistent store (no read, no decode) — cheap enough for a server
        to classify every incoming request as warm or cold before
        deciding whether it must pass admission control.
        """
        if key in self._memo:
            return True
        if self.store is not None:
            return self.store.path_for(kind, key).is_file()
        return False

    def inflight_count(self) -> int:
        """How many distinct jobs are currently being computed."""
        with self._inflight_lock:
            return len(self._inflight)

    # ------------------------------------------------------------------
    # populations
    # ------------------------------------------------------------------
    @staticmethod
    def population_key(
        settings,
        policy: ConstraintPolicy = NOMINAL_POLICY,
        estimator: Optional[EstimatorSpec] = None,
    ) -> str:
        """Deterministic store key of one population job.

        An adaptive estimator spec joins the identity (its stopping rule
        decides how many chips the population holds); ``None`` and
        ``fixed`` keep the exact legacy key bytes, so existing warm
        stores stay valid.
        """
        identity = {
            "seed": settings.seed,
            "chips": settings.chips,
            "policy": policy_identity(policy),
        }
        if estimator is not None and estimator.kind == "adaptive":
            identity["estimator"] = estimator.identity()
        return ResultStore.key_for("population", identity)

    def population(
        self,
        settings,
        policy: ConstraintPolicy = NOMINAL_POLICY,
        progress: Optional[Callable[[int, int], None]] = None,
        estimator: Optional[EstimatorSpec] = None,
    ):
        """The evaluated Monte Carlo population for ``settings``/``policy``.

        ``progress`` (optional) is called as ``progress(done, total)``
        after each dispatched shard completes; cache hits never call it.
        ``estimator`` (default: the engine config's spec) selects how the
        population is sized: ``None``/``fixed`` evaluate exactly
        ``settings.chips`` chips; ``adaptive`` draws batches of the same
        chip stream and stops early once the Wilson CI half-width of
        both architectures' base yields reaches the spec's ``ci_target``.
        The weighted estimators cannot produce a chip population — use
        :meth:`estimate` for those.
        """
        spec = estimator if estimator is not None else self.config.estimator
        if spec is not None and spec.kind in ("stratified", "is"):
            raise ConfigurationError(
                f"the {spec.kind!r} estimator reweights chips and cannot "
                "materialise a population; use Engine.estimate() instead"
            )
        key = self.population_key(settings, policy, spec)
        adaptive = spec is not None and spec.kind == "adaptive"
        with trace_span(
            "engine.population", chips=settings.chips, seed=settings.seed,
            estimator=spec.kind if spec is not None else "fixed",
        ) as sp:
            cached = self._lookup("population", key, decode_population)
            if cached is not None:
                sp.set(source="cache")
                self._emit_estimator_gauges(cached)
                return cached
            sp.set(source="computed")
            with self.stats.stage("population"):
                if adaptive:
                    result = self._compute_population_adaptive(
                        settings, policy, spec, progress
                    )
                else:
                    result = self._compute_population(
                        settings, policy, progress
                    )
            self._settle("population", key, result, encode_population)
        self._emit_estimator_gauges(result)
        return result

    def _emit_estimator_gauges(self, result) -> None:
        """Base-yield estimate + Wilson CI half-width + sample count.

        Published per architecture into the engine registry, so a serve
        deployment surfaces estimator quality on /metrics for plain
        population queries too (scheme-level gauges come from
        :meth:`PopulationResult.breakdown`).
        """
        from repro.yieldmodel.statistics import wilson_interval

        for arch, cases in (
            ("regular", result.cases), ("horizontal", result.h_cases)
        ):
            total = len(cases)
            if total <= 0:
                continue
            ships = sum(1 for case in cases if case.passes)
            low, high = wilson_interval(ships, total)
            self.metrics.gauge(f"yield.estimate.{arch}.base").set(
                ships / total
            )
            self.metrics.gauge(f"yield.ci_halfwidth.{arch}.base").set(
                (high - low) / 2.0
            )
            self.metrics.gauge(f"yield.samples.{arch}.base").set(total)

    def _compute_population(
        self,
        settings,
        policy: ConstraintPolicy,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        from repro.yieldmodel.analysis import YieldStudy

        study = YieldStudy(
            seed=settings.seed, count=settings.chips, policy=policy
        )
        jobs = self._population_jobs(settings.seed, settings.chips)
        from repro.variation.columnar import columnar_enabled

        with trace_span(
            "engine.dispatch", kind="population", jobs=len(jobs),
            columnar=columnar_enabled(),
            **self._dispatch_provenance(),
        ):
            shards = self._executor.run(
                population_shard, jobs, self.stats, progress=progress
            )
        regular = [circuit for shard in shards for circuit in shard[0]]
        horizontal = [circuit for shard in shards for circuit in shard[1]]
        return study.assemble(regular, horizontal)

    def _population_jobs(self, seed: int, chips: int) -> List[Tuple[int, int, int]]:
        """Split ``chips`` ids into shard jobs (one job on the serial path)."""
        return self._range_jobs(seed, 0, chips)

    def _range_jobs(
        self, seed: int, start: int, stop: int
    ) -> List[Tuple[int, int, int]]:
        """Split chip ids ``[start, stop)`` into shard jobs.

        Per-chip RNG streams depend only on ``(seed, chip_id)``, so the
        concatenated shards are bit-identical to the serial evaluation
        for any layout; the layout only affects load balance.
        """
        if self.config.workers <= 1:
            return [(seed, start, stop)]
        shard = max(
            _MIN_SHARD,
            math.ceil((stop - start) / (self.config.workers * 4)),
        )
        return [
            (seed, lo, min(lo + shard, stop))
            for lo in range(start, stop, shard)
        ]

    def _compute_population_adaptive(
        self,
        settings,
        policy: ConstraintPolicy,
        spec: EstimatorSpec,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        """Sequential population batches with CI-driven early stopping.

        Draws ``spec.batch_size`` chips of the reference stream per
        round, re-derives the policy limits over the cumulative
        population (they are population statistics), and stops once the
        Wilson half-width of both architectures' base yields is at or
        below ``spec.ci_target`` — or at the cap. The stopping decision
        is a pure function of the drawn chips, so the result is
        bit-identical at any worker count; the assembled result equals
        exactly what a fixed population of the stopping size would be.
        """
        from repro.variation.columnar import columnar_enabled
        from repro.yieldmodel.analysis import YieldStudy
        from repro.yieldmodel.statistics import wilson_interval

        cap = min(
            spec.max_chips if spec.max_chips is not None else settings.chips,
            settings.chips,
        )
        regular: List = []
        horizontal: List = []
        while True:
            take = min(spec.batch_size, cap - len(regular))
            jobs = self._range_jobs(
                settings.seed, len(regular), len(regular) + take
            )
            with trace_span(
                "engine.dispatch", kind="population", jobs=len(jobs),
                columnar=columnar_enabled(), adaptive=True,
                **self._dispatch_provenance(),
            ):
                shards = self._executor.run(
                    population_shard, jobs, self.stats, progress=progress
                )
            for shard in shards:
                regular.extend(shard[0])
                horizontal.extend(shard[1])
            if len(regular) >= cap:
                break
            if spec.ci_target is None:
                continue
            constraints = policy.derive(
                [c.access_delay for c in regular],
                [c.total_leakage for c in regular],
            )
            total = len(regular)
            done = True
            for circuits in (regular, horizontal):
                ships = sum(
                    1
                    for c in circuits
                    if c.total_leakage <= constraints.leakage_limit
                    and all(
                        d <= constraints.delay_limit for d in c.way_delays
                    )
                )
                low, high = wilson_interval(ships, total, spec.confidence)
                if (high - low) / 2.0 > spec.ci_target:
                    done = False
                    break
            if done:
                break
        study = YieldStudy(
            seed=settings.seed, count=len(regular), policy=policy
        )
        return study.assemble(regular, horizontal)

    # ------------------------------------------------------------------
    # yield estimates
    # ------------------------------------------------------------------
    @staticmethod
    def estimate_key(
        settings,
        policy: ConstraintPolicy = NOMINAL_POLICY,
        estimator: Optional[EstimatorSpec] = None,
    ) -> str:
        """Deterministic store key of one yield-estimate job.

        The estimator spec's :meth:`~EstimatorSpec.identity` is part of
        the identity — two estimates agree on an answer exactly when
        they agree on ``(seed, chips, policy, spec)``.
        """
        spec = estimator if estimator is not None else EstimatorSpec()
        identity = {
            "seed": settings.seed,
            "chips": settings.chips,
            "policy": policy_identity(policy),
            "estimator": spec.identity(),
        }
        return ResultStore.key_for("estimate", identity)

    def estimate(
        self,
        settings,
        policy: ConstraintPolicy = NOMINAL_POLICY,
        estimator: Optional[EstimatorSpec] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        """The yield estimate for ``settings``/``policy`` under a spec.

        Runs the estimator the spec selects (default: the engine
        config's, else plain fixed-N) through the estimator batch
        runner, sharded over this engine's executor — bit-deterministic
        for ``(seed, chips, policy, spec)`` at any worker count. Results
        are cached like every other engine job.
        """
        from repro.yieldmodel.estimators import BatchRunner, run_estimate

        spec = estimator if estimator is not None else self.config.estimator
        if spec is None:
            spec = EstimatorSpec()
        key = self.estimate_key(settings, policy, spec)
        with trace_span(
            "engine.estimate", kind=spec.kind, chips=settings.chips,
            seed=settings.seed, policy=policy.name,
        ) as sp:
            cached = self._lookup("estimate", key, decode_estimate)
            if cached is not None:
                sp.set(source="cache")
                self._emit_estimate_gauges(cached)
                return cached
            sp.set(source="computed")
            runner = BatchRunner(
                executor=self._executor,
                workers=self.config.workers,
                stats=self.stats,
                progress=progress,
            )
            with self.stats.stage("estimate"):
                report = run_estimate(
                    runner, spec, settings.seed, settings.chips, policy
                )
            self._settle("estimate", key, report, encode_estimate)
        self._emit_estimate_gauges(report)
        return report

    def _emit_estimate_gauges(self, report) -> None:
        """Estimate / CI half-width / samples / ESS per tracked figure.

        The figure set is fixed (``regular.base``, ``horizontal.base``),
        so the series count is bounded by construction — no label
        cardinality cap needed at this emission site.
        """
        for estimate in report.estimates:
            name = estimate.figure
            self.metrics.gauge(f"yield.estimate.{name}").set(
                estimate.estimate
            )
            self.metrics.gauge(f"yield.ci_halfwidth.{name}").set(
                estimate.ci_halfwidth
            )
            self.metrics.gauge(f"yield.samples.{name}").set(estimate.samples)
            self.metrics.gauge(f"yield.ess.{name}").set(estimate.ess)

    # ------------------------------------------------------------------
    # simulations
    # ------------------------------------------------------------------
    @staticmethod
    def _simulation_identity(settings, spec: SimulationSpec) -> Dict[str, object]:
        benchmark, way_cycles, uniform_latency = spec
        return {
            "seed": settings.seed,
            "trace_length": settings.trace_length,
            "warmup": settings.warmup,
            "benchmark": benchmark,
            "way_cycles": way_cycles_identity(way_cycles),
            "uniform_latency": uniform_latency,
        }

    def simulate(
        self,
        settings,
        benchmark: str,
        way_cycles: Optional[Tuple[Optional[int], ...]] = None,
        uniform_latency: Optional[int] = None,
    ):
        """One benchmark under one L1D configuration (cached)."""
        return self.simulate_many(
            settings, [(benchmark, way_cycles, uniform_latency)]
        )[0]

    @classmethod
    def simulation_key(cls, settings, spec: SimulationSpec) -> str:
        """Deterministic store key of one simulation job."""
        return ResultStore.key_for(
            "simulation", cls._simulation_identity(settings, spec)
        )

    def simulate_many(
        self,
        settings,
        specs: List[SimulationSpec],
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        """Run many simulations, dispatching cache misses in parallel.

        Returns results in ``specs`` order. Experiments that sweep
        benchmark × configuration call this once up front so the pool
        sees every independent job at the same time. ``progress`` (when
        given) is called as ``progress(done, total)`` per computed job.
        """
        identities = [self._simulation_identity(settings, s) for s in specs]
        keys = [ResultStore.key_for("simulation", i) for i in identities]
        results: List[object] = [None] * len(specs)
        misses: List[int] = []
        seen: Dict[str, int] = {}
        with trace_span("engine.simulate_many", specs=len(specs)) as sp:
            for index, key in enumerate(keys):
                cached = self._lookup("simulation", key, decode_simulation)
                if cached is not None:
                    results[index] = cached
                elif key in seen:
                    continue  # duplicate spec within this batch
                else:
                    seen[key] = index
                    misses.append(index)
            sp.set(misses=len(misses))
            if misses:
                # Ship compiled-trace cache keys, not traces: each worker
                # resolves the key against its process-level compiled
                # cache (repro.workloads.compiled), so a (benchmark,
                # seed) stream is packed once per worker, not per job.
                # The key is informational — the store identity (and so
                # every cache key) is unchanged.
                from repro.workloads.compiled import trace_key

                jobs = []
                for i in misses:
                    identity = identities[i]
                    job = dict(identity)
                    job["ctrace"] = trace_key(
                        identity["benchmark"],
                        identity["seed"],
                        identity["warmup"] + identity["trace_length"],
                    )
                    jobs.append(job)
                with self.stats.stage("simulation"), trace_span(
                    "engine.dispatch", kind="simulation", jobs=len(misses),
                    **self._dispatch_provenance(),
                ):
                    computed = self._executor.run(
                        simulation_job,
                        jobs,
                        self.stats,
                        progress=progress,
                    )
                for index, result in zip(misses, computed):
                    self._settle(
                        "simulation", keys[index], result, encode_simulation
                    )
        for index, key in enumerate(keys):
            if results[index] is None:
                results[index] = self._memo[key]
        return results

    # ------------------------------------------------------------------
    # async submission (the scheduler face: serve layer, dashboards)
    # ------------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        if self._submit_pool is None:
            self._submit_pool = ThreadPoolExecutor(
                max_workers=max(4, self.config.workers),
                thread_name_prefix="repro-engine",
            )
        return self._submit_pool

    def _claim(self, kind: str, key: str) -> Tuple[Future, bool]:
        """The in-flight future for ``key`` and whether we lead it.

        Joining an existing flight bumps ``engine.inflight.joined``; a
        fresh claim bumps ``engine.inflight.leader``. The leader must
        settle the future via :meth:`_finish`.
        """
        with self._inflight_lock:
            future = self._inflight.get(key)
            if future is not None:
                self.metrics.counter(f"engine.inflight.joined.{kind}").inc()
                return future, False
            future = Future()
            self._inflight[key] = future
            self.metrics.counter(f"engine.inflight.leader.{kind}").inc()
            self.metrics.gauge("engine.inflight").set(len(self._inflight))
            return future, True

    def _finish(self, key: str, future: Future, result, error) -> None:
        with self._inflight_lock:
            self._inflight.pop(key, None)
            self.metrics.gauge("engine.inflight").set(len(self._inflight))
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def submit_population(
        self,
        settings,
        policy: ConstraintPolicy = NOMINAL_POLICY,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> Future:
        """Submit one population job; returns a ``concurrent.futures.Future``.

        Concurrent submissions of the same job identity coalesce onto a
        single computation (single-flight): the first caller becomes the
        leader and runs :meth:`population` on the engine's thread pool,
        later callers receive the same future. A memoised result resolves
        immediately without touching the pool.
        """
        key = self.population_key(settings, policy, self.config.estimator)
        if key in self._memo:
            self.metrics.counter("engine.inflight.cached.population").inc()
            future: Future = Future()
            future.set_result(self._memo[key])
            return future
        future, leader = self._claim("population", key)
        if leader:
            def lead() -> None:
                try:
                    result = self.population(settings, policy, progress=progress)
                except Exception as exc:  # settled into the future
                    self._finish(key, future, None, exc)
                else:
                    self._finish(key, future, result, None)

            self._pool().submit(lead)
        return future

    def submit_estimate(
        self,
        settings,
        policy: ConstraintPolicy = NOMINAL_POLICY,
        estimator: Optional[EstimatorSpec] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> Future:
        """Submit one yield-estimate job (single-flight, like populations)."""
        spec = estimator if estimator is not None else self.config.estimator
        if spec is None:
            spec = EstimatorSpec()
        key = self.estimate_key(settings, policy, spec)
        if key in self._memo:
            self.metrics.counter("engine.inflight.cached.estimate").inc()
            future: Future = Future()
            future.set_result(self._memo[key])
            return future
        future, leader = self._claim("estimate", key)
        if leader:
            def lead() -> None:
                try:
                    result = self.estimate(
                        settings, policy, estimator=spec, progress=progress
                    )
                except Exception as exc:  # settled into the future
                    self._finish(key, future, None, exc)
                else:
                    self._finish(key, future, result, None)

            self._pool().submit(lead)
        return future

    def submit_simulations(
        self,
        settings,
        specs: List[SimulationSpec],
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> List[Future]:
        """Submit a batch of simulations; one future per spec, in order.

        Specs already memoised resolve immediately; specs another caller
        is already computing join that flight; the rest are claimed and
        computed through **one** :meth:`simulate_many` call — a single
        pool dispatch for the whole fresh set, which is what the serve
        layer's batcher relies on.
        """
        futures: List[Future] = []
        fresh: List[Tuple[str, Future, SimulationSpec]] = []
        claimed: Dict[str, Future] = {}
        for spec in specs:
            key = self.simulation_key(settings, spec)
            if key in claimed:
                futures.append(claimed[key])
                continue
            if key in self._memo:
                self.metrics.counter("engine.inflight.cached.simulation").inc()
                future = Future()
                future.set_result(self._memo[key])
                futures.append(future)
                continue
            future, leader = self._claim("simulation", key)
            if leader:
                fresh.append((key, future, spec))
                claimed[key] = future
            futures.append(future)
        if fresh:
            def lead() -> None:
                try:
                    results = self.simulate_many(
                        settings, [spec for _, _, spec in fresh],
                        progress=progress,
                    )
                except Exception as exc:
                    for key, future, _ in fresh:
                        self._finish(key, future, None, exc)
                else:
                    for (key, future, _), result in zip(fresh, results):
                        self._finish(key, future, result, None)

            self._pool().submit(lead)
        return futures

    def shutdown(self) -> None:
        """Stop the submission thread pool (in-flight leaders finish)."""
        if self._submit_pool is not None:
            self._submit_pool.shutdown(wait=True)
            self._submit_pool = None


# ----------------------------------------------------------------------
# the process-wide engine
# ----------------------------------------------------------------------
_ENGINE: Optional[Engine] = None


def get_engine() -> Engine:
    """The process-wide engine (created lazily from the environment)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = Engine()
    return _ENGINE


def configure_engine(**overrides) -> Engine:
    """Replace the process-wide engine with selected overrides.

    Accepts any :class:`EngineConfig` field (``workers``, ``cache_dir``,
    ``persistent``, ``max_cache_bytes``, ``job_timeout``, ``estimator``);
    unspecified fields come from the environment. The CLI's ``--workers``
    and ``--estimator`` flags and the tests go through here.
    """
    global _ENGINE
    config = EngineConfig.from_env()
    if overrides:
        if "cache_dir" in overrides:
            overrides["cache_dir"] = pathlib.Path(overrides["cache_dir"])
        config = replace(config, **overrides)
    _ENGINE = Engine(config)
    return _ENGINE


def reset_engine() -> None:
    """Forget the process-wide engine (tests; env changes take effect)."""
    global _ENGINE
    _ENGINE = None
