"""JSON codecs for the persistent result store.

Encodes the two expensive result types — an evaluated
:class:`~repro.yieldmodel.analysis.PopulationResult` and one pipeline
:class:`~repro.uarch.simulator.SimResult` — to plain-JSON payloads and
back. Floats survive exactly (``json`` emits ``repr`` shortest-round-trip
floats), so a result decoded from disk is bit-identical to the freshly
computed one; the determinism tests rely on this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.cache_model import CacheCircuitResult, WayCircuitResult
from repro.uarch.simulator import SimResult
from repro.yieldmodel.analysis import PopulationResult
from repro.yieldmodel.classify import ChipCase
from repro.yieldmodel.constraints import ConstraintPolicy, YieldConstraints

__all__ = [
    "encode_estimate",
    "decode_estimate",
    "encode_population",
    "decode_population",
    "encode_simulation",
    "decode_simulation",
    "policy_identity",
]


def policy_identity(policy: ConstraintPolicy) -> Dict[str, object]:
    """The parameters of a constraint policy, for cache keys."""
    return {
        "name": policy.name,
        "delay_sigma_multiple": policy.delay_sigma_multiple,
        "leakage_mean_multiple": policy.leakage_mean_multiple,
    }


# ----------------------------------------------------------------------
# circuit results
# ----------------------------------------------------------------------
def _encode_circuit(circuit: CacheCircuitResult) -> dict:
    return {
        "chip_id": circuit.chip_id,
        "hyapd": circuit.hyapd,
        "ways": [
            {
                "way": way.way,
                "band_delays": list(way.band_delays),
                "band_leakage": list(way.band_leakage),
                "peripheral_leakage": way.peripheral_leakage,
            }
            for way in circuit.ways
        ],
    }


def _decode_circuit(data: dict) -> CacheCircuitResult:
    return CacheCircuitResult(
        chip_id=int(data["chip_id"]),
        hyapd=bool(data["hyapd"]),
        ways=tuple(
            WayCircuitResult(
                way=int(way["way"]),
                band_delays=tuple(way["band_delays"]),
                band_leakage=tuple(way["band_leakage"]),
                peripheral_leakage=way["peripheral_leakage"],
            )
            for way in data["ways"]
        ),
    )


# ----------------------------------------------------------------------
# populations
# ----------------------------------------------------------------------
def encode_population(result: PopulationResult) -> dict:
    """Flatten a population result (both architectures) to JSON."""
    return {
        "policy": policy_identity(result.policy),
        "constraints": {
            "delay_limit": result.constraints.delay_limit,
            "leakage_limit": result.constraints.leakage_limit,
        },
        "cases": [_encode_circuit(case.circuit) for case in result.cases],
        "h_cases": [_encode_circuit(case.circuit) for case in result.h_cases],
    }


def decode_population(payload: dict) -> PopulationResult:
    """Rebuild a population result from a stored payload."""
    constraints = YieldConstraints(
        delay_limit=payload["constraints"]["delay_limit"],
        leakage_limit=payload["constraints"]["leakage_limit"],
    )
    policy = ConstraintPolicy(
        name=payload["policy"]["name"],
        delay_sigma_multiple=payload["policy"]["delay_sigma_multiple"],
        leakage_mean_multiple=payload["policy"]["leakage_mean_multiple"],
    )
    return PopulationResult(
        constraints=constraints,
        cases=[
            ChipCase(circuit=_decode_circuit(data), constraints=constraints)
            for data in payload["cases"]
        ],
        h_cases=[
            ChipCase(circuit=_decode_circuit(data), constraints=constraints)
            for data in payload["h_cases"]
        ],
        policy=policy,
    )


# ----------------------------------------------------------------------
# yield estimates
# ----------------------------------------------------------------------
def encode_estimate(report) -> dict:
    """Flatten an :class:`EstimateReport` to JSON (floats exact)."""
    from repro.yieldmodel.estimators.results import estimate_to_dict

    return estimate_to_dict(report)


def decode_estimate(payload: dict):
    """Rebuild an :class:`EstimateReport` from a stored payload."""
    from repro.yieldmodel.estimators.results import estimate_from_dict

    return estimate_from_dict(payload)


# ----------------------------------------------------------------------
# simulations
# ----------------------------------------------------------------------
def encode_simulation(result: SimResult) -> dict:
    """Flatten one pipeline simulation result to JSON."""
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "replays": result.replays,
        "lbb_stalls": result.lbb_stalls,
        "slow_way_hits": result.slow_way_hits,
        "branch_mispredicts": result.branch_mispredicts,
        "loads": result.loads,
        "stores": result.stores,
        "hierarchy_stats": dict(result.hierarchy_stats),
    }


def decode_simulation(payload: dict) -> SimResult:
    """Rebuild a pipeline simulation result from a stored payload."""
    return SimResult(
        instructions=int(payload["instructions"]),
        cycles=int(payload["cycles"]),
        replays=int(payload["replays"]),
        lbb_stalls=int(payload["lbb_stalls"]),
        slow_way_hits=int(payload["slow_way_hits"]),
        branch_mispredicts=int(payload["branch_mispredicts"]),
        loads=int(payload["loads"]),
        stores=int(payload["stores"]),
        hierarchy_stats=dict(payload["hierarchy_stats"]),
    )


def way_cycles_identity(
    way_cycles: Optional[Tuple[Optional[int], ...]]
) -> Optional[List[Optional[int]]]:
    """JSON-able form of a way-latency tuple (``None`` entries survive)."""
    if way_cycles is None:
        return None
    return [cycle for cycle in way_cycles]
