"""Content-addressed persistent result store.

Every expensive result (an evaluated Monte Carlo population, one pipeline
simulation) is stored as one JSON file under ``<root>/<kind>/<key>.json``,
where ``key`` is the SHA-256 of a canonical JSON encoding of the job's
full identity (schema version, kind, and every parameter that influences
the result). Properties:

* **Content addressing** — identical work always lands on the same file,
  across processes and machines; a parameter change produces a new key.
* **Versioned schema** — the schema version participates in the key and
  is re-checked on load, so upgrading the on-disk format silently
  invalidates old entries instead of misreading them.
* **Corruption tolerance** — a truncated, garbled, or wrong-version entry
  is discarded (and unlinked) on load and simply recomputed; a broken
  cache can never fail an experiment.
* **LRU size cap** — loads refresh an entry's mtime; saves evict the
  stalest entries once the store exceeds its byte budget.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["ResultStore", "SCHEMA_VERSION", "canonical_json"]

#: Bump when the payload encoding of any kind changes incompatibly.
SCHEMA_VERSION = 1


def canonical_json(value: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """On-disk JSON store with content-addressed keys and an LRU cap.

    Parameters
    ----------
    root:
        Directory holding the store (created lazily on first save).
    max_bytes:
        Byte budget; ``None`` or ``<= 0`` disables eviction.
    metrics:
        Optional registry receiving I/O counters (``store.load.hit``,
        ``store.load.miss``, ``store.load.corrupt``, ``store.save``,
        ``store.evictions``, ``store.bytes_written``) and latency
        histograms (``store.load_seconds``, ``store.save_seconds``).
        The engine passes its own registry; a bare store stays silent.
    """

    def __init__(
        self,
        root: pathlib.Path,
        max_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes if max_bytes and max_bytes > 0 else None
        self.metrics = metrics

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(seconds)

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(kind: str, identity: Dict[str, object]) -> str:
        """SHA-256 key of a job identity (version and kind included)."""
        body = canonical_json(
            {"version": SCHEMA_VERSION, "kind": kind, "identity": identity}
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, key: str) -> pathlib.Path:
        """The file that would hold entry ``(kind, key)``."""
        return self.root / kind / f"{key}.json"

    # ------------------------------------------------------------------
    # load / save
    # ------------------------------------------------------------------
    def load(self, kind: str, key: str) -> Optional[dict]:
        """The stored payload, or ``None`` when absent or unreadable."""
        path = self.path_for(kind, key)
        start = time.perf_counter()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                wrapper = json.load(handle)
            if (
                not isinstance(wrapper, dict)
                or wrapper.get("version") != SCHEMA_VERSION
                or wrapper.get("kind") != kind
                or "payload" not in wrapper
            ):
                raise ValueError("bad store entry")
        except FileNotFoundError:
            self._count("store.load.miss")
            return None
        except (OSError, ValueError):
            # Corrupt or foreign entry: discard it so it is recomputed.
            self._count("store.load.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self._count("store.load.hit")
        self._observe("store.load_seconds", time.perf_counter() - start)
        return wrapper["payload"]

    def save(self, kind: str, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``(kind, key)``."""
        path = self.path_for(kind, key)
        wrapper = {"version": SCHEMA_VERSION, "kind": kind, "payload": payload}
        start = time.perf_counter()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(wrapper, handle, separators=(",", ":"))
                written = os.path.getsize(tmp)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return  # a read-only or full disk must never fail the run
        self._count("store.save")
        self._count("store.bytes_written", written)
        self._observe("store.save_seconds", time.perf_counter() - start)
        self._enforce_cap()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[pathlib.Path]:
        """Every entry file currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def info(self) -> Dict[str, object]:
        """Store location, entry count, and sizes (``repro cache info``)."""
        entries = self.entries()
        total = 0
        per_kind: Dict[str, int] = {}
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                continue
            kind = path.parent.name
            per_kind[kind] = per_kind.get(kind, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": total,
            "max_bytes": self.max_bytes,
            "per_kind": per_kind,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries beyond the byte budget."""
        if self.max_bytes is None:
            return
        stamped = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stamped.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        stamped.sort()  # oldest access first
        while total > self.max_bytes and len(stamped) > 1:
            _, size, path = stamped.pop(0)
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self._count("store.evictions")
