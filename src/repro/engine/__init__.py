"""Parallel execution engine with a persistent result store.

The engine is the single path every experiment's expensive work goes
through: Monte Carlo populations and pipeline simulations are sharded
over a process pool (``REPRO_WORKERS`` / ``repro run --workers``),
memoised in-process, and persisted content-addressed under
``.repro_cache/`` so repeated runs — across processes — skip completed
work entirely. See :mod:`repro.engine.core` for the configuration knobs.
"""

from repro.engine.core import (
    Engine,
    EngineConfig,
    SimulationSpec,
    configure_engine,
    get_engine,
    reset_engine,
)
from repro.engine.executor import ShardedExecutor
from repro.engine.stats import EngineStats
from repro.engine.store import ResultStore, SCHEMA_VERSION

__all__ = [
    "Engine",
    "EngineConfig",
    "EngineStats",
    "ResultStore",
    "SCHEMA_VERSION",
    "ShardedExecutor",
    "SimulationSpec",
    "configure_engine",
    "get_engine",
    "reset_engine",
]
