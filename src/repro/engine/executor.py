"""Sharded job dispatch with a serial fallback and graceful degradation.

:class:`ShardedExecutor` runs a list of independent jobs through one
function and returns their results in job order. With ``workers <= 1``
(or a single job) everything runs in-process; otherwise jobs are
dispatched over a ``ProcessPoolExecutor``. A job that fails or times out
in the pool is retried once, and if it fails again — or the pool itself
breaks — it degrades to in-process execution, so a crashed worker can
slow an experiment down but never fail it.

Job functions must be module-level (picklable); results are whatever the
function returns (picklable dataclasses throughout this package). Per-job
compute time is measured inside the worker and fed into
:class:`~repro.engine.stats.EngineStats` for the utilisation report.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.stats import EngineStats
from repro.obs.trace import span as trace_span

__all__ = ["ShardedExecutor"]

J = TypeVar("J")
R = TypeVar("R")


def _timed_call(func: Callable[[J], R], job: J) -> Tuple[float, R]:
    """Run ``func(job)`` and return (compute seconds, result)."""
    start = time.perf_counter()
    result = func(job)
    return time.perf_counter() - start, result


def _pool_context():
    """Prefer fork (cheap, inherits the parent's modules) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class ShardedExecutor:
    """Dispatches independent jobs, serially or over a process pool.

    Parameters
    ----------
    workers:
        Worker-process count; ``<= 1`` selects the serial path.
    timeout:
        Seconds allowed per pool job before it is retried/degraded.
    """

    def __init__(self, workers: int = 1, timeout: float = 900.0) -> None:
        self.workers = max(1, int(workers))
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def run(
        self,
        func: Callable[[J], R],
        jobs: Sequence[J],
        stats: Optional[EngineStats] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> List[R]:
        """Run every job through ``func``; results come back in order.

        ``progress`` (optional) is invoked as ``progress(done, total)``
        after each job completes, on the dispatching thread — the serve
        layer hooks it to stream job progress to waiting clients. A
        raising callback is swallowed: reporting must never fail a run.
        """
        stats = stats if stats is not None else EngineStats(self.workers)
        if not jobs:
            return []
        report = self._reporter(progress, len(jobs))
        if self.workers <= 1 or len(jobs) <= 1:
            results = []
            for job in jobs:
                results.append(self._run_local(func, job, stats))
                report()
            return results
        return self._run_pool(func, jobs, stats, report)

    @staticmethod
    def _reporter(
        progress: Optional[Callable[[int, int], None]], total: int
    ) -> Callable[[], None]:
        """A zero-argument per-job completion hook around ``progress``."""
        if progress is None:
            return lambda: None
        done = 0

        def report() -> None:
            nonlocal done
            done += 1
            try:
                progress(done, total)
            except Exception:
                pass
        return report

    # ------------------------------------------------------------------
    def _run_local(
        self,
        func: Callable[[J], R],
        job: J,
        stats: EngineStats,
        degraded: bool = False,
    ) -> R:
        elapsed, result = _timed_call(func, job)
        stats.jobs_run += 1
        stats.busy_seconds += elapsed
        if degraded:
            stats.jobs_degraded += 1
        return result

    def _run_pool(
        self,
        func: Callable[[J], R],
        jobs: Sequence[J],
        stats: EngineStats,
        report: Callable[[], None],
    ) -> List[R]:
        with trace_span(
            "engine.pool",
            jobs=len(jobs),
            workers=min(self.workers, len(jobs)),
        ):
            return self._run_pool_traced(func, jobs, stats, report)

    def _run_pool_traced(
        self,
        func: Callable[[J], R],
        jobs: Sequence[J],
        stats: EngineStats,
        report: Callable[[], None],
    ) -> List[R]:
        start = time.perf_counter()
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(jobs)),
            mp_context=_pool_context(),
        )
        pool_alive = True

        def attempt(job: J) -> R:
            future = pool.submit(_timed_call, func, job)
            elapsed, result = future.result(timeout=self.timeout)
            stats.jobs_run += 1
            stats.busy_seconds += elapsed
            return result

        results: List[R] = []

        def push(result: R) -> None:
            results.append(result)
            report()

        try:
            futures = [pool.submit(_timed_call, func, job) for job in jobs]
            for job, future in zip(jobs, futures):
                if not pool_alive:
                    push(self._run_local(func, job, stats, degraded=True))
                    continue
                try:
                    elapsed, result = future.result(timeout=self.timeout)
                    stats.jobs_run += 1
                    stats.busy_seconds += elapsed
                    push(result)
                    continue
                except BrokenProcessPool:
                    pool_alive = False
                    push(self._run_local(func, job, stats, degraded=True))
                    continue
                except (FutureTimeoutError, Exception):
                    stats.jobs_retried += 1
                try:
                    push(attempt(job))
                except BrokenProcessPool:
                    pool_alive = False
                    push(self._run_local(func, job, stats, degraded=True))
                except (FutureTimeoutError, Exception):
                    push(self._run_local(func, job, stats, degraded=True))
        finally:
            # Never block on stragglers (e.g. a hung worker we timed out).
            pool.shutdown(wait=False, cancel_futures=True)
            stats.pool_seconds += time.perf_counter() - start
        return results
