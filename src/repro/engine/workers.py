"""Job functions executed inside worker processes.

Both functions are module-level (picklable by qualified name) and take a
single plain-data job argument, so the executor can ship them over a
``ProcessPoolExecutor`` unchanged and also run them in-process for the
serial path and the degraded-retry path.

Determinism: a population shard covers chip ids ``[start, stop)`` and
every chip's RNG is derived from ``(seed, chip_id)`` alone, so any
sharding of the id range concatenates to the exact serial population.
A simulation job's trace RNG is derived from ``(seed, benchmark)``, so
one job is one complete, self-contained simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.cache_model import CacheCircuitResult
from repro.obs.trace import span as trace_span

__all__ = ["estimate_shard", "population_shard", "simulation_job"]

#: Population shard job: (seed, start chip id, stop chip id).
PopulationJob = Tuple[int, int, int]

#: Simulation job: plain-dict identity (see :func:`simulation_job`).
SimulationJob = Dict[str, object]

#: Estimator shard job: plain-dict stream range (see :func:`estimate_shard`).
EstimateJob = Dict[str, object]


def population_shard(
    job: PopulationJob,
) -> Tuple[List[CacheCircuitResult], List[CacheCircuitResult]]:
    """Evaluate chips ``[start, stop)`` of a Monte Carlo population.

    Returns the (regular, H-YAPD) circuit results for the shard; the
    parent process concatenates shards in order and derives constraints
    over the full population, which makes the result independent of the
    shard layout.
    """
    from repro.yieldmodel.analysis import YieldStudy

    seed, start, stop = job
    with trace_span(
        "worker:population_shard", start=start, stop=stop, seed=seed
    ):
        study = YieldStudy(seed=seed, count=max(stop, 1))
        return study.evaluate_chips(start, stop)


def estimate_shard(job: EstimateJob):
    """Draw and evaluate one tagged estimator chip range.

    ``job`` carries ``seed``, ``tag``, ``start``, ``stop`` and the
    optional die-slot transforms ``shift`` (IS mean tilt, list of
    floats) and ``stratum`` (``[index, strata]``). Chip ``i`` of stream
    ``tag`` always draws from ``spawn(seed, f"{tag}-{i}")``, so any
    sharding of the range concatenates bit-identically — see
    :func:`repro.yieldmodel.estimators.sampling.sample_shard`.
    """
    from repro.yieldmodel.estimators.sampling import sample_shard

    seed = int(job["seed"])
    tag = str(job["tag"])
    start = int(job["start"])
    stop = int(job["stop"])
    shift = job.get("shift")
    stratum = job.get("stratum")
    with trace_span(
        "worker:estimate_shard", tag=tag, start=start, stop=stop, seed=seed
    ):
        return sample_shard(
            seed,
            tag,
            start,
            stop,
            shift=None if shift is None else [float(v) for v in shift],
            stratum=(
                None
                if stratum is None
                else (int(stratum[0]), int(stratum[1]))
            ),
        )


def simulation_job(job: SimulationJob):
    """Run one benchmark under one L1D configuration.

    ``job`` carries ``seed``, ``trace_length``, ``warmup``, ``benchmark``,
    and either ``way_cycles`` (list with ``None`` for disabled ways) or
    ``uniform_latency`` (naive binning), matching
    :func:`repro.experiments.common.simulate_config`. The dispatcher
    also ships the compiled-trace cache key (``ctrace``); the worker
    resolves it against its process-level compiled-trace cache, so one
    (benchmark, seed) stream is generated and packed once per worker
    instead of once per job.
    """
    from repro.cache.setassoc import WayConfig
    from repro.uarch import PAPER_CORE, Simulator
    from repro.workloads import get_compiled_trace, get_profile, trace_key

    seed = int(job["seed"])
    trace_length = int(job["trace_length"])
    warmup = int(job["warmup"])
    benchmark = str(job["benchmark"])
    way_cycles = job.get("way_cycles")
    uniform_latency = job.get("uniform_latency")
    shipped_key = job.get("ctrace")

    with trace_span(
        "worker:simulation", benchmark=benchmark, instructions=trace_length
    ):
        profile = get_profile(benchmark)
        total = warmup + trace_length
        if shipped_key is not None and shipped_key != trace_key(
            profile.name, seed, total
        ):
            raise ValueError(
                f"compiled-trace key mismatch for {benchmark!r}: the "
                "dispatcher and worker disagree on the trace identity"
            )
        trace = get_compiled_trace(profile, seed, total)
        core = PAPER_CORE
        l1d_config = None
        if uniform_latency is not None:
            core = core.replace(predicted_load_latency=int(uniform_latency))
        elif way_cycles is not None:
            l1d_config = WayConfig(
                latencies=tuple(
                    None if cycle is None else int(cycle)
                    for cycle in way_cycles
                )
            )
        simulator = Simulator(
            core=core,
            l1d_config=l1d_config,
            uniform_load_latency=(
                None if uniform_latency is None else int(uniform_latency)
            ),
        )
        return simulator.run(trace, warmup=warmup)
