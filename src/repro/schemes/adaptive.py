"""Adaptive Hybrid (extension beyond the paper's fixed policy).

Section 4.4 observes that the Hybrid cache "has many options to
implement": for a 3-1-0 chip it can disable the 5-cycle way (behaving like
YAPD — cheaper for computation-bound workloads) or keep it enabled at 5
cycles (behaving like VACA — cheaper for memory-intensive workloads), and
then fixes the choice ("keep ways on as long as possible"). This module
implements the adaptive variant the paper sketches but does not evaluate:
given a per-configuration performance estimate for each option, pick the
one with the smaller predicted degradation for the target workload.

The estimator is pluggable; :class:`TableEstimator` wraps measured
degradations (e.g. this reproduction's Table 6 output, or live pipeline
simulations via :mod:`repro.uarch`).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.schemes.base import RescueOutcome, Scheme
from repro.schemes.hybrid import Hybrid
from repro.yieldmodel.classify import ChipCase, VACA_MAX_CYCLES
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["AdaptiveHybrid", "TableEstimator"]

#: An estimator maps (way_cycles with None for disabled ways) to a
#: predicted fractional CPI degradation for the target workload.
Estimator = Callable[[Tuple[Optional[int], ...]], float]


class TableEstimator:
    """Estimator backed by a {configuration description: degradation} table.

    The key is the tuple of post-rescue way cycles with ``None`` for
    disabled ways, sorted so that physically equivalent configurations
    coincide (the pipeline cannot tell way 1 from way 3).
    """

    def __init__(self, table, default: float = 0.0) -> None:
        self._table = {self.canonical(k): v for k, v in table.items()}
        self._default = default

    @staticmethod
    def canonical(
        way_cycles: Tuple[Optional[int], ...]
    ) -> Tuple[Optional[int], ...]:
        """Sort cycles (disabled ways last) to a canonical key."""
        return tuple(
            sorted(way_cycles, key=lambda c: (c is None, c if c is not None else 0))
        )

    def __call__(self, way_cycles: Tuple[Optional[int], ...]) -> float:
        return self._table.get(self.canonical(way_cycles), self._default)


class AdaptiveHybrid(Scheme):
    """Hybrid that picks keep-slow vs disable per predicted degradation.

    Parameters
    ----------
    estimator:
        Predicts fractional CPI degradation of a candidate configuration
        for the target workload.
    """

    name = "Adaptive-Hybrid"

    def __init__(self, estimator: Estimator) -> None:
        self.estimator = estimator
        self._fixed = Hybrid()

    def _candidates(self, case: ChipCase):
        """All single-disable-or-none configurations that meet constraints.

        Only *sensible* disables are considered: a slow way, or the
        leakiest way when the chip violates the power limit — never a
        healthy way.
        """
        # Option A: no power-down (pure VACA behaviour).
        if not case.leakage_violation and max(case.way_cycles) <= VACA_MAX_CYCLES:
            yield None, case.way_cycles
        # Option B: disable exactly one offending way.
        candidates = {
            w
            for w, cycles in enumerate(case.way_cycles)
            if cycles > BASE_ACCESS_CYCLES
        }
        if case.leakage_violation:
            candidates.add(case.max_leakage_way())
        for way in sorted(candidates):
            cycles_ok = all(
                case.way_cycles[w] <= VACA_MAX_CYCLES
                for w in range(case.circuit.num_ways)
                if w != way
            )
            leak_ok = case.constraints.meets_leakage(
                case.leakage_after_disabling_way(way)
            )
            if cycles_ok and leak_ok:
                yield way, tuple(
                    None if w == way else case.way_cycles[w]
                    for w in range(case.circuit.num_ways)
                )

    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)

        best = None
        best_cost = float("inf")
        for disabled_way, way_cycles in self._candidates(case):
            cost = self.estimator(way_cycles)
            if cost < best_cost:
                best, best_cost = (disabled_way, way_cycles), cost
        if best is None:
            return self._lost(case, "no feasible single power-down option")

        disabled_way, way_cycles = best
        note = (
            "kept all ways (VACA mode)"
            if disabled_way is None
            else f"disabled way {disabled_way}"
        )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            disabled_way=disabled_way,
            way_cycles=way_cycles,
            note=f"{note}; predicted degradation {best_cost:.2%}",
        )
