"""On-die measurement models (paper Section 4.1's deployment story).

The paper notes that the offending ways can be identified "during memory
testing right after fabrication and/or on the field using leakage power
sensors" (Kim et al. [20]). Post-fabrication testers see true values;
on-die sensors do not — they quantise and drift. This module models that
measurement layer so the deployment question can be studied: *how much of
YAPD's benefit survives an imperfect sensor?*

:class:`MeasuredChipCase` wraps a true :class:`ChipCase` with a sensor:
the schemes (which only consume the ``ChipCase`` interface) then make
their decisions on measured values while the *verdict* — does the rescued
chip actually meet the limits — is always evaluated on the truth. The
``sensor_error`` analysis in :func:`yield_with_sensor` reports how the
rescue rate degrades with sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from repro.core.rng import spawn
from repro.core.validation import require_non_negative
from repro.yieldmodel.classify import ChipCase

__all__ = ["LeakageSensor", "MeasuredChipCase", "yield_with_sensor"]


@dataclass(frozen=True)
class LeakageSensor:
    """A noisy, quantised per-way leakage sensor.

    Parameters
    ----------
    relative_noise:
        Standard deviation of the multiplicative measurement error.
    quantisation_levels:
        Number of distinct output codes across the measured range
        (Kim et al.'s sensor digitises the leakage current); 0 disables
        quantisation.
    seed:
        Sensor-instance seed (manufacturing calibration lottery).
    """

    relative_noise: float = 0.05
    quantisation_levels: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        require_non_negative(self.relative_noise, "relative_noise")
        require_non_negative(self.quantisation_levels, "quantisation_levels")

    def measure_ways(
        self, chip_id: int, true_values: Tuple[float, ...]
    ) -> Tuple[float, ...]:
        """Measured per-way leakage for one chip (deterministic per chip)."""
        rng = spawn(self.seed, f"sensor-{chip_id}")
        noisy = [
            value * float(np.exp(rng.normal(0.0, self.relative_noise)))
            for value in true_values
        ]
        if not self.quantisation_levels:
            return tuple(noisy)
        step = max(noisy) / self.quantisation_levels or 1.0
        return tuple(round(value / step) * step for value in noisy)


class MeasuredChipCase(ChipCase):
    """A chip case whose *leakage readings* come through a sensor.

    Delay classification is unchanged (speed paths are characterised by
    the tester's clock sweep, which is precise); only the leakage-driven
    decisions — which way is leakiest, whether a rescue's residual
    leakage passes — are taken on measured values. The true case remains
    available as ``truth`` for verdicts.
    """

    def __init__(self, truth: ChipCase, sensor: LeakageSensor) -> None:
        super().__init__(circuit=truth.circuit, constraints=truth.constraints)
        object.__setattr__(self, "truth", truth)
        object.__setattr__(self, "sensor", sensor)

    @cached_property
    def measured_way_leakage(self) -> Tuple[float, ...]:
        return self.sensor.measure_ways(
            self.circuit.chip_id, self.circuit.way_leakages
        )

    def max_leakage_way(self) -> int:
        measured = self.measured_way_leakage
        return max(range(len(measured)), key=lambda w: measured[w])

    def leakage_after_disabling_way(self, way: int) -> float:
        return sum(self.measured_way_leakage) - self.measured_way_leakage[way]


def yield_with_sensor(cases, scheme, sensor: LeakageSensor):
    """Rescue rate of ``scheme`` when decisions go through ``sensor``.

    Returns ``(decisions_saved, actually_saved)``: chips the scheme
    *believed* it saved, and the subset whose true leakage and delay meet
    the limits after the chosen action. The gap is the sensor's cost.
    """
    believed = 0
    actual = 0
    for case in cases:
        if case.passes:
            continue
        measured = MeasuredChipCase(case, sensor)
        outcome = scheme.rescue(measured)
        if not outcome.saved:
            continue
        believed += 1
        if outcome.disabled_way is not None:
            true_leak = case.leakage_after_disabling_way(outcome.disabled_way)
            delay_ok = all(
                case.constraints.meets_delay(way.delay)
                for way in case.circuit.ways
                if way.way != outcome.disabled_way
            )
        else:
            true_leak = case.circuit.total_leakage
            delay_ok = max(case.way_cycles) <= (outcome.max_cycles or 4)
        if delay_ok and case.constraints.meets_leakage(true_leak):
            actual += 1
    return believed, actual
