"""Variable-latency Cache Architecture (paper Section 4.3).

VACA keeps every way powered but lets slow ways complete in 5 cycles
instead of 4. Load-bypass buffers with a single entry in front of each
functional unit absorb exactly one extra cycle, so a way needing 6 or more
cycles is beyond rescue, and because nothing is powered down VACA cannot
fix a leakage violation at all.

:class:`DeepVACA` generalises to multi-entry buffers — the extension the
paper discusses and rejects ("the additional yield optimizations ... are
minor and the performance degradation can be very high"); the
``ablation_lbb`` experiment quantifies that trade-off.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.schemes.base import RescueOutcome, Scheme
from repro.yieldmodel.classify import ChipCase, VACA_MAX_CYCLES
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["VACA", "DeepVACA"]


class VACA(Scheme):
    """Tolerate 5-cycle ways via load-bypass buffers; no power-down."""

    name = "VACA"

    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)
        if case.leakage_violation:
            return self._lost(case, "VACA cannot reduce leakage")
        slowest = max(case.way_cycles)
        if slowest > VACA_MAX_CYCLES:
            return self._lost(
                case,
                f"a way needs {slowest} cycles; load-bypass buffers allow "
                f"at most {VACA_MAX_CYCLES}",
            )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            way_cycles=case.way_cycles,
            note="slow ways served at 5 cycles",
        )


class DeepVACA(Scheme):
    """VACA with ``slack``-entry load-bypass buffers (paper Section 4.3's
    rejected extension: tolerate ways up to ``4 + slack`` cycles).

    Parameters
    ----------
    slack:
        Extra cycles the buffers can absorb (1 reproduces :class:`VACA`).
    """

    def __init__(self, slack: int = 2) -> None:
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.slack = slack
        self.name = f"VACA+{slack}"

    @property
    def max_cycles(self) -> int:
        """Slowest tolerable way latency."""
        return BASE_ACCESS_CYCLES + self.slack

    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)
        if case.leakage_violation:
            return self._lost(case, "cannot reduce leakage")
        slowest = max(case.way_cycles)
        if slowest > self.max_cycles:
            return self._lost(
                case,
                f"a way needs {slowest} cycles; {self.slack}-entry buffers "
                f"allow at most {self.max_cycles}",
            )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            way_cycles=case.way_cycles,
            note=f"slow ways served at up to {self.max_cycles} cycles",
        )
