"""The paper's yield-aware cache schemes (Section 4).

Every scheme consumes a :class:`~repro.yieldmodel.classify.ChipCase`
(one manufactured chip held against the yield constraints) and produces a
:class:`~repro.schemes.base.RescueOutcome` saying whether the chip can be
shipped, and in what configuration:

* :class:`~repro.schemes.yapd.YAPD` — power down one delay- or
  leakage-offending vertical way (Selective Cache Ways + Gated-Vdd).
* :class:`~repro.schemes.hyapd.HYAPD` — power down one *horizontal* band
  across all ways (requires the H-YAPD cache organisation).
* :class:`~repro.schemes.vaca.VACA` — keep slow ways enabled at 5 cycles
  using load-bypass buffers; cannot fix leakage.
* :class:`~repro.schemes.hybrid.Hybrid` / ``HybridHorizontal`` — VACA plus
  at most one (vertical / horizontal) power-down.
* :class:`~repro.schemes.binning.NaiveBinning` — the Section 4.5 baseline:
  re-bin the whole cache at a uniformly higher latency.
* :class:`~repro.schemes.adaptive.AdaptiveHybrid` — extension beyond the
  paper's fixed policy: picks disable-vs-slow per workload.
* :class:`~repro.schemes.vaca.DeepVACA` — multi-entry load-bypass
  buffers (the paper's discussed-and-rejected extension).
* :mod:`repro.schemes.sensors` — on-die leakage-sensor measurement layer
  for studying the paper's in-the-field deployment story.
"""

from repro.schemes.base import RescueOutcome, Scheme
from repro.schemes.yapd import YAPD
from repro.schemes.hyapd import HYAPD
from repro.schemes.vaca import DeepVACA, VACA
from repro.schemes.hybrid import Hybrid, HybridHorizontal
from repro.schemes.binning import NaiveBinning
from repro.schemes.adaptive import AdaptiveHybrid

__all__ = [
    "RescueOutcome",
    "Scheme",
    "YAPD",
    "HYAPD",
    "VACA",
    "DeepVACA",
    "Hybrid",
    "HybridHorizontal",
    "NaiveBinning",
    "AdaptiveHybrid",
]
