"""Yield-Aware Power-Down (paper Section 4.1).

YAPD permanently gates off at most one cache way (Selective Cache Ways
combined with Gated-Vdd, so the way's decoders, precharge and sense
circuits stop leaking too):

* a way that violates the delay limit is turned off;
* if the cache violates the leakage limit, the highest-leakage way is
  turned off.

The 2% performance-degradation budget (Section 4.2) allows only a single
way to be disabled, so chips with two or more delay-violating ways — or
whose leakage remains excessive after removing the worst way — stay lost.
"""

from __future__ import annotations

from typing import Optional

from repro.schemes.base import RescueOutcome, Scheme
from repro.yieldmodel.classify import ChipCase
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["YAPD"]


class YAPD(Scheme):
    """Power down one vertical way to fix a delay or leakage violation."""

    name = "YAPD"

    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)

        target = self._pick_target(case)
        if target is None:
            return self._lost(case, self._loss_note(case))

        # Re-check both constraints with the target way gated off.
        remaining_delay_ok = all(
            case.constraints.meets_delay(way.delay)
            for way in case.circuit.ways
            if way.way != target
        )
        leakage_ok = case.constraints.meets_leakage(
            case.leakage_after_disabling_way(target)
        )
        if not (remaining_delay_ok and leakage_ok):
            return self._lost(case, self._loss_note(case))

        way_cycles = tuple(
            None if w == target else BASE_ACCESS_CYCLES
            for w in range(case.circuit.num_ways)
        )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            disabled_way=target,
            way_cycles=way_cycles,
            note=f"disabled way {target}",
        )

    # ------------------------------------------------------------------
    def _pick_target(self, case: ChipCase) -> Optional[int]:
        """Choose the single way to gate off, or None when impossible."""
        violators = case.delay_violating_ways
        if len(violators) > 1:
            return None
        if violators:
            # A single slow way: it must go. If leakage is also violated,
            # the subsequent feasibility check decides whether removing
            # this way suffices.
            return violators[0]
        # Leakage-only violation: remove the leakiest way.
        return case.max_leakage_way()

    def _loss_note(self, case: ChipCase) -> str:
        violators = case.delay_violating_ways
        if len(violators) > 1:
            return f"{len(violators)} ways violate delay; only one may be disabled"
        if case.leakage_violation:
            return "leakage remains above limit after disabling one way"
        return "constraints unmet after disabling one way"
