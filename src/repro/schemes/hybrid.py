"""Hybrid schemes (paper Section 4.4): VACA plus one power-down.

The Hybrid cache implements both the load-bypass buffers of VACA and the
power-down machinery of YAPD (or H-YAPD). The paper's fixed policy keeps
ways powered as long as possible: a way (or horizontal band) is disabled
only when its delay exceeds 5 cycles or the cache violates the leakage
limit, and — like YAPD — at most one unit may ever be disabled.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.schemes.base import RescueOutcome, Scheme
from repro.schemes.hyapd import HYAPD
from repro.yieldmodel.classify import ChipCase, VACA_MAX_CYCLES

__all__ = ["Hybrid", "HybridHorizontal"]


class Hybrid(Scheme):
    """VACA latencies plus at most one vertical way power-down."""

    name = "Hybrid"

    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)

        # VACA mode first: keep everything powered if 5 cycles suffice.
        if not case.leakage_violation and max(case.way_cycles) <= VACA_MAX_CYCLES:
            return RescueOutcome(
                scheme=self.name,
                saved=True,
                configuration=case.configuration,
                way_cycles=case.way_cycles,
                note="slow ways served at 5 cycles (no power-down needed)",
            )

        target = self._pick_target(case)
        if target is None:
            return self._lost(case, self._loss_note(case))

        way_cycles: Tuple[Optional[int], ...] = tuple(
            None if w == target else case.way_cycles[w]
            for w in range(case.circuit.num_ways)
        )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            disabled_way=target,
            way_cycles=way_cycles,
            note=f"disabled way {target}, remaining ways at up to 5 cycles",
        )

    # ------------------------------------------------------------------
    def _feasible(self, case: ChipCase, way: int) -> bool:
        """Would disabling ``way`` satisfy both constraints?"""
        cycles_ok = all(
            case.way_cycles[w] <= VACA_MAX_CYCLES
            for w in range(case.circuit.num_ways)
            if w != way
        )
        leakage_ok = case.constraints.meets_leakage(
            case.leakage_after_disabling_way(way)
        )
        return cycles_ok and leakage_ok

    def _pick_target(self, case: ChipCase) -> Optional[int]:
        """Choose the single way to disable, honouring the paper's policy.

        Preference order: the (single) way needing 6+ cycles, then the
        leakiest way; either choice must actually repair the chip.
        """
        too_slow = [
            w for w, c in enumerate(case.way_cycles) if c > VACA_MAX_CYCLES
        ]
        if len(too_slow) > 1:
            return None
        candidates = []
        if too_slow:
            candidates.append(too_slow[0])
        if case.leakage_violation:
            leakiest = case.max_leakage_way()
            if leakiest not in candidates:
                candidates.append(leakiest)
        for way in candidates:
            if self._feasible(case, way):
                return way
        return None

    def _loss_note(self, case: ChipCase) -> str:
        too_slow = [
            w for w, c in enumerate(case.way_cycles) if c > VACA_MAX_CYCLES
        ]
        if len(too_slow) > 1:
            return f"{len(too_slow)} ways need 6+ cycles; only one may be disabled"
        if case.leakage_violation:
            return "leakage remains above limit after disabling one way"
        return "no single power-down repairs the chip"


class HybridHorizontal(Scheme):
    """VACA latencies plus at most one horizontal band power-down.

    Parameters
    ----------
    peripheral_save_fraction:
        See :class:`~repro.schemes.hyapd.HYAPD`.
    """

    name = "Hybrid-H"

    def __init__(self, peripheral_save_fraction: float = 0.5) -> None:
        self._hyapd = HYAPD(peripheral_save_fraction)

    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)

        if not case.leakage_violation and max(case.way_cycles) <= VACA_MAX_CYCLES:
            return RescueOutcome(
                scheme=self.name,
                saved=True,
                configuration=case.configuration,
                way_cycles=case.way_cycles,
                note="slow ways served at 5 cycles (no power-down needed)",
            )

        best_band: Optional[int] = None
        best_leakage = float("inf")
        best_cycles: Optional[Tuple[int, ...]] = None
        for band in range(case.circuit.num_bands):
            cycles = case.way_cycles_without_band(band)
            if max(cycles) > VACA_MAX_CYCLES:
                continue
            leakage = self._hyapd.leakage_after_disabling_band(case, band)
            if not case.constraints.meets_leakage(leakage):
                continue
            if leakage < best_leakage:
                best_band, best_leakage, best_cycles = band, leakage, cycles

        if best_band is None or best_cycles is None:
            return self._lost(
                case, "no single horizontal band repairs the chip"
            )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            disabled_band=best_band,
            way_cycles=best_cycles,
            note=(
                f"disabled horizontal band {best_band}, "
                "remaining paths at up to 5 cycles"
            ),
        )
