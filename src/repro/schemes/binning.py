"""Naive latency re-binning (paper Section 4.5).

The easiest way to ship a delay-violating chip is to re-bin it: tell the
scheduler that *every* load takes 5 (or 6) cycles, so even the slowest way
meets timing. No hardware changes, but every access — including those to
perfectly fast ways — pays the extra latency, which the paper measures at
6.42% average CPI degradation for one extra cycle and 12.62% for two.
Leakage violations are untouched.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.schemes.base import RescueOutcome, Scheme
from repro.yieldmodel.classify import ChipCase
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["NaiveBinning"]


class NaiveBinning(Scheme):
    """Run the whole cache at a uniformly higher access latency.

    Parameters
    ----------
    target_cycles:
        The uniform access latency of the new bin (5 or 6 in the paper).
    """

    def __init__(self, target_cycles: int = BASE_ACCESS_CYCLES + 1) -> None:
        if target_cycles < BASE_ACCESS_CYCLES:
            raise ConfigurationError(
                f"target_cycles must be >= {BASE_ACCESS_CYCLES}"
            )
        self.target_cycles = target_cycles
        self.name = f"Binning@{target_cycles}"

    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)
        if case.leakage_violation:
            return self._lost(case, "re-binning cannot reduce leakage")
        if max(case.way_cycles) > self.target_cycles:
            return self._lost(
                case,
                f"a way needs more than {self.target_cycles} cycles",
            )
        way_cycles = tuple(
            self.target_cycles for _ in range(case.circuit.num_ways)
        )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            way_cycles=way_cycles,
            note=f"entire cache re-binned at {self.target_cycles} cycles",
        )
