"""Scheme interface and rescue outcomes.

A scheme is a pure function from a :class:`ChipCase` to a
:class:`RescueOutcome`. Outcomes carry the post-rescue cache shape — which
way or horizontal band was powered down and the access cycles of every
surviving way — which is exactly what the functional cache model and the
pipeline simulator need to measure the performance cost of the rescue.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.yieldmodel.classify import ChipCase

__all__ = ["RescueOutcome", "Scheme"]


@dataclass(frozen=True)
class RescueOutcome:
    """Result of applying a scheme to one failing (or passing) chip.

    Attributes
    ----------
    scheme:
        Name of the scheme that produced this outcome.
    saved:
        True when the chip meets all constraints after the rescue.
    configuration:
        The chip's *pre-rescue* Table 6 way-latency key (e.g. ``"3-1-0"``),
        recorded so saved chips can be grouped by configuration.
    disabled_way:
        Index of the powered-down vertical way, if any.
    disabled_band:
        Index of the powered-down horizontal band, if any.
    way_cycles:
        Post-rescue access cycles per way; ``None`` entries are disabled
        ways. ``None`` overall when the chip is lost.
    note:
        Human-readable explanation (why lost, or what was done).
    """

    scheme: str
    saved: bool
    configuration: str
    disabled_way: Optional[int] = None
    disabled_band: Optional[int] = None
    way_cycles: Optional[Tuple[Optional[int], ...]] = None
    note: str = ""

    def __post_init__(self) -> None:
        if self.disabled_way is not None and self.disabled_band is not None:
            raise ConfigurationError(
                "a rescue cannot disable both a way and a band"
            )
        if self.saved and self.way_cycles is None:
            raise ConfigurationError("a saved chip must carry its way cycles")

    @property
    def enabled_ways(self) -> Tuple[int, ...]:
        """Indices of ways still powered after the rescue."""
        if self.way_cycles is None:
            return ()
        return tuple(
            w for w, cycles in enumerate(self.way_cycles) if cycles is not None
        )

    @property
    def max_cycles(self) -> Optional[int]:
        """Slowest enabled way's latency, or None when lost."""
        if self.way_cycles is None:
            return None
        enabled = [c for c in self.way_cycles if c is not None]
        return max(enabled) if enabled else None


class Scheme(abc.ABC):
    """A yield-aware rescue scheme."""

    #: Display name used in tables; subclasses override.
    name: str = "scheme"

    @abc.abstractmethod
    def rescue(self, case: ChipCase) -> RescueOutcome:
        """Attempt to rescue ``case``; never mutates it."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _pass_through(self, case: ChipCase) -> RescueOutcome:
        """Outcome for a chip that needs no intervention."""
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            way_cycles=case.way_cycles,
            note="meets all constraints unmodified",
        )

    def _lost(self, case: ChipCase, note: str) -> RescueOutcome:
        """Outcome for a chip the scheme cannot save."""
        return RescueOutcome(
            scheme=self.name,
            saved=False,
            configuration=case.configuration,
            note=note,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
