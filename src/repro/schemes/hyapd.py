"""Horizontal Yield-Aware Power-Down (paper Section 4.2).

H-YAPD powers down one *horizontal* band — the same physical row region of
every way — instead of a vertical way. Because intra-die variation is
spatially correlated, the paths that violate the delay limit tend to sit
in the same band of every way, so removing a single band can repair
multi-way delay violations that YAPD (limited to one whole way) cannot.
The modified post-decoders guarantee each address still maps to exactly
``ways - 1`` candidate ways, so the hit/miss behaviour equals YAPD's.

Leakage accounting: gating a band removes that band's cell array in every
way, but the paper notes parts of the decoders, precharge and sense
circuits cannot be turned off completely — modelled by
``peripheral_save_fraction`` of the band's proportional share of the
peripheral leakage.

H-YAPD must be applied to a :class:`ChipCase` built from the H-YAPD cache
organisation (its 2.5% slower access paths); the analysis layer takes care
of that pairing.
"""

from __future__ import annotations

from typing import Optional

from repro.core.validation import require_in_range
from repro.schemes.base import RescueOutcome, Scheme
from repro.yieldmodel.classify import ChipCase
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES

__all__ = ["HYAPD"]


class HYAPD(Scheme):
    """Power down one horizontal band across all ways.

    Parameters
    ----------
    peripheral_save_fraction:
        Fraction of a band's proportional share of way-peripheral leakage
        that gating the band actually saves (the rest cannot be turned
        off; paper Section 4.2).
    """

    name = "H-YAPD"

    def __init__(self, peripheral_save_fraction: float = 0.5) -> None:
        require_in_range(
            peripheral_save_fraction, 0.0, 1.0, "peripheral_save_fraction"
        )
        self.peripheral_save_fraction = peripheral_save_fraction

    # ------------------------------------------------------------------
    def leakage_after_disabling_band(self, case: ChipCase, band: int) -> float:
        """Total leakage (W) with horizontal band ``band`` gated off."""
        circuit = case.circuit
        array_saving = circuit.band_array_leakage(band)
        peripheral_saving = (
            self.peripheral_save_fraction
            * circuit.total_peripheral_leakage()
            / circuit.num_bands
        )
        return circuit.total_leakage - array_saving - peripheral_saving

    def _band_feasible(self, case: ChipCase, band: int) -> Optional[float]:
        """Post-rescue leakage if gating ``band`` satisfies everything."""
        delays_ok = all(
            case.constraints.meets_delay(way.delay_without_band(band))
            for way in case.circuit.ways
        )
        if not delays_ok:
            return None
        leakage = self.leakage_after_disabling_band(case, band)
        if not case.constraints.meets_leakage(leakage):
            return None
        return leakage

    # ------------------------------------------------------------------
    def rescue(self, case: ChipCase) -> RescueOutcome:
        if case.passes:
            return self._pass_through(case)

        best_band: Optional[int] = None
        best_leakage = float("inf")
        for band in range(case.circuit.num_bands):
            leakage = self._band_feasible(case, band)
            if leakage is not None and leakage < best_leakage:
                best_band, best_leakage = band, leakage

        if best_band is None:
            return self._lost(case, "no single horizontal band repairs the chip")

        way_cycles = tuple(
            BASE_ACCESS_CYCLES for _ in range(case.circuit.num_ways)
        )
        return RescueOutcome(
            scheme=self.name,
            saved=True,
            configuration=case.configuration,
            disabled_band=best_band,
            way_cycles=way_cycles,
            note=f"disabled horizontal band {best_band}",
        )
