"""Synthetic trace generation from benchmark profiles.

The generator emits a register-dependency-annotated dynamic instruction
stream whose statistics follow a :class:`BenchmarkProfile`:

* **Instruction mix** — loads, stores, branches, int/fp compute with the
  profile's multiply share.
* **Register dependencies** — each source register refers to the ``k``-th
  most recent producer, with ``k`` geometric(``dep_prob``): high
  ``dep_prob`` yields tight, low-ILP chains, which is what makes a
  1-cycle-later load hurt.
* **Data addresses** — a mixture of (a) sequential streams: several
  concurrent walkers striding through circular buffers, whose L1 miss
  ratio is ~``stride/block`` when the buffer outgrows the cache; (b)
  random references with power-law reuse over the working set; and (c)
  pointer chasing over a node region, where each chase load's address
  register is the previous chase load's destination, serialising them
  through the cache.
* **Program counters** — loop-structured: sequential fetch within a
  current loop body, occasional migrations across the code footprint
  (drives the L1I model without thrashing it).

Generation is deterministic per (profile, seed).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.rng import spawn
from repro.core.validation import require_positive
from repro.uarch.isa import OpClass
from repro.uarch.trace import TraceInstruction
from repro.workloads.profiles import BenchmarkProfile

__all__ = ["TraceGenerator"]

#: Registers reserved as pointer-chase address registers.
_CHASE_REGS = (28, 29, 30, 31)
#: General destination registers (round-robin).
_GP_REGS = tuple(range(28))
#: Number of concurrent stream walkers.
_NUM_STREAMS = 4
#: Data regions are disjoint per kind.
_STREAM_BASE = 0x1000_0000
_RANDOM_BASE = 0x2000_0000
_CHASE_BASE = 0x3000_0000
_CODE_BASE = 0x0040_0000
#: Pointer-chase node stride. Deliberately not a power of two (1.5 cache
#: blocks) so chase nodes spread over all sets instead of aliasing into
#: the even ones.
_CHASE_NODE = 96
#: Taken probability of a conditional branch.
_TAKEN_PROB = 0.4
#: Loop body size for the PC model (bytes) and migration probability.
_LOOP_BYTES = 1024
_LOOP_MIGRATE_PROB = 0.03
#: Probability that the next value-consuming instruction uses the most
#: recent load's result (load-to-use criticality).
_LOAD_USE_PROB = 0.85


class TraceGenerator:
    """Generates deterministic synthetic traces for one benchmark.

    Parameters
    ----------
    profile:
        The benchmark profile to imitate.
    seed:
        Experiment seed; combined with the profile name, so every
        (benchmark, seed) pair yields a stable trace.
    """

    def __init__(self, profile: BenchmarkProfile, seed: int = 2006) -> None:
        self.profile = profile
        self.seed = seed

    # ------------------------------------------------------------------
    def generate(self, length: int) -> Iterator[TraceInstruction]:
        """Yield ``length`` dynamic instructions."""
        require_positive(length, "length")
        p = self.profile
        rng = spawn(self.seed, f"trace-{p.name}")

        recent: List[int] = []  # recent destination registers, newest last
        gp_cursor = 0
        chase_cursor = 0
        # The profile's stream_buffer is the *total* streaming footprint,
        # split across the concurrent walkers (each walks its own region).
        # Walkers start at independent random offsets: lock-stepped
        # walkers would all sit in the same cache set at all times and
        # artificially demand one way per stream.
        stream_region = max(p.stream_buffer // _NUM_STREAMS, p.stream_stride)
        steps = max(stream_region // p.stream_stride, 1)
        stream_offsets = [
            int(rng.integers(0, steps)) * p.stream_stride
            for _ in range(_NUM_STREAMS)
        ]
        stream_cursor = 0
        ws_units = max(p.working_set // 8, 1)
        chase_nodes = max(p.chase_region // _CHASE_NODE, 1)
        pc = _CODE_BASE
        loop_base = _CODE_BASE
        loop_pos = 0

        batch = 8192
        u_kind = rng.random(batch)
        u_misc = rng.random(batch)
        u_addr = rng.random(batch)
        geo = rng.geometric(p.dep_prob, batch)
        cursor = 0

        last_load_dest: List[int] = []  # at most one pending load result

        def pick_sources(count: int) -> tuple:
            srcs = []
            for i in range(count):
                # Load-to-use bias: real code consumes a loaded value almost
                # immediately, which is what puts loads on the critical
                # path (and what VACA's extra cycle perturbs).
                if last_load_dest and float(u_misc[(cursor + i + 1) % batch]) < _LOAD_USE_PROB:
                    srcs.append(last_load_dest.pop())
                    continue
                if not recent:
                    srcs.append(_GP_REGS[0])
                    continue
                depth = int(geo[(cursor + i) % batch])
                srcs.append(recent[-min(depth, len(recent))])
            return tuple(srcs)

        def next_dest() -> int:
            nonlocal gp_cursor
            reg = _GP_REGS[gp_cursor % len(_GP_REGS)]
            gp_cursor += 1
            return reg

        def stream_address() -> int:
            nonlocal stream_cursor
            idx = stream_cursor % _NUM_STREAMS
            stream_cursor += 1
            offset = stream_offsets[idx]
            stream_offsets[idx] = (offset + p.stream_stride) % stream_region
            return _STREAM_BASE + idx * 0x0100_0000 + offset

        def random_address(draw: float) -> int:
            unit = int(ws_units * (draw**p.locality))
            return _RANDOM_BASE + (unit % ws_units) * 8

        emitted = 0
        while emitted < length:
            if cursor >= batch:
                u_kind = rng.random(batch)
                u_misc = rng.random(batch)
                u_addr = rng.random(batch)
                geo = rng.geometric(p.dep_prob, batch)
                cursor = 0
            kind = float(u_kind[cursor])
            misc = float(u_misc[cursor])
            addr_draw = float(u_addr[cursor])

            # Loop-structured PC: walk the body, wrap, rarely migrate.
            loop_pos = (loop_pos + 4) % _LOOP_BYTES
            pc = loop_base + loop_pos

            if kind < p.load_frac:
                if misc < p.stream_frac:
                    instr = TraceInstruction(
                        op=OpClass.LOAD,
                        dest=next_dest(),
                        srcs=pick_sources(1),
                        address=stream_address(),
                        pc=pc,
                    )
                elif misc < p.stream_frac + p.chase_frac:
                    # One serialized chain per chase register: chain k's
                    # next hop depends on chain k's previous hop, so the
                    # chains run in parallel with each other, like a real
                    # pointer workload walking several lists at once. The
                    # profile decides how many chains run concurrently.
                    reg = _CHASE_REGS[chase_cursor % p.chase_chains]
                    chase_cursor += 1
                    instr = TraceInstruction(
                        op=OpClass.LOAD,
                        dest=reg,
                        srcs=(reg,),
                        address=_CHASE_BASE
                        + int(addr_draw * chase_nodes) * _CHASE_NODE,
                        pc=pc,
                    )
                else:
                    instr = TraceInstruction(
                        op=OpClass.LOAD,
                        dest=next_dest(),
                        srcs=pick_sources(1),
                        address=random_address(addr_draw),
                        pc=pc,
                    )
                if instr.dest is not None:
                    recent.append(instr.dest)
                    last_load_dest.clear()
                    last_load_dest.append(instr.dest)
            elif kind < p.load_frac + p.store_frac:
                if addr_draw < p.stream_frac:
                    address = stream_address()
                else:
                    address = random_address(addr_draw)
                instr = TraceInstruction(
                    op=OpClass.STORE,
                    srcs=pick_sources(2),
                    address=address,
                    pc=pc,
                )
            elif kind < p.load_frac + p.store_frac + p.branch_frac:
                if addr_draw < _LOOP_MIGRATE_PROB:
                    loop_base = _CODE_BASE + (
                        int((addr_draw / _LOOP_MIGRATE_PROB) * p.code_footprint)
                        & ~(_LOOP_BYTES - 1)
                    ) % max(p.code_footprint, _LOOP_BYTES)
                    loop_pos = 0
                elif addr_draw < _TAKEN_PROB:
                    loop_pos = 0  # loop back-edge
                instr = TraceInstruction(
                    op=OpClass.BRANCH,
                    srcs=pick_sources(1),
                    pc=pc,
                    mispredicted=misc < p.mispredict_rate,
                )
            else:
                fp = misc < p.fp_frac
                mult = addr_draw < p.mult_frac
                if fp:
                    op = OpClass.FMULT if mult else OpClass.FALU
                else:
                    op = OpClass.IMULT if mult else OpClass.IALU
                dest = next_dest()
                instr = TraceInstruction(
                    op=op, dest=dest, srcs=pick_sources(2), pc=pc
                )
                recent.append(dest)

            if len(recent) > 64:
                del recent[: len(recent) - 64]
            cursor += 1
            emitted += 1
            yield instr
