"""Per-benchmark workload profiles (SPEC2000 stand-ins).

Each profile parameterises the trace generator. Values are synthetic but
chosen to span published qualitative characterisations of SPEC2000:
``mcf`` is a pointer-chasing memory hog, ``art``/``swim``/``lucas`` stream
over large arrays, ``crafty``/``vortex`` live in the caches with branchy
integer code, ``equake``/``ammp`` sit in between, and so on. The paper's
experiments depend on the *spread* of memory-boundedness and
load-dependence across the suite rather than on any single benchmark's
absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.core.validation import require_in_range, require_positive

__all__ = [
    "BenchmarkProfile",
    "SPEC2000_INT",
    "SPEC2000_FP",
    "SPEC2000_ALL",
    "get_profile",
]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Trace-generation parameters for one benchmark.

    Attributes
    ----------
    name:
        SPEC2000 benchmark name this profile imitates.
    suite:
        ``"int"`` or ``"fp"``.
    load_frac, store_frac, branch_frac:
        Dynamic instruction mix; the remainder is compute.
    fp_frac:
        Share of compute operations that are floating point.
    mult_frac:
        Share of (int or fp) compute that uses the long-latency multiply
        pipe.
    mispredict_rate:
        Mispredictions per branch.
    dep_prob:
        Geometric parameter of dependency distance: higher means sources
        come from more recent producers (tighter chains, lower ILP).
    working_set:
        Bytes of the randomly revisited data region.
    locality:
        Reuse skew exponent (>1 concentrates accesses on a hot subset).
    stream_frac:
        Fraction of loads that stream sequentially (stride accesses).
    chase_frac:
        Fraction of loads that pointer-chase (serialised chains through
        the cache).
    code_footprint:
        Bytes of instruction memory touched (drives the L1I model).
    stream_buffer:
        Total bytes the sequential streams walk before wrapping; buffers
        larger than the L1 keep generating cold misses (streaming codes),
        small ones become resident.
    stream_stride:
        Bytes between consecutive stream elements; with 32 B blocks the
        stream's L1 miss ratio is roughly stride/32 once the buffer
        exceeds the cache.
    chase_region:
        Bytes the pointer-chase walks over (64 B nodes); large regions
        (mcf) miss constantly, small ones become resident.
    """

    name: str
    suite: str
    load_frac: float
    store_frac: float
    branch_frac: float
    fp_frac: float
    mult_frac: float
    mispredict_rate: float
    dep_prob: float
    working_set: int
    locality: float
    stream_frac: float
    chase_frac: float
    code_footprint: int = 32 * units.KB
    stream_buffer: int = 8 * units.KB
    stream_stride: int = 4
    chase_region: int = 32 * units.KB
    chase_chains: int = 2

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ConfigurationError(f"unknown suite {self.suite!r}")
        for field_name in ("load_frac", "store_frac", "branch_frac"):
            require_in_range(getattr(self, field_name), 0.0, 0.6, field_name)
        if self.load_frac + self.store_frac + self.branch_frac >= 0.9:
            raise ConfigurationError("instruction mix leaves no compute")
        require_in_range(self.fp_frac, 0.0, 1.0, "fp_frac")
        require_in_range(self.mult_frac, 0.0, 1.0, "mult_frac")
        require_in_range(self.mispredict_rate, 0.0, 0.5, "mispredict_rate")
        require_in_range(self.dep_prob, 0.05, 0.95, "dep_prob")
        require_positive(self.working_set, "working_set")
        require_in_range(self.locality, 0.5, 8.0, "locality")
        require_in_range(self.stream_frac, 0.0, 1.0, "stream_frac")
        require_in_range(self.chase_frac, 0.0, 1.0, "chase_frac")
        if self.stream_frac + self.chase_frac > 1.0:
            raise ConfigurationError("stream_frac + chase_frac must be <= 1")
        require_positive(self.code_footprint, "code_footprint")
        require_positive(self.stream_buffer, "stream_buffer")
        require_positive(self.stream_stride, "stream_stride")
        require_positive(self.chase_region, "chase_region")
        require_in_range(self.chase_chains, 1, 4, "chase_chains")

    @property
    def compute_frac(self) -> float:
        """Fraction of instructions that are plain compute."""
        return 1.0 - self.load_frac - self.store_frac - self.branch_frac


def _p(name, suite, load, store, branch, fp, mult, mispred, dep, ws_kb,
       loc, stream, chase, code_kb=32, sbuf_kb=8, stride=4,
       chase_kb=32, chains=2) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite=suite,
        load_frac=load,
        store_frac=store,
        branch_frac=branch,
        fp_frac=fp,
        mult_frac=mult,
        mispredict_rate=mispred,
        dep_prob=dep,
        working_set=int(ws_kb * units.KB),
        locality=loc,
        stream_frac=stream,
        chase_frac=chase,
        code_footprint=int(code_kb * units.KB),
        stream_buffer=int(sbuf_kb * units.KB),
        stream_stride=stride,
        chase_region=int(chase_kb * units.KB),
        chase_chains=chains,
    )


#: 11 integer benchmarks (the paper's SPECint selection).
#: Columns: load store branch fp mult mispred dep ws(KB) loc stream chase
#:          code(KB) streambuf(KB) stride chase(KB)
SPEC2000_INT: Tuple[BenchmarkProfile, ...] = (
    _p("gzip",    "int", 0.24, 0.10, 0.17, 0.00, 0.02, 0.06, 0.30,   6, 2.6, 0.35, 0.05, 32, 128, 2,   4),
    _p("vpr",     "int", 0.28, 0.11, 0.14, 0.05, 0.03, 0.09, 0.30,   4, 2.6, 0.15, 0.20, 32,   4, 4,   3),
    _p("gcc",     "int", 0.26, 0.13, 0.16, 0.00, 0.02, 0.08, 0.30,   5, 2.6, 0.10, 0.15, 96,   4, 4,   3),
    _p("mcf",     "int", 0.34, 0.10, 0.17, 0.00, 0.01, 0.09, 0.35,  48, 1.2, 0.05, 0.40, 32, 256, 8, 1600, 4),
    _p("crafty",  "int", 0.27, 0.09, 0.13, 0.00, 0.03, 0.08, 0.28,   6, 2.8, 0.10, 0.05, 64,   4, 4,   4),
    _p("parser",  "int", 0.26, 0.11, 0.16, 0.00, 0.02, 0.08, 0.30,   4, 2.6, 0.10, 0.30, 32,   4, 4,   3),
    _p("perlbmk", "int", 0.25, 0.14, 0.15, 0.00, 0.02, 0.07, 0.30,   7, 2.4, 0.10, 0.15, 96,   4, 4,   4),
    _p("gap",     "int", 0.24, 0.12, 0.14, 0.00, 0.04, 0.05, 0.30,   5, 2.6, 0.20, 0.10, 32,  16, 3,   3),
    _p("vortex",  "int", 0.28, 0.15, 0.14, 0.00, 0.01, 0.05, 0.28,   7, 2.4, 0.15, 0.10, 128,  8, 4,   4),
    _p("bzip2",   "int", 0.25, 0.10, 0.14, 0.00, 0.02, 0.07, 0.32,   5, 2.6, 0.40, 0.05, 32, 192, 3,   3),
    _p("twolf",   "int", 0.27, 0.09, 0.14, 0.05, 0.03, 0.10, 0.30,   4, 2.6, 0.10, 0.25, 32,   4, 4,   3),
)

#: 13 floating-point benchmarks (the paper's SPECfp selection).
SPEC2000_FP: Tuple[BenchmarkProfile, ...] = (
    _p("wupwise", "fp", 0.22, 0.09, 0.05, 0.75, 0.18, 0.02, 0.28,   4, 2.6, 0.55, 0.00, 32,  96,  8,   5),
    _p("swim",    "fp", 0.26, 0.11, 0.02, 0.85, 0.15, 0.01, 0.28,   4, 2.6, 0.80, 0.00, 32, 760,  8,   5),
    _p("mgrid",   "fp", 0.30, 0.07, 0.02, 0.85, 0.15, 0.01, 0.28,   4, 2.6, 0.75, 0.00, 32, 384,  8,   5),
    _p("applu",   "fp", 0.26, 0.10, 0.03, 0.80, 0.18, 0.01, 0.28,   4, 2.6, 0.70, 0.00, 32, 480,  8,   5),
    _p("mesa",    "fp", 0.24, 0.11, 0.09, 0.50, 0.15, 0.04, 0.30,   7, 2.4, 0.25, 0.05, 96,   6,  4,   5),
    _p("galgel",  "fp", 0.28, 0.08, 0.05, 0.80, 0.18, 0.02, 0.30,   4, 2.6, 0.55, 0.00, 32,  96,  6,   5),
    _p("art",     "fp", 0.28, 0.08, 0.09, 0.70, 0.15, 0.05, 0.32,   5, 2.4, 0.60, 0.05, 32, 640,  8,  32),
    _p("equake",  "fp", 0.30, 0.08, 0.07, 0.65, 0.15, 0.03, 0.32,   5, 2.4, 0.35, 0.20, 32, 224,  6,  44),
    _p("facerec", "fp", 0.26, 0.09, 0.05, 0.70, 0.15, 0.03, 0.30,   4, 2.6, 0.50, 0.00, 32,  96,  6,   5),
    _p("ammp",    "fp", 0.27, 0.10, 0.06, 0.70, 0.15, 0.03, 0.32,   5, 2.4, 0.20, 0.25, 32,  48,  6,  36),
    _p("lucas",   "fp", 0.22, 0.10, 0.02, 0.85, 0.18, 0.01, 0.28,   4, 2.6, 0.75, 0.00, 32, 560,  8,   5),
    _p("fma3d",   "fp", 0.27, 0.12, 0.06, 0.70, 0.15, 0.03, 0.30,   5, 2.4, 0.40, 0.10, 32, 128,  6,  28),
    _p("apsi",    "fp", 0.25, 0.10, 0.04, 0.75, 0.18, 0.02, 0.30,   4, 2.6, 0.50, 0.00, 32,  96,  6,   5),
)

SPEC2000_ALL: Tuple[BenchmarkProfile, ...] = SPEC2000_INT + SPEC2000_FP

_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in SPEC2000_ALL}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
