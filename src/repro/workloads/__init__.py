"""SPEC2000-like synthetic workloads.

The paper simulates 13 floating-point and 11 integer SPEC2000 benchmarks
(100M instructions after SimPoint fast-forward). SPEC2000 binaries and
reference inputs are proprietary and SimpleScalar traces are unavailable,
so this subpackage synthesises dependency-annotated instruction traces
from per-benchmark *profiles*: instruction mix, branch behaviour,
dependency tightness, and a memory-access model mixing streaming,
random-with-locality, and pointer-chasing references over a configurable
working set.

The profiles are calibrated so the *population* spans the behaviours that
drive the paper's performance results — memory-bound codes (mcf, art,
swim) that are sensitive to losing a cache way, pointer-chasers whose
load-to-use chains amplify VACA's extra cycle, and compute-bound codes
(crafty, sixtrack-like) that barely notice either.
"""

from repro.workloads.profiles import (
    BenchmarkProfile,
    SPEC2000_INT,
    SPEC2000_FP,
    SPEC2000_ALL,
    get_profile,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.compiled import (
    CompiledTrace,
    clear_trace_cache,
    compile_trace,
    get_compiled_trace,
    trace_cache_info,
    trace_key,
)

__all__ = [
    "BenchmarkProfile",
    "SPEC2000_INT",
    "SPEC2000_FP",
    "SPEC2000_ALL",
    "get_profile",
    "TraceGenerator",
    "CompiledTrace",
    "compile_trace",
    "get_compiled_trace",
    "trace_key",
    "trace_cache_info",
    "clear_trace_cache",
]
