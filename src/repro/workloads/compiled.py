"""Compiled workload traces: pack once, replay everywhere.

Every experiment sweeps many (chip, scheme) configurations over the
*same* per-(benchmark, seed) instruction stream, but the seed tree
regenerated that stream — and re-ran ``TraceInstruction`` validation —
once per simulation. This module lowers a generated trace into packed
stdlib :mod:`array` buffers exactly once and replays those buffers
through the fast paths:

* :class:`CompiledTrace` — column-packed instruction fields (op code,
  dest/src registers, data address, pc, mispredict flag) plus per-cache-
  geometry pre-split ``(set index, tag, write)`` columns for the memory
  ops, memoized per geometry. Prefix views share the parent's buffers,
  which is what makes one long compiled trace serve every shorter
  request for the same ``(profile, seed)`` — the generator's draws are
  consumed one instruction at a time, so ``generate(n)`` is a strict
  prefix of ``generate(m)`` for ``n <= m``.
* :func:`get_compiled_trace` — the process-level cache keyed by
  ``(profile name, seed)``. Workers resolve the compiled-trace *key*
  shipped by the engine dispatch against this cache instead of
  regenerating the trace per job. Stats feed ``repro cache info``.
* :func:`trace_key` — the cheap identity key the engine puts in job
  dicts; :attr:`CompiledTrace.key` is the stronger content address
  (SHA-256 over the packed buffers) used for verification.

Compilation is wrapped in a ``ctrace.compile`` span and replay (in
:class:`repro.uarch.simulator.Simulator`) in ``ctrace.replay``, so
``repro trace flamegraph`` attributes time to compile vs replay.

The per-access APIs (``TraceGenerator.generate`` +
``SetAssociativeCache.access``/``fill``) stay untouched as the
differential-testing reference; anything that installs custom per-access
hooks simply keeps using them and bypasses the compiled path.
"""

from __future__ import annotations

import hashlib
import threading
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.validation import require_positive
from repro.obs.trace import span as trace_span
from repro.uarch.isa import OpClass
from repro.uarch.trace import TraceInstruction
from repro.workloads.profiles import BenchmarkProfile

__all__ = [
    "CompiledTrace",
    "compile_trace",
    "get_compiled_trace",
    "trace_key",
    "trace_cache_info",
    "clear_trace_cache",
]

#: Stable op encoding; the enum's definition order is part of the format.
OP_CODES: Dict[OpClass, int] = {op: code for code, op in enumerate(OpClass)}
OP_TABLE: Tuple[OpClass, ...] = tuple(OpClass)

_STORE_CODE = OP_CODES[OpClass.STORE]

#: ``-1`` marks "no register" / "no address" in the packed columns.
_NONE = -1


class CompiledTrace:
    """A workload trace lowered to packed, column-major buffers.

    Instances are immutable in practice: the arrays are filled once at
    compile time and only read afterwards. :meth:`prefix` returns a view
    sharing the same buffers with a shorter ``length``; geometry splits
    are memoized on the root's dict, so every prefix of one compilation
    shares one split per cache geometry.
    """

    #: Duck-typing sentinel — the pipeline cannot import this module
    #: (workloads.generator imports uarch.isa, so uarch -> workloads
    #: would be circular) and checks this attribute instead.
    is_compiled_trace = True

    __slots__ = (
        "profile_name",
        "seed",
        "length",
        "ops",
        "dests",
        "src0",
        "src1",
        "addresses",
        "pcs",
        "mispredicts",
        "_root",
        "_splits",
        "_mem_count",
        "_digest",
    )

    def __init__(
        self,
        profile_name: str,
        seed: int,
        ops: array,
        dests: array,
        src0: array,
        src1: array,
        addresses: array,
        pcs: array,
        mispredicts: array,
        length: Optional[int] = None,
        _root: Optional["CompiledTrace"] = None,
    ) -> None:
        self.profile_name = profile_name
        self.seed = seed
        self.ops = ops
        self.dests = dests
        self.src0 = src0
        self.src1 = src1
        self.addresses = addresses
        self.pcs = pcs
        self.mispredicts = mispredicts
        self.length = len(ops) if length is None else length
        self._root = _root
        self._splits: Dict[Tuple[int, int, int], Tuple[array, array, array]] = (
            {} if _root is None else _root._splits
        )
        self._mem_count: Optional[int] = None
        self._digest: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_instructions(
        cls,
        instructions: Iterable[TraceInstruction],
        profile_name: str = "custom",
        seed: int = 0,
    ) -> "CompiledTrace":
        """Pack an instruction stream (consumes the iterable)."""
        ops = array("b")
        dests = array("b")
        src0 = array("b")
        src1 = array("b")
        addresses = array("q")
        pcs = array("q")
        mispredicts = array("b")
        op_codes = OP_CODES
        for instr in instructions:
            ops.append(op_codes[instr.op])
            dests.append(_NONE if instr.dest is None else instr.dest)
            srcs = instr.srcs
            src0.append(srcs[0] if srcs else _NONE)
            src1.append(srcs[1] if len(srcs) > 1 else _NONE)
            addresses.append(
                _NONE if instr.address is None else instr.address
            )
            pcs.append(instr.pc)
            mispredicts.append(1 if instr.mispredicted else 0)
        return cls(
            profile_name, seed, ops, dests, src0, src1,
            addresses, pcs, mispredicts,
        )

    # ------------------------------------------------------------------
    @property
    def root_length(self) -> int:
        """Length of the underlying buffers (>= :attr:`length`)."""
        return len(self.ops)

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed instruction buffers."""
        return sum(
            arr.itemsize * len(arr)
            for arr in (
                self.ops, self.dests, self.src0, self.src1,
                self.addresses, self.pcs, self.mispredicts,
            )
        )

    def prefix(self, length: int) -> "CompiledTrace":
        """A view of the first ``length`` instructions (shared buffers)."""
        require_positive(length, "length")
        if length > len(self.ops):
            raise ValueError(
                f"prefix of {length} instructions requested from a "
                f"compiled trace of {len(self.ops)}"
            )
        if length == self.length:
            return self
        return CompiledTrace(
            self.profile_name, self.seed,
            self.ops, self.dests, self.src0, self.src1,
            self.addresses, self.pcs, self.mispredicts,
            length=length,
            _root=self._root if self._root is not None else self,
        )

    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Content address: SHA-256 over the first :attr:`length` entries.

        Hashing the view (not the root buffers) keeps the address
        prefix-stable: ``compile(n).key == compile(m).prefix(n).key``,
        which is exactly the generator's prefix property restated over
        packed bytes.
        """
        if self._digest is None:
            digest = hashlib.sha256()
            digest.update(f"ctrace-content:{self.length}:".encode("utf-8"))
            n = self.length
            for arr in (
                self.ops, self.dests, self.src0, self.src1,
                self.addresses, self.pcs, self.mispredicts,
            ):
                digest.update(
                    arr.tobytes() if n == len(arr) else arr[:n].tobytes()
                )
            self._digest = digest.hexdigest()
        return self._digest

    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[TraceInstruction]:
        """Reconstruct the (validated) instruction objects.

        This is the reference path: the differential tests replay a
        compiled trace through it and assert the fast paths match.
        """
        op_table = OP_TABLE
        ops = self.ops
        dests = self.dests
        src0 = self.src0
        src1 = self.src1
        addresses = self.addresses
        pcs = self.pcs
        mispredicts = self.mispredicts
        for i in range(self.length):
            s0 = src0[i]
            s1 = src1[i]
            dest = dests[i]
            address = addresses[i]
            yield TraceInstruction(
                op=op_table[ops[i]],
                dest=None if dest < 0 else dest,
                srcs=() if s0 < 0 else ((s0,) if s1 < 0 else (s0, s1)),
                address=None if address < 0 else address,
                pc=pcs[i],
                mispredicted=bool(mispredicts[i]),
            )

    __iter__ = instructions

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------
    def memory_op_count(self) -> int:
        """Number of loads + stores within :attr:`length`."""
        if self._mem_count is None:
            addresses = self.addresses
            self._mem_count = sum(
                1 for i in range(self.length) if addresses[i] >= 0
            )
        return self._mem_count

    def memory_ops(self, geometry) -> Tuple[array, array, array, int]:
        """Pre-split memory ops for ``geometry``.

        Returns ``(set_indices, tags, writes, count)`` where the arrays
        cover every memory op of the *root* buffers (memoized per
        geometry — all prefixes share one split) and ``count`` is how
        many of them fall within this view's :attr:`length`. A prefix's
        memory ops are exactly the first ``count`` entries because
        instruction order is preserved.
        """
        split_key = (
            geometry.capacity_bytes,
            geometry.associativity,
            geometry.block_bytes,
        )
        split = self._splits.get(split_key)
        if split is None:
            set_indices = array("l")
            tags = array("q")
            writes = array("b")
            offset_bits = geometry.block_bytes.bit_length() - 1
            set_mask = geometry.num_sets - 1
            tag_shift = geometry.num_sets.bit_length() - 1
            ops = self.ops
            addresses = self.addresses
            store_code = _STORE_CODE
            for i in range(len(ops)):
                address = addresses[i]
                if address < 0:
                    continue
                block = address >> offset_bits
                set_indices.append(block & set_mask)
                tags.append(block >> tag_shift)
                writes.append(1 if ops[i] == store_code else 0)
            split = (set_indices, tags, writes)
            self._splits[split_key] = split
        return split[0], split[1], split[2], self.memory_op_count()


# ----------------------------------------------------------------------
# compilation and the process-level cache
# ----------------------------------------------------------------------
def compile_trace(
    profile: BenchmarkProfile, seed: int, length: int
) -> CompiledTrace:
    """Generate and pack ``length`` instructions (uncached)."""
    from repro.workloads.generator import TraceGenerator

    require_positive(length, "length")
    with trace_span(
        "ctrace.compile",
        profile=profile.name,
        seed=seed,
        instructions=length,
    ) as sp:
        compiled = CompiledTrace.from_instructions(
            TraceGenerator(profile, seed=seed).generate(length),
            profile_name=profile.name,
            seed=seed,
        )
        sp.set(bytes=compiled.nbytes)
    return compiled


_CACHE_LOCK = threading.Lock()
_TRACE_CACHE: Dict[Tuple[str, int], CompiledTrace] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def trace_key(profile_name: str, seed: int, length: int) -> str:
    """Identity key of the compiled trace for ``(profile, seed, length)``.

    Cheap to compute without compiling: generation is deterministic per
    ``(profile, seed)`` and ``generate(n)`` is a prefix of
    ``generate(m)``, so the identity fully determines the content. The
    engine ships this key to pool workers;
    :attr:`CompiledTrace.key` hashes the actual buffers when a content
    check is wanted.
    """
    return hashlib.sha256(
        f"ctrace:{profile_name}:{seed}:{length}".encode("utf-8")
    ).hexdigest()


def get_compiled_trace(
    profile: BenchmarkProfile, seed: int, length: int
) -> CompiledTrace:
    """The compiled trace for ``(profile, seed)``, at least ``length`` long.

    Memoized per process: a cached compilation that is long enough is
    served as a shared-buffer prefix view; a longer request recompiles
    (the generator's prefix property keeps the overlap bit-identical)
    and replaces the cache entry. This is what fixes the old
    once-per-(chip, scheme) trace regeneration — within a worker
    process, each (benchmark, seed) stream is generated once.
    """
    require_positive(length, "length")
    cache_id = (profile.name, seed)
    with _CACHE_LOCK:
        cached = _TRACE_CACHE.get(cache_id)
        if cached is not None and len(cached.ops) >= length:
            _CACHE_STATS["hits"] += 1
            return cached.prefix(length)
        _CACHE_STATS["misses"] += 1
    compiled = compile_trace(profile, seed, length)
    with _CACHE_LOCK:
        current = _TRACE_CACHE.get(cache_id)
        if current is None or len(current.ops) < length:
            _TRACE_CACHE[cache_id] = compiled
    return compiled


def trace_cache_info() -> Dict[str, object]:
    """Snapshot of the process-level compiled-trace cache."""
    with _CACHE_LOCK:
        hits = _CACHE_STATS["hits"]
        misses = _CACHE_STATS["misses"]
        entries = len(_TRACE_CACHE)
        total_bytes = sum(t.nbytes for t in _TRACE_CACHE.values())
        instructions = sum(len(t.ops) for t in _TRACE_CACHE.values())
    lookups = hits + misses
    return {
        "entries": entries,
        "bytes": total_bytes,
        "instructions": instructions,
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def clear_trace_cache() -> int:
    """Drop every cached compiled trace; returns how many were held."""
    with _CACHE_LOCK:
        count = len(_TRACE_CACHE)
        _TRACE_CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0
    return count
