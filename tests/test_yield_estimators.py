"""Battery for the smart yield estimators.

Covers, per ISSUE 10:

* importance-sampling unbiasedness against brute force over 50+
  randomized configurations (paired chip streams, CI agreement),
* Neyman-allocation property tests,
* adaptive-stopping determinism at 1 vs 4 workers (byte-equal payloads),
* ``REPRO_COLUMNAR=0`` parity for every estimator kind,
* the zero-population guards and the gauge-cardinality cap,
* warm byte-identity through the engine store and the serve layer.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.core.errors import ConfigurationError
from repro.engine.codec import encode_estimate
from repro.engine.core import Engine, EngineConfig
from repro.experiments.common import ExperimentSettings
from repro.yieldmodel.analysis import LossBreakdown
from repro.yieldmodel.classify import LossReason
from repro.yieldmodel.constraints import (
    ConstraintPolicy,
    NOMINAL_POLICY,
    PAPER_POLICIES,
    RELAXED_POLICY,
)
from repro.yieldmodel.estimators import (
    BatchRunner,
    EstimatorSpec,
    ndtri,
    neyman_allocation,
    normal_cdf,
    run_estimate,
)
from repro.yieldmodel.estimators.core import estimate_is
from repro.yieldmodel.statistics import wilson_interval


def _blob(report) -> str:
    return json.dumps(encode_estimate(report), sort_keys=True)


# ----------------------------------------------------------------------
# normal helpers
# ----------------------------------------------------------------------
def test_ndtri_round_trips_the_cdf():
    for p in (1e-9, 1e-4, 0.02425, 0.3, 0.5, 0.7, 0.97575, 0.9999, 1 - 1e-9):
        x = ndtri(p)
        assert abs(normal_cdf(x) - p) < 1e-9 * max(1.0, abs(x))


def test_ndtri_known_quantiles():
    assert ndtri(0.5) == pytest.approx(0.0, abs=1e-12)
    assert ndtri(0.975) == pytest.approx(1.959964, abs=1e-5)
    assert ndtri(0.025) == pytest.approx(-1.959964, abs=1e-5)


def test_ndtri_rejects_domain_edges():
    for p in (0.0, 1.0, -0.1, 1.1):
        with pytest.raises(ConfigurationError):
            ndtri(p)


# ----------------------------------------------------------------------
# Neyman allocation properties
# ----------------------------------------------------------------------
def test_neyman_allocation_sums_exactly_and_respects_floor():
    rng = random.Random(7)
    for _ in range(200):
        strata = rng.randint(1, 12)
        weights = [rng.random() for _ in range(strata)]
        sigmas = [rng.random() for _ in range(strata)]
        floor = rng.randint(0, 3)
        total = strata * floor + rng.randint(0, 500)
        alloc = neyman_allocation(weights, sigmas, total, floor=floor)
        assert sum(alloc) == total
        assert all(a >= floor for a in alloc)


def test_neyman_allocation_proportional_to_weight_times_sigma():
    alloc = neyman_allocation([0.5, 0.5], [3.0, 1.0], 400)
    # n_h proportional to w_h * s_h = 1.5 : 0.5 -> 300 : 100.
    assert alloc == [300, 100]


def test_neyman_allocation_zero_scores_degrade_to_equal_split():
    assert neyman_allocation([1.0, 1.0], [0.0, 0.0], 10) == [5, 5]


def test_neyman_allocation_deterministic_tie_break():
    a = neyman_allocation([0.25] * 4, [1.0] * 4, 10)
    b = neyman_allocation([0.25] * 4, [1.0] * 4, 10)
    assert a == b and sum(a) == 10


def test_neyman_allocation_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        neyman_allocation([], [], 10)
    with pytest.raises(ConfigurationError):
        neyman_allocation([1.0], [1.0, 2.0], 10)
    with pytest.raises(ConfigurationError):
        neyman_allocation([1.0, 1.0], [1.0, 1.0], 3, floor=2)


# ----------------------------------------------------------------------
# estimator spec
# ----------------------------------------------------------------------
def test_spec_identity_depends_only_on_consumed_fields():
    a = EstimatorSpec(kind="is", strata=4)
    b = EstimatorSpec(kind="is", strata=8)
    assert a.identity() == b.identity()
    assert EstimatorSpec(kind="fixed").identity() == {"kind": "fixed"}
    assert "tilt_scale" in EstimatorSpec(kind="is").identity()
    assert "strata" in EstimatorSpec(kind="stratified").identity()


def test_spec_from_payload_rejects_unknown_and_mistyped_fields():
    with pytest.raises(ConfigurationError):
        EstimatorSpec.from_payload({"kind": "adaptive", "ci_tgt": 0.02})
    with pytest.raises(ConfigurationError):
        EstimatorSpec.from_payload({"batch_size": "big"})
    with pytest.raises(ConfigurationError):
        EstimatorSpec.from_payload([1, 2])
    spec = EstimatorSpec.from_payload({"kind": "adaptive", "ci_target": 0.05})
    assert spec.kind == "adaptive" and spec.ci_target == 0.05


def test_spec_validation_bounds():
    with pytest.raises(ConfigurationError):
        EstimatorSpec(kind="magic")
    with pytest.raises(ConfigurationError):
        EstimatorSpec(ci_target=0.7)
    with pytest.raises(ConfigurationError):
        EstimatorSpec(strata=1)
    with pytest.raises(ConfigurationError):
        EstimatorSpec(confidence=0.5)


# ----------------------------------------------------------------------
# IS unbiasedness vs brute force (the 50-config battery)
# ----------------------------------------------------------------------
def test_is_unbiased_against_brute_force_across_random_configs():
    """IS and brute force agree within CI on 50 randomized configs.

    Paired streams: ``estimate_is`` derives its limits from the first
    ``pilot_chips`` chips of the reference ``"chip"`` stream, and the
    brute-force check classifies chips of that same stream under those
    same limits — so any disagreement is estimator error, not limit
    noise. Two checks: (1) per-config 95% intervals from each side must
    overlap for the vast majority of configs (IS intervals undercover
    slightly when heavy-weight failures are rare, so a small miss rate
    is expected even for a correct estimator), and (2) the mean signed
    error over all ~100 paired estimates must be near zero — a biased
    weight formula (e.g. a sign flip in the log-likelihood ratio) fails
    both by a wide margin.
    """
    rng = random.Random(20060101)
    runner = BatchRunner(workers=1)
    disagreements = 0
    signed_errors = []
    configs = 52
    for index in range(configs):
        seed = rng.randint(1, 10**6)
        policy = ConstraintPolicy(
            f"rand{index}",
            round(rng.uniform(1.0, 3.0), 3),
            round(rng.uniform(3.0, 8.0), 3),
        )
        pilot = rng.randint(40, 80)
        spec = EstimatorSpec(
            kind="is",
            pilot_chips=pilot,
            tilt_scale=round(rng.uniform(0.5, 1.25), 3),
            batch_size=rng.randint(80, 160),
        )
        cap = pilot + rng.randint(240, 360)
        report = estimate_is(runner, spec, seed, cap, policy)
        cons = report.constraints
        brute_n = 500
        data = runner.run(seed, "chip", 0, brute_n)
        for figure, circuits in (
            ("regular.base", data.regular),
            ("horizontal.base", data.horizontal),
        ):
            ships = sum(
                1
                for c in circuits
                if c.total_leakage <= cons.leakage_limit
                and all(d <= cons.delay_limit for d in c.way_delays)
            )
            low, high = wilson_interval(ships, brute_n)
            estimate = report.estimate_for(figure)
            signed_errors.append(estimate.estimate - ships / brute_n)
            if estimate.ci_high < low or high < estimate.ci_low:
                disagreements += 1
    assert disagreements <= 12, (
        f"{disagreements}/{2 * configs} IS-vs-brute-force intervals "
        "disagree — importance weights are biased"
    )
    # Aggregate bias check: the mean signed error over ~100 paired
    # estimates must be a small fraction of a typical interval width.
    mean_error = sum(signed_errors) / len(signed_errors)
    assert abs(mean_error) < 0.015, mean_error


def test_is_effective_sample_size_is_sane():
    runner = BatchRunner(workers=1)
    spec = EstimatorSpec(kind="is", pilot_chips=60)
    report = estimate_is(runner, spec, 11, 200, RELAXED_POLICY)
    estimate = report.estimate_for("regular.base")
    # ESS of a weighted sample lies in (0, N_weighted].
    assert 0.0 < estimate.ess <= report.samples_total - report.pilot_samples


# ----------------------------------------------------------------------
# stratified estimator
# ----------------------------------------------------------------------
def test_stratified_agrees_with_fixed_within_ci():
    runner = BatchRunner(workers=1)
    for policy in PAPER_POLICIES:
        fixed = run_estimate(
            runner, EstimatorSpec(kind="fixed"), 2006, 1200, policy
        )
        strat = run_estimate(
            runner,
            EstimatorSpec(kind="stratified", pilot_chips=120),
            2006,
            1200,
            policy,
        )
        for figure in ("regular.base", "horizontal.base"):
            f = fixed.estimate_for(figure)
            s = strat.estimate_for(figure)
            assert s.ci_low <= f.ci_high and f.ci_low <= s.ci_high, (
                policy.name,
                figure,
                (f.ci_low, f.ci_high),
                (s.ci_low, s.ci_high),
            )


def test_stratified_stratum_transform_preserves_measure():
    """Pooling K equiprobable strata reproduces the nominal marginal."""
    from repro.yieldmodel.estimators.sampling import (
        STRATUM_PARAM,
        sample_shard,
    )

    strata = 4
    per = 150
    pooled = []
    for h in range(strata):
        _, _, die_z = sample_shard(99, "mt", 0, per, stratum=(h, strata))
        values = [row[STRATUM_PARAM] for row in die_z]
        # Every value lies inside its stratum's quantile band.
        lo = -math.inf if h == 0 else ndtri(h / strata)
        hi = math.inf if h == strata - 1 else ndtri((h + 1) / strata)
        assert all(lo <= v <= hi for v in values), (h, min(values), max(values))
        pooled.extend(values)
    mean = sum(pooled) / len(pooled)
    var = sum(v * v for v in pooled) / len(pooled) - mean * mean
    # Balanced pooling across equiprobable strata is a plain N(0,1)
    # sample (up to Monte Carlo error at n=600).
    assert abs(mean) < 0.15
    assert abs(var - 1.0) < 0.2


def test_stratified_refuses_cap_smaller_than_pilot():
    runner = BatchRunner(workers=1)
    spec = EstimatorSpec(kind="stratified", pilot_chips=64, strata=4)
    with pytest.raises(ConfigurationError):
        run_estimate(runner, spec, 1, 60, NOMINAL_POLICY)


# ----------------------------------------------------------------------
# determinism: worker counts, columnar parity, adaptive stopping
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec",
    [
        EstimatorSpec(kind="fixed"),
        EstimatorSpec(kind="adaptive", ci_target=0.05, batch_size=64),
        EstimatorSpec(kind="stratified", ci_target=0.05, pilot_chips=64),
        EstimatorSpec(kind="is", ci_target=0.05, pilot_chips=64),
    ],
    ids=lambda s: s.kind,
)
def test_estimators_bit_deterministic_across_worker_counts(tmp_path, spec):
    settings = ExperimentSettings(seed=41, chips=320)
    blobs = []
    for workers in (1, 4):
        engine = Engine(
            EngineConfig(workers=workers, cache_dir=tmp_path / f"w{workers}")
        )
        report = engine.estimate(settings, RELAXED_POLICY, estimator=spec)
        blobs.append(_blob(report))
        engine.shutdown()
    assert blobs[0] == blobs[1]


@pytest.mark.parametrize(
    "kind,extra",
    [
        ("fixed", {}),
        ("adaptive", {"ci_target": 0.05, "batch_size": 64}),
        ("stratified", {"ci_target": 0.05, "pilot_chips": 64}),
        ("is", {"ci_target": 0.05, "pilot_chips": 64}),
    ],
)
def test_estimators_columnar_off_parity(monkeypatch, kind, extra):
    """REPRO_COLUMNAR=0 changes speed only, never a single bit."""
    runner = BatchRunner(workers=1)
    spec = EstimatorSpec(kind=kind, **extra)
    monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
    fast = run_estimate(runner, spec, 17, 240, NOMINAL_POLICY)
    monkeypatch.setenv("REPRO_COLUMNAR", "0")
    slow = run_estimate(runner, spec, 17, 240, NOMINAL_POLICY)
    assert _blob(fast) == _blob(slow)


def test_adaptive_stops_early_on_tail_yield():
    runner = BatchRunner(workers=1)
    tail = ConstraintPolicy("tail", 3.0, 8.0)
    adaptive = run_estimate(
        runner,
        EstimatorSpec(kind="adaptive", ci_target=0.02),
        2006,
        2000,
        tail,
    )
    fixed = run_estimate(
        runner, EstimatorSpec(kind="fixed"), 2006, 2000, tail
    )
    assert adaptive.samples_total * 5 <= fixed.samples_total
    for figure in ("regular.base", "horizontal.base"):
        a = adaptive.estimate_for(figure)
        f = fixed.estimate_for(figure)
        assert a.ci_halfwidth <= 0.02
        assert a.ci_low <= f.ci_high and f.ci_low <= a.ci_high


def test_adaptive_without_target_matches_fixed_exactly():
    runner = BatchRunner(workers=1)
    adaptive = run_estimate(
        runner,
        EstimatorSpec(kind="adaptive", batch_size=100),
        5,
        300,
        NOMINAL_POLICY,
    )
    fixed = run_estimate(
        runner, EstimatorSpec(kind="fixed"), 5, 300, NOMINAL_POLICY
    )
    assert adaptive.samples_total == 300
    for figure in ("regular.base", "horizontal.base"):
        a = adaptive.estimate_for(figure)
        f = fixed.estimate_for(figure)
        assert a.estimate == f.estimate
        assert (a.ci_low, a.ci_high) == (f.ci_low, f.ci_high)


def test_adaptive_population_matches_fixed_prefix(tmp_path):
    """An adaptively-stopped population is a literal prefix population."""
    engine = Engine(EngineConfig(workers=2, cache_dir=tmp_path / "s"))
    settings = ExperimentSettings(seed=9, chips=400)
    spec = EstimatorSpec(kind="adaptive", ci_target=0.2, batch_size=100)
    adaptive = engine.population(settings, NOMINAL_POLICY, estimator=spec)
    stopped = adaptive.population
    assert stopped <= 400 and stopped % 100 == 0
    reference = engine.population(
        ExperimentSettings(seed=9, chips=stopped), NOMINAL_POLICY
    )
    assert [c.circuit for c in adaptive.cases] == [
        c.circuit for c in reference.cases
    ]
    engine.shutdown()


def test_population_rejects_weighted_estimators(tmp_path):
    engine = Engine(EngineConfig(workers=1, persistent=False))
    settings = ExperimentSettings(seed=1, chips=64)
    for kind in ("stratified", "is"):
        with pytest.raises(ConfigurationError):
            engine.population(
                settings, NOMINAL_POLICY, estimator=EstimatorSpec(kind=kind)
            )
    engine.shutdown()


# ----------------------------------------------------------------------
# engine cache and key identity
# ----------------------------------------------------------------------
def test_estimate_warm_store_byte_identity(tmp_path):
    settings = ExperimentSettings(seed=23, chips=200)
    spec = EstimatorSpec(kind="adaptive", ci_target=0.05, batch_size=64)
    first = Engine(EngineConfig(workers=1, cache_dir=tmp_path / "s"))
    cold = first.estimate(settings, NOMINAL_POLICY, estimator=spec)
    key = first.estimate_key(settings, NOMINAL_POLICY, spec)
    stored = first.store.path_for("estimate", key).read_bytes()
    first.shutdown()
    second = Engine(EngineConfig(workers=1, cache_dir=tmp_path / "s"))
    warm = second.estimate(settings, NOMINAL_POLICY, estimator=spec)
    assert _blob(warm) == _blob(cold)
    assert second.store.path_for("estimate", key).read_bytes() == stored
    # Warm call computed nothing.
    assert second.stats.jobs_cached_disk >= 1
    second.shutdown()


def test_estimate_key_separates_specs_and_fixed_population_key_is_legacy():
    settings = ExperimentSettings(seed=2, chips=100)
    fixed_key = Engine.population_key(settings, NOMINAL_POLICY)
    assert fixed_key == Engine.population_key(
        settings, NOMINAL_POLICY, EstimatorSpec(kind="fixed")
    )
    adaptive_key = Engine.population_key(
        settings, NOMINAL_POLICY, EstimatorSpec(kind="adaptive", ci_target=0.1)
    )
    assert adaptive_key != fixed_key
    a = Engine.estimate_key(
        settings, NOMINAL_POLICY, EstimatorSpec(kind="is", tilt_scale=1.0)
    )
    b = Engine.estimate_key(
        settings, NOMINAL_POLICY, EstimatorSpec(kind="is", tilt_scale=1.5)
    )
    assert a != b


def test_estimate_emits_obs_gauges(tmp_path):
    engine = Engine(EngineConfig(workers=1, persistent=False))
    settings = ExperimentSettings(seed=3, chips=150)
    engine.estimate(
        settings,
        NOMINAL_POLICY,
        estimator=EstimatorSpec(kind="is", pilot_chips=50),
    )
    gauges = engine.metrics.snapshot()["gauges"]
    for figure in ("regular.base", "horizontal.base"):
        assert f"yield.estimate.{figure}" in gauges
        assert f"yield.ci_halfwidth.{figure}" in gauges
        assert f"yield.samples.{figure}" in gauges
        assert f"yield.ess.{figure}" in gauges
    assert gauges["yield.ess.regular.base"] <= gauges[
        "yield.samples.regular.base"
    ]
    engine.shutdown()


# ----------------------------------------------------------------------
# satellite fixes: zero-population guards, gauge cardinality cap
# ----------------------------------------------------------------------
def test_loss_breakdown_zero_population_yields_zero():
    empty = LossBreakdown(base_counts={}, scheme_losses={"s": {}}, population=0)
    assert empty.yield_with(None) == 0.0
    assert empty.yield_with("s") == 0.0
    assert empty.loss_reduction("s") == 0.0


def test_loss_breakdown_zero_base_loss_reduction_is_zero():
    breakdown = LossBreakdown(
        base_counts={LossReason.LEAKAGE: 0},
        scheme_losses={"s": {LossReason.LEAKAGE: 0}},
        population=10,
    )
    assert breakdown.loss_reduction("s") == 0.0
    assert breakdown.yield_with(None) == 1.0


def test_estimator_gauge_series_are_capped():
    from repro.yieldmodel import analysis

    saved = set(analysis._gauge_series_seen)
    try:
        analysis._gauge_series_seen.clear()
        labels = set()
        for index in range(3 * analysis._GAUGE_SERIES_CAP):
            labels.add(analysis._gauge_series_label("regular", f"s{index}"))
        assert len(labels) == analysis._GAUGE_SERIES_CAP + 1
        assert "regular.<other>" in labels
        # Admitted labels stay stable across repeat emissions.
        assert analysis._gauge_series_label("regular", "s0") == "regular.s0"
        assert (
            analysis._gauge_series_label("regular", "brand-new")
            == "regular.<other>"
        )
    finally:
        analysis._gauge_series_seen.clear()
        analysis._gauge_series_seen.update(saved)


# ----------------------------------------------------------------------
# serve layer
# ----------------------------------------------------------------------
def test_serve_estimate_warm_repeat_is_byte_identical(tmp_path):
    from repro.serve import ServeClient, ServeConfig, ServerThread

    engine = Engine(EngineConfig(workers=1, cache_dir=tmp_path / "store"))
    thread = ServerThread(engine, ServeConfig(port=0))
    host, port = thread.start()
    try:
        client = ServeClient(host, port)
        body = {
            "seed": 31,
            "chips": 150,
            "policy": "relaxed",
            "estimator": {"kind": "is", "pilot_chips": 50},
        }
        first = client._request("POST", "/v1/estimate", body, raw=True)
        second = client._request("POST", "/v1/estimate", body, raw=True)
        assert first == second
        payload = json.loads(first)
        assert payload["kind"] == "estimate"
        result = payload["result"]
        assert result["kind"] == "is"
        assert {e["figure"] for e in result["estimates"]} == {
            "regular.base",
            "horizontal.base",
        }
        counters = engine.metrics.snapshot()["counters"]
        assert counters.get("serve.request.warm", 0) >= 1
        client.close()
    finally:
        thread.stop()
        engine.shutdown()


def test_serve_estimate_rejects_bad_specs(tmp_path):
    from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread

    engine = Engine(EngineConfig(workers=1, persistent=False))
    thread = ServerThread(engine, ServeConfig(port=0))
    host, port = thread.start()
    try:
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError) as err:
                client.estimate(
                    seed=1, chips=64, estimator={"kind": "magic"}
                )
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.estimate(
                    seed=1, chips=64, estimator={"ci_tgt": 0.02}
                )
            assert err.value.status == 400
    finally:
        thread.stop()
        engine.shutdown()


# ----------------------------------------------------------------------
# experiment + bench surfaces
# ----------------------------------------------------------------------
def test_estimators_experiment_runs_and_reports_all_kinds(tmp_path):
    from repro.engine import core as engine_core
    from repro.experiments.runner import run_experiment

    previous = engine_core._ENGINE
    engine_core._ENGINE = Engine(
        EngineConfig(workers=1, cache_dir=tmp_path / "exp")
    )
    try:
        result = run_experiment(
            "estimators", ExperimentSettings(seed=2006, chips=300)
        )
        kinds = {row[1] for row in result.rows}
        assert kinds == {"fixed", "adaptive", "stratified", "is"}
        policies = {row[0] for row in result.rows}
        assert policies == {p.name for p in PAPER_POLICIES}
    finally:
        engine_core._ENGINE.shutdown()
        engine_core._ENGINE = previous
