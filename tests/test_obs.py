"""Tests for the observability layer (tracing, metrics, CLI surface)."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import _split_trace_arg, main
from repro.engine import EngineStats, configure_engine, reset_engine
from repro.experiments import ExperimentSettings
from repro.experiments.common import clear_caches
from repro.obs import (
    MetricsRegistry,
    configure_tracing,
    disable_tracing,
    get_tracer,
    load_spans,
    render_summary,
    span,
    summarize_spans,
    tracing_enabled,
)
from repro.obs.trace import NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts and ends with tracing off (incl. the env var)."""
    disable_tracing()
    yield
    disable_tracing()
    reset_engine()
    clear_caches()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_instruments_are_shared_by_name(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2.5)
        assert registry.counter("a").value == 3.5
        registry.gauge("g").set(7)
        assert registry.gauge("g").value == 7.0

    def test_name_collision_across_types_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_stats_and_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=[1.0, 10.0])
        for value in (0.5, 2.0, 20.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(22.5)
        assert snap["min"] == 0.5 and snap["max"] == 20.0
        assert snap["buckets"] == {"le_1": 1, "le_10": 1}
        assert snap["overflow"] == 1
        assert hist.mean == pytest.approx(7.5)

    def test_reset_zeroes_but_keeps_instances(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(4)
        hist = registry.histogram("h")
        hist.observe(1.0)
        registry.reset()
        assert counter.value == 0.0
        assert hist.count == 0 and hist.total == 0.0
        assert registry.counter("c") is counter  # same instrument object

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.histogram("lat").observe(0.25)
        json.dumps(registry.snapshot())


class TestMetricsConcurrency:
    """The background sampler shares registries with experiment threads."""

    def test_concurrent_inc_and_observe_lose_nothing(self):
        import threading

        registry = MetricsRegistry()
        threads_n, per_thread = 8, 5000
        barrier = threading.Barrier(threads_n)

        def hammer():
            barrier.wait()
            # All instrument lookups race on first use too.
            counter = registry.counter("c")
            hist = registry.histogram("h", bounds=[0.5])
            gauge = registry.gauge("g")
            for i in range(per_thread):
                counter.inc()
                hist.observe(0.25 if i % 2 else 0.75)
                gauge.set(i)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * per_thread
        assert registry.counter("c").value == total
        hist = registry.histogram("h")
        assert hist.count == total
        assert sum(hist.bucket_counts) == total
        assert hist.total == pytest.approx(0.5 * total)
        assert registry.gauge("g").value == per_thread - 1

    def test_sampler_thread_shares_registry_with_worker(self):
        import threading

        from repro.obs import ResourceSampler

        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=0.002)
        stop = threading.Event()

        def workload():
            counter = registry.counter("work")
            while not stop.is_set():
                counter.inc()

        worker = threading.Thread(target=workload)
        with sampler:
            worker.start()
            import time as _time
            _time.sleep(0.05)
            stop.set()
            worker.join()
        summary = sampler.summary()
        assert summary["samples"] >= 1
        assert summary["cpu_user_seconds"] > 0.0
        if os.path.exists("/proc/self/status"):
            assert summary["rss_bytes"] > 0
            assert summary["rss_peak_bytes"] >= summary["rss_bytes"]
        assert registry.counter("work").value > 0


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        s = span("anything", a=1)
        assert s is NULL_SPAN
        with s as inner:
            inner.set(b=2)  # must not raise

    def test_spans_nest_and_export_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        assert tracing_enabled()
        with span("outer", kind="test") as outer:
            with span("inner") as inner:
                inner.set(items=3)
        records = load_spans(path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["attrs"] == {"items": 3}
        assert by_name["outer"]["attrs"] == {"kind": "test"}
        assert all(r["pid"] == os.getpid() for r in records)
        assert all(r["dur"] >= 0.0 for r in records)

    def test_exception_is_recorded_and_propagates(self, tmp_path):
        configure_tracing(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with span("broken"):
                raise RuntimeError("boom")
        [record] = load_spans(tmp_path / "t.jsonl")
        assert record["attrs"]["error"] == "RuntimeError"

    def test_configure_exports_env_and_disable_clears_it(self, tmp_path):
        configure_tracing(tmp_path / "t.jsonl")
        assert os.environ["REPRO_TRACE_FILE"] == str(tmp_path / "t.jsonl")
        disable_tracing()
        assert "REPRO_TRACE_FILE" not in os.environ
        assert get_tracer() is None

    def test_unserialisable_attrs_keep_timing(self, tmp_path):
        configure_tracing(tmp_path / "t.jsonl")
        with span("odd", payload=object()):
            pass
        [record] = load_spans(tmp_path / "t.jsonl")
        assert record["name"] == "odd"  # default=str stringified the attr


# ----------------------------------------------------------------------
# trace summary
# ----------------------------------------------------------------------
class TestSummary:
    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = {"name": "ok", "dur": 0.5, "pid": 1}
        path.write_text(
            json.dumps(good) + "\n"
            + "{truncated\n"
            + "[1, 2]\n"
            + json.dumps({"dur": 1.0}) + "\n"  # no name
            + json.dumps(good) + "\n",
            encoding="utf-8",
        )
        spans = load_spans(path)
        assert len(spans) == 2

    def test_malformed_lines_are_counted(self, tmp_path):
        from repro.obs import load_spans_counted, summary_text

        path = tmp_path / "t.jsonl"
        good = {"name": "ok", "dur": 0.5, "pid": 1}
        path.write_text(
            json.dumps(good) + "\n"
            + "{truncated\n"
            + json.dumps({"dur": 1.0}) + "\n"  # no name
            + json.dumps(good) + "\n",
            encoding="utf-8",
        )
        spans, skipped = load_spans_counted(path)
        assert len(spans) == 2
        assert skipped == 2
        text = summary_text(path)
        assert "skipped 2 malformed trace line(s)" in text

    def test_clean_trace_reports_no_skip_warning(self, tmp_path):
        from repro.obs import summary_text

        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"name": "ok", "dur": 0.5, "pid": 1}) + "\n",
            encoding="utf-8",
        )
        assert "malformed" not in summary_text(path)

    def test_aggregates_and_top_n(self):
        spans = [
            {"name": "a", "dur": 1.0, "pid": 1},
            {"name": "a", "dur": 3.0, "pid": 2},
            {"name": "b", "dur": 0.5, "pid": 1},
        ]
        summary = summarize_spans(spans, top=2)
        assert summary["spans"] == 3
        assert summary["processes"] == [1, 2]
        assert summary["by_name"]["a"]["count"] == 2
        assert summary["by_name"]["a"]["total_s"] == pytest.approx(4.0)
        assert summary["by_name"]["a"]["mean_s"] == pytest.approx(2.0)
        assert summary["by_name"]["a"]["max_s"] == pytest.approx(3.0)
        assert [s["dur"] for s in summary["slowest"]] == [3.0, 1.0]
        text = render_summary(summary)
        assert "a" in text and "b" in text and "trace summary" in text


# ----------------------------------------------------------------------
# EngineStats as a registry view
# ----------------------------------------------------------------------
class TestEngineStatsView:
    def test_counters_read_and_write_the_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(workers=2, registry=registry)
        stats.jobs_run += 3
        stats.busy_seconds += 1.5
        assert stats.jobs_run == 3
        assert registry.counter("engine.jobs.run").value == 3.0
        assert registry.counter("engine.busy_seconds").value == 1.5
        # Another view over the same registry sees the same numbers.
        assert EngineStats(workers=2, registry=registry).jobs_run == 3

    def test_stage_feeds_histogram_and_stage_seconds(self):
        stats = EngineStats()
        with stats.stage("population"):
            pass
        with stats.stage("population"):
            pass
        assert set(stats.stage_seconds) == {"population"}
        hist = stats.registry.histogram("stage.population")
        assert hist.count == 2
        assert stats.stage_seconds["population"] == pytest.approx(hist.total)

    def test_empty_run_ratios_do_not_divide_by_zero(self):
        stats = EngineStats(workers=0)
        assert stats.jobs_total == 0
        assert stats.hit_ratio == 0.0
        assert stats.utilization == 0.0
        assert "cache hit ratio    0.0%" in stats.summary()

    def test_hit_ratio_counts_memo_and_disk(self):
        stats = EngineStats()
        stats.jobs_run = 1
        stats.jobs_cached_memory = 2
        stats.jobs_cached_disk = 1
        assert stats.hit_ratio == pytest.approx(0.75)

    def test_reset_keeps_workers(self):
        stats = EngineStats(workers=4)
        stats.jobs_run = 9
        with stats.stage("x"):
            pass
        stats.reset()
        assert stats.workers == 4
        assert stats.jobs_run == 0
        assert stats.stage_seconds == {}

    def test_engine_wires_store_metrics_into_same_registry(self, tmp_path):
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        settings = ExperimentSettings(
            seed=5, chips=16, trace_length=800, warmup=100,
            benchmarks=("gzip",),
        )
        engine.population(settings)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["store.save"] >= 1
        assert counters["engine.jobs.run"] == 1
        # A fresh engine on the same store reads it back.
        engine = configure_engine(workers=1, cache_dir=tmp_path)
        engine.population(settings)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["store.load.hit"] == 1
        assert engine.stats.hit_ratio == 1.0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_split_trace_arg(self):
        assert _split_trace_arg(None) == (None, None)
        length, path = _split_trace_arg("20000")
        assert length == 20000 and path is None
        length, path = _split_trace_arg("out.jsonl")
        assert length is None and str(path) == "out.jsonl"

    def test_traced_parallel_run_merges_worker_spans(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_engine()
        trace_file = tmp_path / "run.jsonl"
        code = main([
            "run", "fig8", "--chips", "64", "--seed", "123",
            "--workers", "2", "--trace", str(trace_file), "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine statistics" in out
        assert f"trace spans written to {trace_file}" in out
        records = load_spans(trace_file)
        assert records, "traced run produced no spans"
        names = {r["name"] for r in records}
        assert "engine.population" in names
        assert "worker:population_shard" in names
        assert "stage:experiment:fig8" in names
        # Spans from the main process and at least one pool worker
        # merged into one file.
        assert len({r["pid"] for r in records}) >= 2
        # And tracing is off again after the CLI returns.
        assert not tracing_enabled()

    def test_trace_summary_command_agrees_with_spans(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        spans = [
            {"name": "stage:simulation", "dur": 2.0, "pid": 7},
            {"name": "stage:simulation", "dur": 1.0, "pid": 7},
            {"name": "stage:population", "dur": 0.25, "pid": 8},
        ]
        path.write_text(
            "".join(json.dumps(s) + "\n" for s in spans), encoding="utf-8"
        )
        assert main(["trace", "summary", str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "spans      3" in out
        assert "stage:simulation" in out
        assert "3.0000" in out  # aggregate total of the simulation stage
        assert "top 2 slowest spans" in out

    def test_trace_integer_still_sets_trace_length(self, tmp_path, capsys,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_engine()
        code = main([
            "run", "fig1", "--trace", "1200", "--warmup", "300",
            "--chips", "16", "--seed", "9", "--benchmark", "gzip",
        ])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out
