"""Unit tests for the serve building blocks (no sockets).

Admission control, coalescing, batching, routing and the wire protocol
are each exercised in isolation here; the live-server end-to-end path is
in ``test_serve.py``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController, RejectedError
from repro.serve.batcher import SimulationBatcher
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import (
    ProtocolError,
    parse_experiment,
    parse_population,
    parse_simulation,
)
from repro.serve.router import RouteError, Router


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
class TestAdmission:
    def test_fast_path_under_capacity(self):
        async def scenario():
            registry = MetricsRegistry()
            ctl = AdmissionController(max_active=2, registry=registry)
            await ctl.acquire("a")
            await ctl.acquire("b")
            assert ctl.active == 2 and ctl.queued == 0
            ctl.release()
            assert ctl.active == 1
            snap = registry.snapshot()
            assert snap["counters"]["serve.admit.accepted"] == 2

        run(scenario())

    def test_global_queue_full_is_503(self):
        async def scenario():
            ctl = AdmissionController(max_active=1, max_queued=1)
            await ctl.acquire("a")
            waiting = asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)
            with pytest.raises(RejectedError) as info:
                await ctl.acquire("c")
            assert info.value.status == 503
            waiting.cancel()
            try:
                await waiting
            except asyncio.CancelledError:
                pass

        run(scenario())

    def test_per_client_bound_is_429(self):
        async def scenario():
            ctl = AdmissionController(
                max_active=1, max_queued=10, max_per_client=1
            )
            await ctl.acquire("a")
            waiting = asyncio.ensure_future(ctl.acquire("greedy"))
            await asyncio.sleep(0)
            with pytest.raises(RejectedError) as info:
                await ctl.acquire("greedy")
            assert info.value.status == 429
            # Another client still queues fine.
            other = asyncio.ensure_future(ctl.acquire("polite"))
            await asyncio.sleep(0)
            assert ctl.queued == 2
            for task in (waiting, other):
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass

        run(scenario())

    def test_round_robin_across_clients(self):
        async def scenario():
            ctl = AdmissionController(max_active=1, max_queued=10)
            await ctl.acquire("seed")
            order = []

            async def wait(client, tag):
                await ctl.acquire(client)
                order.append(tag)

            # Client a floods first; b arrives later but must not starve.
            tasks = [
                asyncio.ensure_future(wait("a", "a1")),
                asyncio.ensure_future(wait("a", "a2")),
                asyncio.ensure_future(wait("b", "b1")),
            ]
            await asyncio.sleep(0)
            for _ in range(3):
                ctl.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert order == ["a1", "b1", "a2"]

        run(scenario())

    def test_cancelled_waiter_withdraws(self):
        async def scenario():
            ctl = AdmissionController(max_active=1, max_queued=10)
            await ctl.acquire("a")
            waiting = asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)
            assert ctl.queued == 1
            waiting.cancel()
            try:
                await waiting
            except asyncio.CancelledError:
                pass
            assert ctl.queued == 0
            # The slot still hands over cleanly afterwards.
            ctl.release()
            assert ctl.active == 0

        run(scenario())


# ----------------------------------------------------------------------
# coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_concurrent_identical_jobs_compute_once(self):
        async def scenario():
            registry = MetricsRegistry()
            co = Coalescer(registry)
            calls = []

            async def start(flight):
                calls.append(flight.key)
                await asyncio.sleep(0.01)
                return 42

            results = await asyncio.gather(
                *(co.run("job", start) for _ in range(5))
            )
            assert results == [42] * 5
            assert calls == ["job"]
            snap = registry.snapshot()["counters"]
            assert snap["serve.coalesce.leader"] == 1
            assert snap["serve.coalesce.joined"] == 4
            assert co.flight_count() == 0

        run(scenario())

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            co = Coalescer()
            calls = []

            async def start(flight):
                calls.append(flight.key)
                return flight.key

            results = await asyncio.gather(
                co.run("x", start), co.run("y", start)
            )
            assert sorted(results) == ["x", "y"]
            assert sorted(calls) == ["x", "y"]

        run(scenario())

    def test_error_propagates_to_all_waiters(self):
        async def scenario():
            co = Coalescer()

            async def start(flight):
                await asyncio.sleep(0.01)
                raise ValueError("boom")

            results = await asyncio.gather(
                *(co.run("bad", start) for _ in range(3)),
                return_exceptions=True,
            )
            assert all(isinstance(r, ValueError) for r in results)
            assert co.flight_count() == 0

        run(scenario())

    def test_leader_cancellation_does_not_kill_joiners(self):
        async def scenario():
            co = Coalescer()

            async def start(flight):
                await asyncio.sleep(0.02)
                return "done"

            leader = asyncio.ensure_future(co.run("k", start))
            await asyncio.sleep(0)
            joiner = asyncio.ensure_future(co.run("k", start))
            await asyncio.sleep(0)
            leader.cancel()
            try:
                await leader
            except asyncio.CancelledError:
                pass
            assert await joiner == "done"

        run(scenario())

    def test_progress_fans_out_to_subscribers(self):
        async def scenario():
            co = Coalescer()
            flights = []
            seen = []

            async def start(flight):
                flight.publish({"event": "progress", "done": 1, "total": 2})
                return "ok"

            task = asyncio.ensure_future(co.run("k", start, flights))
            await asyncio.sleep(0)
            queue = flights[0].subscribe()
            await task
            while not queue.empty():
                seen.append(queue.get_nowait())
            # Terminal done event always lands, even for late subscribers.
            assert seen[-1] == {"event": "done", "ok": True}

        run(scenario())


# ----------------------------------------------------------------------
# batcher
# ----------------------------------------------------------------------
class _FakeEngine:
    """Records submit_simulations calls; resolves specs immediately."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.calls = []

    def submit_simulations(self, settings, specs, progress=None):
        self.calls.append((settings, list(specs)))
        futures = []
        for spec in specs:
            future = Future()
            future.set_result(f"result:{spec}")
            futures.append(future)
        if progress is not None:
            progress(len(specs), len(specs))
        return futures


class _Settings:
    def __init__(self, seed=1, trace_length=1000, warmup=100):
        self.seed = seed
        self.trace_length = trace_length
        self.warmup = warmup


class TestBatcher:
    def test_compatible_requests_share_one_dispatch(self):
        async def scenario():
            engine = _FakeEngine()
            batcher = SimulationBatcher(engine, window=0.005)
            settings = _Settings()
            results = await asyncio.gather(
                batcher.simulate(settings, "gcc"),
                batcher.simulate(settings, "mcf"),
                batcher.simulate(settings, "swim"),
            )
            assert results == ["result:gcc", "result:mcf", "result:swim"]
            assert len(engine.calls) == 1
            assert engine.calls[0][1] == ["gcc", "mcf", "swim"]
            snap = engine.metrics.snapshot()["counters"]
            assert snap["serve.batch.dispatches"] == 1
            assert snap["serve.batch.jobs"] == 3

        run(scenario())

    def test_incompatible_settings_split_batches(self):
        async def scenario():
            engine = _FakeEngine()
            batcher = SimulationBatcher(engine, window=0.005)
            await asyncio.gather(
                batcher.simulate(_Settings(seed=1), "gcc"),
                batcher.simulate(_Settings(seed=2), "gcc"),
            )
            assert len(engine.calls) == 2

        run(scenario())

    def test_max_batch_flushes_immediately(self):
        async def scenario():
            engine = _FakeEngine()
            # A long window that a full batch must not wait out.
            batcher = SimulationBatcher(engine, window=5.0, max_batch=2)
            settings = _Settings()
            await asyncio.wait_for(
                asyncio.gather(
                    batcher.simulate(settings, "gcc"),
                    batcher.simulate(settings, "mcf"),
                ),
                timeout=1.0,
            )
            assert len(engine.calls) == 1

        run(scenario())

    def test_flush_all_drains_pending(self):
        async def scenario():
            engine = _FakeEngine()
            batcher = SimulationBatcher(engine, window=60.0)
            settings = _Settings()
            task = asyncio.ensure_future(batcher.simulate(settings, "gcc"))
            await asyncio.sleep(0)
            assert batcher.pending() == 1
            await batcher.flush_all()
            assert await task == "result:gcc"
            assert batcher.pending() == 0

        run(scenario())


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
class TestRouter:
    def make(self):
        router = Router()

        async def handler(server, request):
            return "ok"

        router.add("GET", "/healthz", handler)
        router.add("POST", "/v1/population", handler)
        return router

    def test_resolve(self):
        router = self.make()
        assert router.resolve("get", "/healthz") is not None

    def test_unknown_path_404(self):
        with pytest.raises(RouteError) as info:
            self.make().resolve("GET", "/nope")
        assert info.value.status == 404

    def test_wrong_method_405_with_allow(self):
        with pytest.raises(RouteError) as info:
            self.make().resolve("DELETE", "/v1/population")
        assert info.value.status == 405
        assert info.value.allow == ["POST"]

    def test_routes_listing(self):
        assert ("GET", "/healthz") in self.make().routes()


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_population_defaults(self):
        query = parse_population({})
        assert query.policy.name == "nominal"
        assert query.detail == "summary"
        assert query.stream is False
        assert query.key

    def test_population_key_is_deterministic(self):
        body = {"seed": 9, "chips": 50, "policy": "nominal"}
        assert parse_population(body).key == parse_population(body).key
        assert (
            parse_population({"seed": 9, "chips": 50}).key
            != parse_population({"seed": 10, "chips": 50}).key
        )

    def test_population_rejects_unknown_policy(self):
        with pytest.raises(ProtocolError, match="policy"):
            parse_population({"policy": "nope"})

    def test_population_rejects_bad_detail(self):
        with pytest.raises(ProtocolError, match="detail"):
            parse_population({"detail": "everything"})

    def test_population_rejects_non_integer_seed(self):
        with pytest.raises(ProtocolError, match="seed"):
            parse_population({"seed": "seven"})

    def test_body_must_be_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_population([1, 2, 3])

    def test_simulation_requires_benchmark(self):
        with pytest.raises(ProtocolError, match="benchmark"):
            parse_simulation({})

    def test_simulation_rejects_unknown_benchmark(self):
        with pytest.raises(ProtocolError):
            parse_simulation({"benchmark": "not-a-workload"})

    def test_simulation_way_cycles_validated(self):
        with pytest.raises(ProtocolError, match="way_cycles"):
            parse_simulation({"benchmark": "gcc", "way_cycles": ["x"]})
        query = parse_simulation(
            {"benchmark": "gcc", "way_cycles": [1, None, 2, 1]}
        )
        assert query.spec == ("gcc", (1, None, 2, 1), None)

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(ProtocolError, match="unknown experiment"):
            parse_experiment({"name": "table99"})

    def test_experiment_key_varies_with_settings(self):
        a = parse_experiment({"name": "table2", "seed": 1})
        b = parse_experiment({"name": "table2", "seed": 2})
        assert a.key != b.key
