"""Differential test: YAPD vs H-YAPD cache behaviour (paper Section 4.2).

The paper's central functional claim for H-YAPD is that the modified
post-decoders keep hit/miss behaviour identical to YAPD: with one
horizontal band gated off, every address still maps to exactly ``A - 1``
candidate ways, so the cache behaves like the same cache with one
*vertical* way gated off.

This suite checks that claim differentially over randomized
configurations (associativity, geometry, disabled band, disabled way)
and randomized access traces: the two organisations must produce the
same hit/miss outcome on *every* access — not merely equal totals — and
the block filled on each miss must land in the positionally-equivalent
way. The randomization is seeded, so failures replay exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import CacheGeometry, SetAssociativeCache, WayConfig

#: Number of randomized configurations (the issue requires >= 100).
NUM_CONFIGS = 120

_BASE_SEED = 0xC0FFEE


def _random_config(index: int) -> dict:
    """One reproducible random cache configuration + access trace."""
    rng = random.Random(_BASE_SEED + index)
    ways = rng.choice((2, 4, 8))
    num_sets = rng.choice((16, 32, 64, 128))
    block = rng.choice((16, 32, 64))
    geometry = CacheGeometry(num_sets * ways * block, ways, block)
    # Confine the trace to a few sets and tags so it produces real
    # conflict misses and evictions, not just cold fills.
    hot_sets = rng.sample(range(num_sets), k=min(num_sets, rng.randint(2, 8)))
    set_bits = num_sets.bit_length() - 1
    offset_bits = block.bit_length() - 1
    accesses = []
    for _ in range(rng.randint(120, 200)):
        block_addr = (rng.randint(0, 11) << set_bits) | rng.choice(hot_sets)
        accesses.append((block_addr << offset_bits, rng.random() < 0.3))
    return {
        "geometry": geometry,
        "ways": ways,
        # The band/way rotation only removes one way from *every* group
        # when there are as many bands as ways.
        "num_bands": ways,
        "disabled_band": rng.randrange(ways),
        "disabled_way": rng.randrange(ways),
        "accesses": accesses,
    }


def _hyapd_cache(cfg: dict) -> SetAssociativeCache:
    return SetAssociativeCache(
        cfg["geometry"],
        WayConfig(
            latencies=(4,) * cfg["ways"],
            disabled_band=cfg["disabled_band"],
            num_bands=cfg["num_bands"],
        ),
    )


def _yapd_cache(cfg: dict) -> SetAssociativeCache:
    return SetAssociativeCache(
        cfg["geometry"],
        WayConfig(
            latencies=tuple(
                None if way == cfg["disabled_way"] else 4
                for way in range(cfg["ways"])
            )
        ),
    )


@pytest.mark.parametrize("index", range(NUM_CONFIGS))
def test_randomized_config_is_equivalent(index):
    """Post-decoder property + identical hit/miss sequence for one config."""
    cfg = _random_config(index)
    geometry, ways = cfg["geometry"], cfg["ways"]
    hyapd = _hyapd_cache(cfg)
    yapd = _yapd_cache(cfg)

    # --- post-decoder property: every address keeps exactly A-1 ways,
    # and which way is lost rotates through all of them.
    lost_ways = set()
    for set_index in range(geometry.num_sets):
        eligible = hyapd.eligible_ways(set_index)
        assert len(eligible) == ways - 1, (
            f"config {index}: set {set_index} has {len(eligible)} candidate "
            f"ways, expected {ways - 1}"
        )
        (lost,) = set(range(ways)) - set(eligible)
        group = geometry.address_group(set_index, cfg["num_bands"])
        assert (group + lost) % cfg["num_bands"] == cfg["disabled_band"]
        lost_ways.add(lost)
    assert lost_ways == set(range(ways))

    # --- differential run: identical hit/miss on every access, and each
    # miss fills the positionally-equivalent way (i-th eligible way of
    # the set in both organisations).
    for step, (address, write) in enumerate(cfg["accesses"]):
        h_result = hyapd.access(address, write=write)
        y_result = yapd.access(address, write=write)
        assert h_result.hit == y_result.hit, (
            f"config {index}, access {step}: H-YAPD "
            f"{'hit' if h_result.hit else 'miss'} but YAPD "
            f"{'hit' if y_result.hit else 'miss'} at {address:#x}"
        )
        if not h_result.hit:
            h_fill = hyapd.fill(address, dirty=write)
            y_fill = yapd.fill(address, dirty=write)
            set_index = h_fill.set_index
            h_pos = hyapd.eligible_ways(set_index).index(h_fill.way)
            y_pos = yapd.eligible_ways(set_index).index(y_fill.way)
            assert h_pos == y_pos, (
                f"config {index}, access {step}: fills diverged "
                f"positionally (H-YAPD way {h_fill.way} at {h_pos}, "
                f"YAPD way {y_fill.way} at {y_pos})"
            )
            assert h_fill.evicted_dirty == y_fill.evicted_dirty

    assert (hyapd.hits, hyapd.misses, hyapd.evictions) == (
        yapd.hits, yapd.misses, yapd.evictions,
    )
    assert hyapd.accesses == len(cfg["accesses"])


def test_configs_cover_the_design_space():
    """The seeded sample actually varies every dimension it randomizes."""
    configs = [_random_config(i) for i in range(NUM_CONFIGS)]
    assert {c["ways"] for c in configs} == {2, 4, 8}
    assert len({c["geometry"].num_sets for c in configs}) >= 3
    assert len({c["geometry"].block_bytes for c in configs}) >= 3
    # Disabled band and disabled way are independent draws.
    assert any(c["disabled_band"] != c["disabled_way"] for c in configs)


def test_disabled_band_way_is_never_used():
    """No hit or fill is ever served by a gated (group, way) location."""
    cfg = _random_config(3)
    cache = _hyapd_cache(cfg)
    geometry = cfg["geometry"]
    for address, write in cfg["accesses"]:
        result = cache.access(address, write=write)
        if not result.hit:
            result = cache.fill(address, dirty=write)
        group = geometry.address_group(result.set_index, cfg["num_bands"])
        band = (group + result.way) % cfg["num_bands"]
        assert band != cfg["disabled_band"]
