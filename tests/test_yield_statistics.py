"""Tests for yield confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.core.errors import ConfigurationError
from repro.schemes import Hybrid, YAPD
from repro.schemes.base import RescueOutcome
from repro.yieldmodel import YieldStudy
from repro.yieldmodel.analysis import PopulationResult
from repro.yieldmodel.statistics import (
    bootstrap_interval,
    bootstrap_replicates,
    loss_reduction_interval,
    scheme_yield_interval,
    wilson_interval,
)

from tests.conftest import make_chip


class _NeverSaves:
    """A scheme that rescues nothing (edge-case populations)."""

    name = "NeverSaves"

    def rescue(self, case) -> RescueOutcome:
        return RescueOutcome(
            scheme=self.name, saved=False, configuration=case.configuration
        )


class TestWilson:
    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert (0.5 - low) == pytest.approx(high - 0.5, abs=1e-9)

    def test_behaves_at_extremes(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert high > 0.0
        low, high = wilson_interval(100, 100)
        assert high == 1.0
        assert low < 1.0

    def test_narrows_with_population(self):
        small = wilson_interval(90, 100)
        large = wilson_interval(900, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(90, 100, confidence=0.90)
        wide = wilson_interval(90, 100, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=0.87)

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    def test_interval_contains_point_estimate(self, successes, total):
        successes = min(successes, total)
        low, high = wilson_interval(successes, total)
        assert low <= successes / total <= high


class TestBootstrap:
    def test_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 20
        low, high = bootstrap_interval(values, resamples=500)
        assert low < 3.0 < high

    def test_deterministic_per_seed(self):
        values = list(np.random.default_rng(1).normal(0, 1, 50))
        a = bootstrap_interval(values, seed=7, resamples=200)
        b = bootstrap_interval(values, seed=7, resamples=200)
        assert a == b

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            bootstrap_interval([])


class TestEdgeCases:
    """Empty, all-failing and single-chip populations."""

    def test_wilson_rejects_empty_population(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(0, 0)

    def test_wilson_single_chip(self):
        low, high = wilson_interval(1, 1)
        assert low < 1.0
        assert high == 1.0
        low, high = wilson_interval(0, 1)
        assert low == 0.0
        assert high > 0.0

    def test_bootstrap_rejects_empty_values(self):
        with pytest.raises(ConfigurationError):
            bootstrap_replicates([])

    def test_bootstrap_rejects_bad_resamples_and_start(self):
        with pytest.raises(ConfigurationError):
            bootstrap_replicates([1.0], resamples=0)
        with pytest.raises(ConfigurationError):
            bootstrap_replicates([1.0], start=-1)

    def test_bootstrap_single_value_is_degenerate(self):
        stats = bootstrap_replicates([2.5], resamples=50)
        assert np.all(stats == 2.5)
        low, high = bootstrap_interval([2.5], resamples=50)
        assert low == high == 2.5

    def test_all_failing_population(self):
        """Every chip fails and no scheme saves any: yield interval hugs
        zero, loss reduction hugs zero."""
        chips = [make_chip([2.0, 2.0, 2.0, 2.0]) for _ in range(30)]
        pop = PopulationResult(
            constraints=chips[0].constraints, cases=chips, h_cases=chips
        )
        scheme = _NeverSaves()
        low, high = scheme_yield_interval(pop, scheme)
        assert low == 0.0
        assert high < 0.2
        low, high = loss_reduction_interval(pop, scheme, resamples=100)
        assert low == high == 0.0

    def test_loss_reduction_rejects_no_failures(self):
        chips = [make_chip([0.9, 0.9, 0.9, 0.9]) for _ in range(5)]
        pop = PopulationResult(
            constraints=chips[0].constraints, cases=chips, h_cases=chips
        )
        with pytest.raises(ConfigurationError):
            loss_reduction_interval(pop, _NeverSaves())


class TestPopulationIntervals:
    @pytest.fixture(scope="class")
    def pop(self):
        return YieldStudy(seed=2006, count=400).run()

    def test_yield_interval_brackets_point(self, pop):
        breakdown = pop.breakdown([Hybrid()])
        low, high = scheme_yield_interval(pop, Hybrid())
        assert low < breakdown.yield_with("Hybrid") < high
        assert high - low < 0.08  # a few hundred chips pin it reasonably

    def test_yapd_and_hybrid_intervals_ordered(self, pop):
        yapd = scheme_yield_interval(pop, YAPD())
        hybrid = scheme_yield_interval(pop, Hybrid())
        assert hybrid[1] >= yapd[1]

    def test_loss_reduction_interval(self, pop):
        breakdown = pop.breakdown([Hybrid()])
        low, high = loss_reduction_interval(pop, Hybrid(), resamples=300)
        assert low < breakdown.loss_reduction("Hybrid") < high
