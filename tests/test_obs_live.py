"""Unit tests for the live-observability layer.

Covers the three new obs modules end to end, without a socket:

* quantile sketches — exact below capacity, bounded rank error above it
  (seeded reservoir, so the assertions are deterministic);
* rolling-window rollups — rotation, in-place recycling, aging-out,
  and integrity under many threaded writers;
* Prometheus text exposition — a golden-format check plus the strict
  parser rejecting malformed pages;
* request logs, span rings, and the self-contained dashboard page.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.obs.dashboard import dashboard_html
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (
    metric_name,
    parse_exposition,
    render_exposition,
)
from repro.obs.reqlog import RequestLog, SpanRing, new_request_id
from repro.obs.rollup import QuantileSketch, RequestRollup, _quantile_of


# ----------------------------------------------------------------------
# quantile sketches
# ----------------------------------------------------------------------
def test_sketch_exact_below_capacity():
    rng = random.Random(7)
    values = [rng.gauss(10.0, 3.0) for _ in range(300)]
    sketch = QuantileSketch(capacity=512, seed=1)
    for value in values:
        sketch.observe(value)
    ordered = sorted(values)
    for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
        assert sketch.quantile(q) == _quantile_of(ordered, q)
    assert sketch.count == 300
    assert sketch.min == min(values)
    assert sketch.max == max(values)
    assert sketch.mean == pytest.approx(sum(values) / len(values))


def test_sketch_accuracy_bounds_above_capacity():
    # Uniform[0,1): the true q-quantile IS q, so rank error is readable
    # directly off the estimate. With capacity 512 the standard error of
    # a quantile is ~sqrt(q(1-q)/512) <= 0.023; 0.1 is > 4 sigma.
    rng = random.Random(2006)
    sketch = QuantileSketch(capacity=512, seed=9)
    for _ in range(20000):
        sketch.observe(rng.random())
    estimates = sketch.quantiles((0.5, 0.95, 0.99))
    for q_text, estimate in estimates.items():
        assert abs(estimate - float(q_text)) < 0.1, (q_text, estimate)
    assert sketch.count == 20000
    assert len(sketch.samples()) == 512


def test_sketch_is_deterministic_and_resets():
    def run():
        sketch = QuantileSketch(capacity=64, seed=5)
        for i in range(1000):
            sketch.observe((i * 37) % 101)
        return sketch.quantiles()

    assert run() == run()
    sketch = QuantileSketch(capacity=64, seed=5)
    sketch.observe(1.0)
    sketch.reset()
    assert sketch.count == 0
    assert sketch.quantile(0.5) == 0.0


def test_quantile_of_edge_cases():
    assert _quantile_of([], 0.5) == 0.0
    assert _quantile_of([3.0], 0.99) == 3.0
    assert _quantile_of([1.0, 2.0], 0.5) == 1.5
    with pytest.raises(ValueError):
        _quantile_of([1.0], 1.5)
    with pytest.raises(ValueError):
        QuantileSketch(capacity=0)


# ----------------------------------------------------------------------
# rolling windows
# ----------------------------------------------------------------------
def test_rollup_aggregates_within_span():
    rollup = RequestRollup(window_seconds=10.0, windows=3)
    rollup.record("/a", 200, 0.010, warm=True, now=100.0)
    rollup.record("/a", 200, 0.030, now=105.0)
    rollup.record("/a", 500, 0.200, now=112.0)
    rollup.record("/b", 429, 0.001, coalesced=True, now=119.0)
    snap = rollup.snapshot(now=119.0)
    a = snap["endpoints"]["/a"]
    assert a["count"] == 3
    assert a["statuses"] == {"2xx": 2, "5xx": 1}
    assert a["error_rate"] == pytest.approx(1 / 3)
    assert a["dispositions"]["warm"] == 1
    assert a["dispositions"]["cold"] == 2
    assert a["max"] == pytest.approx(0.200)
    b = snap["endpoints"]["/b"]
    assert b["statuses"] == {"4xx": 1}
    assert b["dispositions"]["coalesced"] == 1
    total = snap["total"]
    assert total["count"] == 4
    assert total["rate"] == pytest.approx(4 / 30.0)
    assert snap["recorded_total"] == 4


def test_rollup_ages_out_old_windows():
    rollup = RequestRollup(window_seconds=1.0, windows=2)
    rollup.record("/x", 200, 0.01, now=0.5)
    assert rollup.snapshot(now=0.9)["total"]["count"] == 1
    # Two windows later the old record is outside the covered span.
    snap = rollup.snapshot(now=2.5)
    assert snap["endpoints"] == {}
    assert snap["total"]["count"] == 0
    # Lifetime accounting survives rotation.
    assert rollup.recorded() == 1
    # The recycled slot starts clean when traffic returns.
    rollup.record("/x", 200, 0.02, now=2.6)
    fresh = rollup.snapshot(now=2.7)["endpoints"]["/x"]
    assert fresh["count"] == 1
    assert fresh["max"] == pytest.approx(0.02)


def test_rollup_threaded_writers_keep_integrity():
    rollup = RequestRollup(window_seconds=0.5, windows=4, sketch_capacity=64)
    threads, per_thread = 8, 2000
    base = 1000.0

    def writer(index: int) -> None:
        # Each writer walks its own deterministic clock through several
        # rotations while recording. The 1.5 s sweep fits inside the
        # ring's 2.0 s span, so nothing ages out before the final check.
        for i in range(per_thread):
            now = base + (i / per_thread) * 1.5
            rollup.record(
                f"/ep{index % 2}", 200 if i % 10 else 500, 0.001 * (i % 7),
                warm=bool(i % 2), now=now,
            )

    workers = [
        threading.Thread(target=writer, args=(i,)) for i in range(threads)
    ]
    snapshots = []

    def reader() -> None:
        for _ in range(200):
            snapshots.append(rollup.snapshot(now=base + 1.5))

    observer = threading.Thread(target=reader)
    for worker in workers:
        worker.start()
    observer.start()
    for worker in workers:
        worker.join(timeout=30)
    observer.join(timeout=30)

    assert rollup.recorded() == threads * per_thread
    # Every record landed in a window the final snapshot still covers
    # (the sweep spans windows 2000..2002; the snapshot covers
    # 2000..2003, and late records only ever fold *forward*), so the
    # rolling view conserves the full write count.
    final = rollup.snapshot(now=base + 1.5)
    assert final["total"]["count"] == threads * per_thread
    # Every concurrent snapshot was internally consistent.
    for snap in snapshots:
        total = sum(s["count"] for s in snap["endpoints"].values())
        assert total == snap["total"]["count"]


def test_rollup_validates_configuration():
    with pytest.raises(ValueError):
        RequestRollup(window_seconds=0.0)
    with pytest.raises(ValueError):
        RequestRollup(windows=0)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(7)
    registry.gauge("serve.active").set(2)
    hist = registry.histogram("serve.request_seconds", bounds=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 2.0):
        hist.observe(value)
    return registry


def test_exposition_golden_format():
    registry = _sample_registry()
    rollup = RequestRollup(window_seconds=10.0, windows=3)
    rollup.record("/v1/population", 200, 0.02, warm=True, now=50.0)
    rollup.record("/v1/population", 503, 0.001, now=55.0)
    text = render_exposition(
        [("engine", registry.snapshot())],
        rollup=rollup.snapshot(now=55.0),
        extra_gauges={"serve.uptime_seconds": 12.5},
    )
    lines = text.splitlines()
    assert "# TYPE repro_serve_requests_total counter" in lines
    assert "repro_serve_requests_total 7" in lines
    assert "# TYPE repro_serve_active gauge" in lines
    assert "repro_serve_active 2" in lines
    assert "# TYPE repro_serve_request_seconds histogram" in lines
    assert 'repro_serve_request_seconds_bucket{le="0.01"} 1' in lines
    assert 'repro_serve_request_seconds_bucket{le="1"} 4' in lines
    assert 'repro_serve_request_seconds_bucket{le="+Inf"} 5' in lines
    assert "repro_serve_request_seconds_count 5" in lines
    assert "# TYPE repro_serve_latency_seconds summary" in lines
    assert any(
        line.startswith(
            'repro_serve_latency_seconds{endpoint="/v1/population",'
            'quantile="0.95"} '
        )
        for line in lines
    )
    assert 'repro_serve_window_responses{endpoint="/v1/population",class="5xx"} 1' in lines
    assert "repro_serve_uptime_seconds 12.5" in lines
    assert text.endswith("\n")


def test_exposition_round_trips_through_strict_parser():
    registry = _sample_registry()
    rollup = RequestRollup(window_seconds=5.0, windows=2)
    # A hostile endpoint label must escape and round-trip cleanly.
    nasty = '/we"ird\\path'
    rollup.record(nasty, 200, 0.01, now=10.0)
    text = render_exposition(
        [("engine", registry.snapshot())], rollup=rollup.snapshot(now=10.0)
    )
    families = parse_exposition(text)
    assert families["repro_serve_requests_total"]["type"] == "counter"
    assert families["repro_serve_requests_total"]["samples"][0][2] == 7.0
    hist = families["repro_serve_request_seconds"]
    buckets = [
        (labels["le"], value)
        for name, labels, value in hist["samples"]
        if name.endswith("_bucket")
    ]
    assert buckets[-1] == ("+Inf", 5.0)
    labels = [
        labels
        for _, labels, _ in families["repro_serve_window_requests"]["samples"]
    ]
    assert {"endpoint": nasty} in labels


def test_first_registry_wins_name_collisions():
    first, second = MetricsRegistry(), MetricsRegistry()
    first.gauge("proc.rss_bytes").set(111)
    second.gauge("proc.rss_bytes").set(999)
    text = render_exposition(
        [("engine", first.snapshot()), ("process", second.snapshot())]
    )
    families = parse_exposition(text)
    assert families["repro_proc_rss_bytes"]["samples"] == [
        ("repro_proc_rss_bytes", {}, 111.0)
    ]


@pytest.mark.parametrize(
    "page",
    [
        "repro_orphan 1\n",  # sample without a TYPE header
        "# TYPE repro_x gauge\nrepro_x notanumber\n",
        "# TYPE repro_x gauge\n# TYPE repro_x gauge\nrepro_x 1\n",
        "# TYPE repro_x gauge\nrepro_x 1\nrepro_x 1\n",  # duplicate sample
        "# TYPE repro_x wibble\nrepro_x 1\n",  # unknown type
        "# TYPE repro_x gauge\nrepro_x{bad-label=\"y\"} 1\n",
        "!!! not exposition at all\n",
    ],
)
def test_parser_rejects_malformed_pages(page):
    with pytest.raises(ValueError):
        parse_exposition(page)


def test_parser_rejects_non_cumulative_histogram():
    page = (
        "# TYPE repro_h histogram\n"
        'repro_h_bucket{le="0.1"} 5\n'
        'repro_h_bucket{le="+Inf"} 3\n'
        "repro_h_sum 1\n"
        "repro_h_count 3\n"
    )
    with pytest.raises(ValueError):
        parse_exposition(page)


def test_metric_name_sanitization():
    assert metric_name("serve.request_seconds") == "repro_serve_request_seconds"
    assert metric_name("weird name!") == "repro_weird_name_"
    assert metric_name("engine.inflight", prefix="") == "engine_inflight"


# ----------------------------------------------------------------------
# request log + span ring
# ----------------------------------------------------------------------
def test_request_log_appends_jsonl(tmp_path):
    path = tmp_path / "logs" / "requests.jsonl"
    log = RequestLog(str(path))
    log.record({"request_id": "a" * 16, "status": 200})
    log.record({"request_id": "b" * 16, "status": 503})
    log.close()
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["request_id"] == "a" * 16
    assert log.stats()["written"] == 2
    assert log.stats()["dropped"] == 0


def test_request_log_failure_never_raises(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file, not a directory")
    log = RequestLog(str(target / "requests.jsonl"))
    log.record({"status": 200})  # must not raise
    stats = log.stats()
    assert stats["failed"] is True
    assert stats["dropped"] == 1
    log.record({"status": 200})
    assert log.stats()["dropped"] == 2
    log.close()


def test_span_ring_bounds_and_accounting():
    ring = SpanRing(capacity=3)
    for i in range(5):
        ring.append({"request_id": f"r{i}"})
    snap = ring.snapshot()
    assert snap["capacity"] == 3
    assert snap["appended"] == 5
    assert snap["retained"] == 3
    assert snap["dropped"] == 2
    assert [s["request_id"] for s in snap["spans"]] == ["r2", "r3", "r4"]
    limited = ring.snapshot(limit=1)
    assert [s["request_id"] for s in limited["spans"]] == ["r4"]
    assert limited["dropped"] == 2
    with pytest.raises(ValueError):
        SpanRing(capacity=0)


def test_request_ids_are_unique_hex():
    ids = {new_request_id() for _ in range(256)}
    assert len(ids) == 256
    assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
def test_dashboard_is_self_contained():
    snapshot = {
        "rollup": {
            "total": {
                "count": 12, "rate": 1.2, "error_rate": 0.25,
                "quantiles": {"0.5": 0.01, "0.95": 0.02, "0.99": 0.03},
            },
            "endpoints": {
                "/v1/population": {
                    "count": 12, "rate": 1.2, "error_rate": 0.25,
                    "quantiles": {"0.5": 0.01, "0.95": 0.02, "0.99": 0.03},
                },
            },
        },
        "engine": {
            "gauges": {"serve.active": 2, "yield.estimate.regular.base": 0.9,
                       "yield.ci_halfwidth.regular.base": 0.04,
                       "yield.samples.regular.base": 64},
            "counters": {"serve.admit.accepted": 5},
        },
        "process": {"gauges": {"proc.rss_bytes": 50 << 20}},
        "server": {"uptime_seconds": 42.0, "draining": False},
    }
    page = dashboard_html(snapshot, refresh_seconds=1.0)
    # Zero network references: no absolute URLs, no external resources.
    assert "http://" not in page and "https://" not in page
    assert "src=" not in page and "<link" not in page
    assert page.count("<script>") == page.count("</script>") == 2
    for anchor in ("spark-rate", "spark-p95", "ep-rows", "yield-rows",
                   "q-active", "lat-p95"):
        assert f'id="{anchor}"' in page
    assert "/v1/population" in page
    assert "12</td>" in page  # initial server-side endpoint row
    assert "REPRO_REFRESH_MS = 1000" in page
