"""Tests for per-chip loss classification and Table 6 config keys."""

import pytest

from repro.core.errors import ConfigurationError
from repro.yieldmodel.classify import LossReason, config_key
from tests.conftest import make_chip


class TestConfigKey:
    def test_healthy(self):
        assert config_key((4, 4, 4, 4)) == "4-0-0"

    def test_one_five(self):
        assert config_key((4, 5, 4, 4)) == "3-1-0"

    def test_mixed_six(self):
        assert config_key((4, 5, 6, 4)) == "2-1-1"

    def test_deep_tail_counts_as_six_plus(self):
        assert config_key((4, 4, 4, 9)) == "3-0-1"

    def test_all_slow(self):
        assert config_key((5, 5, 5, 5)) == "0-4-0"

    def test_rejects_sub_base_cycles(self):
        with pytest.raises(ConfigurationError):
            config_key((3, 4, 4, 4))


class TestLossReason:
    def test_delay_bucket_lookup(self):
        assert LossReason.delay(1) is LossReason.DELAY_1
        assert LossReason.delay(4) is LossReason.DELAY_4

    def test_high_associativity_buckets_exist(self):
        assert LossReason.delay(5) is LossReason.DELAY_5
        assert LossReason.delay(8) is LossReason.DELAY_8

    def test_delay_bucket_out_of_range(self):
        with pytest.raises(ConfigurationError):
            LossReason.delay(9)

    def test_is_loss(self):
        assert not LossReason.NONE.is_loss
        assert LossReason.LEAKAGE.is_loss


class TestChipCase:
    def test_healthy_chip_passes(self, healthy_chip):
        assert healthy_chip.passes
        assert healthy_chip.loss_reason is LossReason.NONE
        assert healthy_chip.configuration == "4-0-0"

    def test_one_slow_way(self, one_slow_way_chip):
        case = one_slow_way_chip
        assert not case.passes
        assert case.loss_reason is LossReason.DELAY_1
        assert case.delay_violating_ways == (3,)
        assert case.way_cycles == (4, 4, 4, 5)
        assert case.configuration == "3-1-0"

    def test_leakage_chip(self, leaky_chip):
        assert leaky_chip.loss_reason is LossReason.LEAKAGE
        assert leaky_chip.leakage_violation
        assert not leaky_chip.delay_violation
        assert leaky_chip.configuration == "4-0-0"

    def test_leakage_takes_priority_over_delay(self):
        """A chip violating both is counted in the leakage bucket (the
        Table 6 4-0-0 accounting confirms this reading)."""
        case = make_chip(
            [0.9, 0.9, 0.9, 1.2], way_leakages=[0.3, 0.3, 0.3, 0.3]
        )
        assert case.loss_reason is LossReason.LEAKAGE

    def test_multi_way_delay_bucket(self):
        case = make_chip([1.1, 1.2, 0.9, 1.3])
        assert case.loss_reason is LossReason.DELAY_3
        assert case.delay_violating_ways == (0, 1, 3)

    def test_six_plus_configuration(self):
        case = make_chip([0.9, 0.9, 0.9, 1.6])
        assert case.way_cycles[3] == 7
        assert case.configuration == "3-0-1"

    def test_max_leakage_way(self):
        case = make_chip(
            [0.9] * 4, way_leakages=[0.1, 0.4, 0.2, 0.1]
        )
        assert case.max_leakage_way() == 1

    def test_leakage_after_disabling_way(self):
        case = make_chip([0.9] * 4, way_leakages=[0.1, 0.4, 0.2, 0.1])
        remaining = case.leakage_after_disabling_way(1)
        assert remaining == pytest.approx(0.4)

    def test_way_cycles_without_band(self):
        """Removing the critical band lowers the cycle classification."""
        profiles = [
            [0.9, 0.9, 0.9, 1.2],  # way 0: band 3 violates
            [0.9] * 4,
            [0.9] * 4,
            [0.9] * 4,
        ]
        case = make_chip(
            [1.2, 0.9, 0.9, 0.9], band_profiles=profiles
        )
        assert case.way_cycles[0] == 5
        assert case.way_cycles_without_band(3)[0] == 4
