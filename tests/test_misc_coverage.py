"""Coverage for configuration surfaces: core config, ISA, CLI, fig1 data."""

import pytest

from repro.cache import HierarchyConfig
from repro.cli import build_parser
from repro.experiments.fig1 import TECHNOLOGY_NODES, YIELD_FACTORS
from repro.uarch import CoreConfig, PAPER_CORE
from repro.uarch.isa import FU_KIND, FU_LATENCIES, MEMORY_OPS, OpClass


class TestCoreConfig:
    def test_paper_parameters(self):
        """Pin the paper's Section 5.2 core."""
        assert PAPER_CORE.fetch_width == 4
        assert PAPER_CORE.issue_width == 4
        assert PAPER_CORE.iq_size == 128
        assert PAPER_CORE.rob_size == 256
        assert PAPER_CORE.sched_to_exec_stages == 7
        assert PAPER_CORE.predicted_load_latency == 4
        assert PAPER_CORE.lbb_slack == 1

    def test_replace(self):
        changed = PAPER_CORE.replace(lbb_slack=2)
        assert changed.lbb_slack == 2
        assert changed.iq_size == PAPER_CORE.iq_size

    def test_validation(self):
        with pytest.raises(Exception):
            CoreConfig(issue_width=0)
        with pytest.raises(Exception):
            CoreConfig(lbb_slack=-1)
        with pytest.raises(Exception):
            CoreConfig(fu_pools={"ialu": 0})

    def test_fu_pools_cover_all_kinds(self):
        for op in OpClass:
            assert FU_KIND[op] in PAPER_CORE.fu_pools

    def test_latencies_cover_all_ops(self):
        for op in OpClass:
            assert FU_LATENCIES[op] >= 1

    def test_memory_ops(self):
        assert OpClass.LOAD in MEMORY_OPS
        assert OpClass.STORE in MEMORY_OPS
        assert OpClass.IALU not in MEMORY_OPS


class TestHierarchyConfig:
    def test_validation(self):
        with pytest.raises(Exception):
            HierarchyConfig(l2_latency=0)
        with pytest.raises(Exception):
            HierarchyConfig(memory_latency=-1)


class TestCLIParser:
    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "tableX"])

    def test_settings_flags(self):
        args = build_parser().parse_args(
            ["run", "table2", "--chips", "100", "--seed", "7",
             "--trace", "5000", "--warmup", "1000",
             "--benchmarks", "gzip,mcf"]
        )
        assert args.chips == 100
        assert args.seed == 7
        assert args.benchmarks == "gzip,mcf"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFig1Data:
    def test_all_nodes_have_factors(self):
        assert set(YIELD_FACTORS) == set(TECHNOLOGY_NODES)

    def test_stacks_sum_to_100(self):
        for node, (defect, litho, parametric, yld) in YIELD_FACTORS.items():
            assert defect + litho + parametric + yld == pytest.approx(100.0)

    def test_yield_decreases_with_scaling(self):
        yields = [YIELD_FACTORS[node][3] for node in TECHNOLOGY_NODES]
        assert yields == sorted(yields, reverse=True)

    def test_parametric_becomes_dominant(self):
        """The paper's motivation: parametric loss overtakes the others."""
        defect, litho, parametric, _ = YIELD_FACTORS["0.09"]
        assert parametric > defect + litho
