"""Tests for the extension schemes: DeepVACA and the sensor layer."""

import pytest

from repro.core.errors import ConfigurationError
from repro.schemes import DeepVACA, VACA, YAPD
from repro.schemes.sensors import (
    LeakageSensor,
    MeasuredChipCase,
    yield_with_sensor,
)
from repro.yieldmodel import YieldStudy
from tests.conftest import make_chip


class TestDeepVACA:
    def test_slack_two_tolerates_six_cycles(self):
        case = make_chip([0.9, 0.9, 0.9, 1.45])  # a 6-cycle way
        assert not VACA().rescue(case).saved
        outcome = DeepVACA(2).rescue(case)
        assert outcome.saved
        assert outcome.way_cycles == (4, 4, 4, 6)

    def test_slack_two_still_bounded(self):
        case = make_chip([0.9, 0.9, 0.9, 1.6])  # a 7-cycle way
        assert not DeepVACA(2).rescue(case).saved
        assert DeepVACA(3).rescue(case).saved

    def test_slack_one_equals_vaca(self):
        for delays in ([0.9, 1.2, 0.9, 0.9], [0.9, 1.3, 0.9, 0.9]):
            case = make_chip(delays)
            assert DeepVACA(1).rescue(case).saved == VACA().rescue(case).saved

    def test_leakage_still_unfixable(self, leaky_chip):
        assert not DeepVACA(3).rescue(leaky_chip).saved

    def test_max_cycles(self):
        assert DeepVACA(2).max_cycles == 6

    def test_rejects_negative_slack(self):
        with pytest.raises(ConfigurationError):
            DeepVACA(-1)


class TestLeakageSensor:
    def test_perfect_sensor_is_identity(self):
        sensor = LeakageSensor(relative_noise=0.0, quantisation_levels=0)
        values = (1.0, 2.0, 3.0, 4.0)
        assert sensor.measure_ways(7, values) == values

    def test_noisy_sensor_perturbs(self):
        sensor = LeakageSensor(relative_noise=0.2, quantisation_levels=0)
        values = (1.0, 2.0, 3.0, 4.0)
        assert sensor.measure_ways(7, values) != values

    def test_deterministic_per_chip(self):
        sensor = LeakageSensor(relative_noise=0.1)
        values = (1.0, 2.0, 3.0, 4.0)
        assert sensor.measure_ways(7, values) == sensor.measure_ways(7, values)
        assert sensor.measure_ways(7, values) != sensor.measure_ways(8, values)

    def test_quantisation_limits_codes(self):
        sensor = LeakageSensor(relative_noise=0.0, quantisation_levels=4)
        measured = sensor.measure_ways(1, (0.1, 0.2, 0.3, 1.0))
        step = 1.0 / 4
        for value in measured:
            assert value / step == pytest.approx(round(value / step))


class TestMeasuredChipCase:
    def test_noise_can_flip_the_leakiest_way(self):
        case = make_chip(
            [0.9] * 4, way_leakages=[0.30, 0.31, 0.30, 0.30]
        )
        truth = case.max_leakage_way()
        flips = 0
        for seed in range(30):
            sensor = LeakageSensor(relative_noise=0.2, seed=seed)
            measured = MeasuredChipCase(case, sensor)
            if measured.max_leakage_way() != truth:
                flips += 1
        assert flips > 0  # a near-tie is fragile under 20% noise

    def test_truth_preserved(self, leaky_chip):
        sensor = LeakageSensor(relative_noise=0.3, seed=3)
        measured = MeasuredChipCase(leaky_chip, sensor)
        assert measured.truth is leaky_chip
        assert measured.circuit is leaky_chip.circuit


class TestYieldWithSensor:
    @pytest.fixture(scope="class")
    def cases(self):
        return YieldStudy(seed=2006, count=300).run().cases

    def test_perfect_sensor_matches_direct_yapd(self, cases):
        sensor = LeakageSensor(relative_noise=0.0, quantisation_levels=0)
        believed, actual = yield_with_sensor(cases, YAPD(), sensor)
        direct = sum(
            1 for c in cases if not c.passes and YAPD().rescue(c).saved
        )
        assert believed == actual == direct

    def test_noise_creates_false_saves_or_losses(self, cases):
        sensor = LeakageSensor(relative_noise=0.4, quantisation_levels=4, seed=9)
        believed, actual = yield_with_sensor(cases, YAPD(), sensor)
        perfect_believed, perfect_actual = yield_with_sensor(
            cases, YAPD(), LeakageSensor(0.0, 0)
        )
        assert actual <= believed
        # a very bad sensor cannot beat the perfect one in true saves
        assert actual <= perfect_actual
