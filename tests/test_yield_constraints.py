"""Tests for yield constraints, policies, and the cycles mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.yieldmodel.constraints import (
    BASE_ACCESS_CYCLES,
    ConstraintPolicy,
    NOMINAL_POLICY,
    RELAXED_POLICY,
    STRICT_POLICY,
    YieldConstraints,
)


class TestPolicies:
    """Pin the paper's Section 5.1 constraint policies."""

    def test_nominal(self):
        assert NOMINAL_POLICY.delay_sigma_multiple == 1.0
        assert NOMINAL_POLICY.leakage_mean_multiple == 3.0

    def test_relaxed(self):
        assert RELAXED_POLICY.delay_sigma_multiple == 1.5
        assert RELAXED_POLICY.leakage_mean_multiple == 4.0

    def test_strict(self):
        assert STRICT_POLICY.delay_sigma_multiple == 0.5
        assert STRICT_POLICY.leakage_mean_multiple == 2.0

    def test_derive(self):
        delays = [1.0, 2.0, 3.0, 4.0]  # mean 2.5, sigma ~1.118
        leaks = [1.0, 1.0, 2.0, 4.0]  # mean 2.0
        constraints = NOMINAL_POLICY.derive(delays, leaks)
        assert constraints.delay_limit == pytest.approx(2.5 + 1.118, abs=1e-3)
        assert constraints.leakage_limit == pytest.approx(6.0)

    def test_strict_is_tighter_than_relaxed(self):
        delays = [1.0, 1.1, 0.9, 1.2, 0.8]
        leaks = [1.0, 2.0, 1.5, 0.5, 1.0]
        strict = STRICT_POLICY.derive(delays, leaks)
        relaxed = RELAXED_POLICY.derive(delays, leaks)
        assert strict.delay_limit < relaxed.delay_limit
        assert strict.leakage_limit < relaxed.leakage_limit

    def test_derive_needs_population(self):
        with pytest.raises(ConfigurationError):
            NOMINAL_POLICY.derive([1.0], [1.0])

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            ConstraintPolicy("bad", 0.0, 1.0)


class TestCyclesMapping:
    CONSTRAINTS = YieldConstraints(delay_limit=1.0, leakage_limit=1.0)

    def test_within_limit_is_base(self):
        assert self.CONSTRAINTS.cycles_for_delay(0.5) == BASE_ACCESS_CYCLES
        assert self.CONSTRAINTS.cycles_for_delay(1.0) == BASE_ACCESS_CYCLES

    def test_five_cycle_band(self):
        """One extra cycle buys one extra quarter of the limit."""
        assert self.CONSTRAINTS.cycles_for_delay(1.01) == 5
        assert self.CONSTRAINTS.cycles_for_delay(1.25) == 5

    def test_six_cycle_band(self):
        assert self.CONSTRAINTS.cycles_for_delay(1.26) == 6
        assert self.CONSTRAINTS.cycles_for_delay(1.50) == 6

    def test_deep_tail(self):
        assert self.CONSTRAINTS.cycles_for_delay(2.0) == 8

    def test_rejects_non_positive_delay(self):
        with pytest.raises(ConfigurationError):
            self.CONSTRAINTS.cycles_for_delay(0.0)

    def test_meets_predicates(self):
        assert self.CONSTRAINTS.meets_delay(1.0)
        assert not self.CONSTRAINTS.meets_delay(1.0001)
        assert self.CONSTRAINTS.meets_leakage(1.0)
        assert not self.CONSTRAINTS.meets_leakage(1.1)

    @given(st.floats(min_value=1e-6, max_value=10.0))
    def test_cycles_monotone_and_bounded_below(self, delay):
        cycles = self.CONSTRAINTS.cycles_for_delay(delay)
        assert cycles >= BASE_ACCESS_CYCLES
        # one more quarter-limit never decreases the cycle count
        assert self.CONSTRAINTS.cycles_for_delay(delay + 0.25) >= cycles

    @given(st.floats(min_value=0.01, max_value=5.0))
    def test_cycles_give_enough_time(self, delay):
        """cycles * (limit/4) always covers the delay."""
        cycles = self.CONSTRAINTS.cycles_for_delay(delay)
        assert cycles * (1.0 / BASE_ACCESS_CYCLES) >= delay - 1e-9
