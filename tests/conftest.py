"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

import pytest

from repro.circuit.cache_model import CacheCircuitResult, WayCircuitResult
from repro.engine import reset_engine
from repro.yieldmodel.classify import ChipCase
from repro.yieldmodel.constraints import YieldConstraints


@pytest.fixture(scope="session", autouse=True)
def _isolated_engine(tmp_path_factory):
    """Keep the engine's persistent store out of the working tree.

    Tests get a per-session cache directory, so runs stay hermetic (no
    stale `.repro_cache/` entries from older code) while populations
    computed early in the session are still reused by later modules.
    """
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    reset_engine()
    yield
    reset_engine()


def make_way(
    way: int,
    band_delays: Sequence[float],
    band_leakage: Optional[Sequence[float]] = None,
    peripheral: float = 1e-4,
) -> WayCircuitResult:
    """Build a synthetic way result (delays in seconds, leakage in watts)."""
    if band_leakage is None:
        band_leakage = [1e-3 for _ in band_delays]
    return WayCircuitResult(
        way=way,
        band_delays=tuple(band_delays),
        band_leakage=tuple(band_leakage),
        peripheral_leakage=peripheral,
    )


def make_chip(
    way_delays: Sequence[float],
    way_leakages: Optional[Sequence[float]] = None,
    delay_limit: float = 1.0,
    leakage_limit: float = 1.0,
    num_bands: int = 4,
    band_profiles: Optional[Sequence[Sequence[float]]] = None,
    chip_id: int = 0,
) -> ChipCase:
    """Build a synthetic chip case.

    By default every way has uniform bands at its ``way_delays`` entry and
    evenly split leakage summing to ``way_leakages``. ``band_profiles``
    overrides per-way band delays for H-YAPD tests.
    """
    if way_leakages is None:
        way_leakages = [leakage_limit / (2 * len(way_delays))] * len(way_delays)
    ways = []
    for w, delay in enumerate(way_delays):
        if band_profiles is not None:
            delays = band_profiles[w]
        else:
            delays = [delay] * num_bands
        periph = way_leakages[w] * 0.1
        per_band = (way_leakages[w] - periph) / num_bands
        ways.append(
            make_way(
                w,
                delays,
                band_leakage=[per_band] * num_bands,
                peripheral=periph,
            )
        )
    circuit = CacheCircuitResult(chip_id=chip_id, ways=tuple(ways))
    constraints = YieldConstraints(
        delay_limit=delay_limit, leakage_limit=leakage_limit
    )
    return ChipCase(circuit=circuit, constraints=constraints)


@pytest.fixture
def healthy_chip() -> ChipCase:
    """A chip comfortably inside both limits."""
    return make_chip([0.9, 0.9, 0.9, 0.9])


@pytest.fixture
def one_slow_way_chip() -> ChipCase:
    """Config 3-1-0: one way needs 5 cycles."""
    return make_chip([0.9, 0.9, 0.9, 1.2])


@pytest.fixture
def leaky_chip() -> ChipCase:
    """Leakage violation with fast ways."""
    return make_chip(
        [0.9, 0.9, 0.9, 0.9], way_leakages=[0.2, 0.2, 0.2, 0.5]
    )
