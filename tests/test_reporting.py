"""Tests for the SVG canvas, chart builders, and figure wiring."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.errors import ConfigurationError
from repro.reporting import SvgCanvas, bar_chart, scatter_chart
from repro.reporting.charts import _nice_ticks
from repro.reporting.figures import figure_svg


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSvgCanvas:
    def test_render_is_valid_xml(self):
        canvas = SvgCanvas(100, 80)
        canvas.rect(1, 2, 3, 4)
        canvas.circle(5, 6, 7)
        canvas.line(0, 0, 10, 10)
        canvas.polyline([(0, 0), (1, 1), (2, 0)])
        canvas.text(10, 10, "hello & <goodbye>")
        root = parse(canvas.render())
        assert root.tag.endswith("svg")
        assert canvas.element_count == 5

    def test_text_is_escaped(self):
        canvas = SvgCanvas(10, 10)
        canvas.text(0, 0, "<script>")
        assert "<script>" not in canvas.render().split("text")[1]

    def test_dimensions(self):
        root = parse(SvgCanvas(320, 200).render())
        assert root.get("width") == "320"
        assert root.get("height") == "200"

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            SvgCanvas(0, 10)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0
        assert ticks[-1] >= 10.0

    def test_handles_degenerate_range(self):
        assert _nice_ticks(5.0, 5.0)

    def test_small_values(self):
        ticks = _nice_ticks(0.001, 0.009)
        assert len(ticks) >= 3


class TestCharts:
    def test_scatter_renders_all_points(self):
        svg = scatter_chart(
            [1.0, 2.0, 3.0], [3.0, 2.0, 1.0],
            title="t", xlabel="x", ylabel="y",
        )
        root = parse(svg)
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        assert len(circles) == 3

    def test_scatter_reference_lines(self):
        svg = scatter_chart(
            [0.0, 10.0], [0.0, 10.0],
            title="t", xlabel="x", ylabel="y",
            vline=5.0, hline=5.0,
        )
        assert svg.count("stroke-dasharray") == 2

    def test_scatter_validates(self):
        with pytest.raises(ConfigurationError):
            scatter_chart([1.0], [1.0, 2.0], "t", "x", "y")

    def test_bar_chart_bar_count(self):
        svg = bar_chart(
            ["a", "b", "c"],
            {"s1": [1.0, 2.0, 3.0], "s2": [3.0, 2.0, 1.0]},
            title="t", ylabel="y",
        )
        root = parse(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        # background + 6 bars + 2 legend swatches
        assert len(rects) == 1 + 6 + 2

    def test_bar_chart_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a", "b"], {"s": [1.0]}, title="t", ylabel="y")


class TestFigureWiring:
    def test_fig8_produces_svg(self):
        from repro.experiments import ExperimentSettings, run_experiment

        settings = ExperimentSettings(chips=150)
        result = run_experiment("fig8", settings)
        svg = figure_svg(result)
        assert svg is not None
        parse(svg)

    def test_tables_produce_nothing(self):
        from repro.experiments import ExperimentSettings, run_experiment

        result = run_experiment("fig1", ExperimentSettings(chips=150))
        assert figure_svg(result) is None
