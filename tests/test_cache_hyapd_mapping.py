"""Tests for the H-YAPD horizontal-way address mapping (paper Figure 5).

The invariants the paper's modified post-decoder guarantees:

* group ``g`` of way ``w`` lives in band ``(g + w) mod B``;
* disabling one band removes exactly one way from every address group
  (and a *different* way per group);
* therefore every address retains ``ways - 1`` candidate locations and
  hit/miss behaviour matches YAPD's 3-way cache exactly.
"""

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.cache import CacheGeometry, SetAssociativeCache, WayConfig
from repro.core import units

GEOM = CacheGeometry(16 * units.KB, 4, 32)


def addr(set_index: int, tag: int) -> int:
    return ((tag << 7) | set_index) << 5


def hyapd_config(band: int) -> WayConfig:
    return WayConfig(latencies=(4, 4, 4, 4), disabled_band=band, num_bands=4)


class TestMappingInvariants:
    @pytest.mark.parametrize("band", range(4))
    def test_every_set_loses_exactly_one_way(self, band):
        cache = SetAssociativeCache(GEOM, hyapd_config(band))
        for set_index in range(GEOM.num_sets):
            assert cache.effective_associativity(set_index) == 3

    @pytest.mark.parametrize("band", range(4))
    def test_lost_way_differs_per_group(self, band):
        cache = SetAssociativeCache(GEOM, hyapd_config(band))
        sets_per_group = GEOM.num_sets // 4
        lost = []
        for group in range(4):
            eligible = set(cache.eligible_ways(group * sets_per_group))
            missing = set(range(4)) - eligible
            assert len(missing) == 1
            lost.append(missing.pop())
        assert sorted(lost) == [0, 1, 2, 3]

    def test_paper_example_band0(self):
        """Paper: with h-way 0 off, lines 0-31 may live in ways 1, 2, 3."""
        cache = SetAssociativeCache(GEOM, hyapd_config(0))
        assert cache.eligible_ways(0) == [1, 2, 3]

    def test_paper_example_last_group(self):
        """...while the last address group loses a different way (its own
        rotation maps group 3 to band 0 in way 1)."""
        cache = SetAssociativeCache(GEOM, hyapd_config(0))
        last_group_set = GEOM.num_sets - 1
        assert 0 in cache.eligible_ways(last_group_set)
        assert cache.effective_associativity(last_group_set) == 3

    def test_no_disable_keeps_all_ways(self):
        config = WayConfig(latencies=(4, 4, 4, 4))
        cache = SetAssociativeCache(GEOM, config)
        for set_index in range(0, GEOM.num_sets, 17):
            assert cache.effective_associativity(set_index) == 4


class TestHitMissEquivalence:
    """H-YAPD and YAPD have identical hit/miss behaviour (paper 4.2)."""

    @hsettings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=127),
                st.integers(min_value=0, max_value=9),
            ),
            min_size=10,
            max_size=120,
        ),
        st.integers(min_value=0, max_value=3),
    )
    def test_miss_counts_match_three_way(self, accesses, band):
        hyapd = SetAssociativeCache(GEOM, hyapd_config(band))
        yapd = SetAssociativeCache(
            GEOM, WayConfig(latencies=(4, 4, 4, None))
        )
        for set_index, tag in accesses:
            a = addr(set_index, tag)
            for cache in (hyapd, yapd):
                if not cache.access(a).hit:
                    cache.fill(a)
        assert hyapd.misses == yapd.misses
        assert hyapd.hits == yapd.hits

    def test_disabled_band_way_never_serves_group(self):
        cache = SetAssociativeCache(GEOM, hyapd_config(2))
        sets_per_group = GEOM.num_sets // 4
        for group in range(4):
            blocked_way = (2 - group) % 4
            set_index = group * sets_per_group + 1
            for tag in range(8):
                a = addr(set_index, tag)
                if not cache.access(a).hit:
                    result = cache.fill(a)
                    assert result.way != blocked_way
