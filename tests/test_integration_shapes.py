"""Integration tests: the paper's headline shapes hold end to end.

These run the real pipeline — a 1200-chip Monte Carlo population through
the circuit model, constraints, and all four schemes — and assert the
*qualitative* results the paper reports (orderings and rough factors, not
absolute counts). They are the reproduction's primary regression net.
"""

import pytest

from repro.schemes import HYAPD, Hybrid, HybridHorizontal, NaiveBinning, VACA, YAPD
from repro.yieldmodel import LossReason, YieldStudy
from repro.yieldmodel.constraints import RELAXED_POLICY, STRICT_POLICY

CHIPS = 1200


@pytest.fixture(scope="module")
def pop():
    return YieldStudy(seed=2006, count=CHIPS).run()


@pytest.fixture(scope="module")
def breakdown(pop):
    return pop.breakdown([YAPD(), VACA(), Hybrid()])


@pytest.fixture(scope="module")
def h_breakdown(pop):
    return pop.breakdown(
        [HYAPD(), VACA(), HybridHorizontal()], horizontal=True
    )


class TestBaseYieldLoss:
    def test_base_loss_in_paper_band(self, breakdown):
        """Paper: 16.9% parametric loss; we accept 10-25%."""
        loss = breakdown.base_total / CHIPS
        assert 0.10 < loss < 0.25

    def test_leakage_losses_substantial(self, breakdown):
        """Leakage is a major bucket (paper: 138 of 339)."""
        leak = breakdown.base_counts.get(LossReason.LEAKAGE, 0)
        assert leak / breakdown.base_total > 0.15

    def test_single_way_delay_dominates_delay_losses(self, breakdown):
        counts = breakdown.base_counts
        d1 = counts.get(LossReason.DELAY_1, 0)
        multi = sum(
            counts.get(r, 0)
            for r in (LossReason.DELAY_2, LossReason.DELAY_3, LossReason.DELAY_4)
        )
        assert d1 > multi  # paper: 126 vs 75

    def test_h_architecture_loses_more_chips(self, breakdown, h_breakdown):
        """Paper: base loss grows 339 -> 362 with the 2.5% overhead."""
        assert h_breakdown.base_total > breakdown.base_total
        assert h_breakdown.base_total < breakdown.base_total * 1.35


class TestSchemeEffectiveness:
    def test_yield_ordering(self, breakdown):
        """Hybrid > YAPD > VACA > base (paper: 96.8/94.6/88.7/83.1%)."""
        base = breakdown.yield_with()
        yapd = breakdown.yield_with("YAPD")
        vaca = breakdown.yield_with("VACA")
        hybrid = breakdown.yield_with("Hybrid")
        assert hybrid > yapd > vaca > base

    def test_loss_reduction_factors(self, breakdown):
        """Paper: YAPD 68.1%, VACA 33.3%, Hybrid 81.1% loss reduction."""
        assert 0.5 < breakdown.loss_reduction("YAPD") < 0.85
        assert 0.2 < breakdown.loss_reduction("VACA") < 0.55
        assert 0.7 < breakdown.loss_reduction("Hybrid") < 0.97

    def test_hybrid_yield_level(self, breakdown):
        """Paper headline: Hybrid lifts yield to ~97%."""
        assert breakdown.yield_with("Hybrid") > 0.94

    def test_hyapd_beats_yapd_on_leakage(self, breakdown, h_breakdown):
        """Paper: H-YAPD recovers more leakage chips (26 vs 33 lost)."""
        yapd_rate = breakdown.scheme_losses["YAPD"].get(
            LossReason.LEAKAGE, 0
        ) / max(breakdown.base_counts.get(LossReason.LEAKAGE, 1), 1)
        hyapd_rate = h_breakdown.scheme_losses["H-YAPD"].get(
            LossReason.LEAKAGE, 0
        ) / max(h_breakdown.base_counts.get(LossReason.LEAKAGE, 1), 1)
        assert hyapd_rate <= yapd_rate

    def test_hyapd_saves_some_multi_way_chips(self, h_breakdown):
        """Paper Section 4.2: horizontal power-down repairs some chips
        with 3-4 violating ways, which YAPD never can."""
        losses = h_breakdown.scheme_losses["H-YAPD"]
        base = h_breakdown.base_counts
        saved_multi = sum(
            base.get(r, 0) - losses.get(r, 0)
            for r in (LossReason.DELAY_2, LossReason.DELAY_3, LossReason.DELAY_4)
        )
        assert saved_multi > 0

    def test_binning_saves_fewer_than_vaca_at_5(self, pop):
        """Re-binning at 5 cycles rescues the same delay chips as VACA
        (identical feasibility) — the difference is performance, not
        yield."""
        vaca = pop.breakdown([VACA(), NaiveBinning(5)])
        assert vaca.scheme_total("Binning@5") == vaca.scheme_total("VACA")

    def test_binning_at_6_saves_more_chips(self, pop):
        bd = pop.breakdown([NaiveBinning(5), NaiveBinning(6)])
        assert bd.scheme_total("Binning@6") <= bd.scheme_total("Binning@5")


class TestConstraintSensitivity:
    def test_relaxed_and_strict_bracket_nominal(self, pop, breakdown):
        relaxed = pop.reconstrained(RELAXED_POLICY).breakdown([Hybrid()])
        strict = pop.reconstrained(STRICT_POLICY).breakdown([Hybrid()])
        assert relaxed.base_total < breakdown.base_total < strict.base_total

    def test_schemes_help_under_all_policies(self, pop):
        """Paper: 'the proposed schemes perform fairly under different
        yield constraints'."""
        for policy in (RELAXED_POLICY, STRICT_POLICY):
            bd = pop.reconstrained(policy).breakdown([YAPD(), Hybrid()])
            if bd.base_total:
                assert bd.loss_reduction("Hybrid") > 0.5
                assert bd.loss_reduction("YAPD") > 0.3

    def test_strict_hybrid_yield_band(self, pop):
        """Paper: ~92.8% yield under strict constraints with Hybrid."""
        strict = pop.reconstrained(STRICT_POLICY).breakdown([Hybrid()])
        assert strict.yield_with("Hybrid") > 0.85


class TestCensusShape:
    def test_dominant_configurations(self, pop):
        """3-1-0 and 4-0-0 dominate the saved-chip census (paper: 91 and
        105 of 275)."""
        census = pop.configuration_census(Hybrid())
        ordered = sorted(census.items(), key=lambda kv: -kv[1])
        top_two = {name for name, _ in ordered[:2]}
        assert "3-1-0" in top_two or "4-0-0" in top_two
        assert census.get("3-1-0", 0) > census.get("0-4-0", 0)
