"""Micro-trace tests for the out-of-order pipeline engine.

Each test builds a tiny hand-written trace and checks a directional or
counter-level property of the timing model: speculative scheduling,
load-bypass stalls, selective replay, structural hazards, and branch
redirection.

Measurement style: the machine is out of order, so any in-stream warmup
boundary leaks (later instructions issue under the shadow of earlier cold
misses). Steady-state rates are therefore measured as *deltas* between a
short and a long run of the same pattern — the cold-start costs cancel
exactly — and event counters are asserted on full runs.
"""

import pytest

from repro.cache.setassoc import WayConfig
from repro.core.errors import SimulationError, TraceError
from repro.uarch import PAPER_CORE, Simulator, TraceInstruction
from repro.uarch.isa import OpClass
from repro.uarch.trace import count_classes, validate_trace


def ialu(dest=None, srcs=(), pc=0):
    return TraceInstruction(op=OpClass.IALU, dest=dest, srcs=srcs, pc=pc)


def load(dest, address, srcs=(), pc=0):
    return TraceInstruction(
        op=OpClass.LOAD, dest=dest, srcs=srcs, address=address, pc=pc
    )


def run(trace, **kwargs):
    return Simulator(**kwargs).run(list(trace))


def per_op_cycles(make_trace, short=100, long=400, **kwargs):
    """Steady-state cycles per operation via the delta of two runs."""
    a = run(make_trace(short), **kwargs)
    b = run(make_trace(long), **kwargs)
    return (b.cycles - a.cycles) / (long - short)


class TestTraceValidation:
    def test_load_needs_address(self):
        with pytest.raises(TraceError):
            TraceInstruction(op=OpClass.LOAD, dest=1)

    def test_alu_must_not_have_address(self):
        with pytest.raises(TraceError):
            TraceInstruction(op=OpClass.IALU, dest=1, address=0x100)

    def test_store_has_no_dest(self):
        with pytest.raises(TraceError):
            TraceInstruction(op=OpClass.STORE, dest=1, address=0x100)

    def test_only_branches_mispredict(self):
        with pytest.raises(TraceError):
            TraceInstruction(op=OpClass.IALU, mispredicted=True)

    def test_register_bounds(self):
        with pytest.raises(TraceError):
            TraceInstruction(op=OpClass.IALU, dest=32)
        with pytest.raises(TraceError):
            TraceInstruction(op=OpClass.IALU, dest=1, srcs=(40,))

    def test_at_most_two_sources(self):
        with pytest.raises(TraceError):
            TraceInstruction(op=OpClass.IALU, dest=1, srcs=(1, 2, 3))

    def test_validate_trace_rejects_empty(self):
        with pytest.raises(TraceError):
            validate_trace([])

    def test_count_classes(self):
        counts = count_classes([ialu(dest=1), ialu(dest=2), load(3, 0x10)])
        assert counts[OpClass.IALU] == 2
        assert counts[OpClass.LOAD] == 1


class TestThroughput:
    def test_independent_ops_reach_issue_width(self):
        """Independent ALU ops on a 4-wide machine: ~0.25 cycles/op."""
        rate = per_op_cycles(lambda n: [ialu(dest=i % 28) for i in range(n)])
        assert rate < 0.40

    def test_dependent_chain_serialises(self):
        """A strict dependency chain runs at ~1 op/cycle (IALU latency)."""
        rate = per_op_cycles(lambda n: [ialu(dest=1, srcs=(1,))] * n)
        assert 0.9 < rate < 1.2

    def test_chain_slower_than_independent(self):
        chain = per_op_cycles(lambda n: [ialu(dest=1, srcs=(1,))] * n)
        indep = per_op_cycles(lambda n: [ialu(dest=i % 28) for i in range(n)])
        assert chain > indep * 2

    def test_imult_structural_hazard(self):
        """One multiplier: independent multiplies serialise at issue."""
        rate = per_op_cycles(
            lambda n: [
                TraceInstruction(op=OpClass.IMULT, dest=i % 28)
                for i in range(n)
            ]
        )
        assert rate > 0.9

    def test_mem_port_limit(self):
        """2 ports: independent same-block loads cap at 2 per cycle."""
        rate = per_op_cycles(lambda n: [load(i % 28, 0x100) for i in range(n)])
        assert rate > 0.45


class TestLoadUseTiming:
    def test_dependent_waits_for_load(self):
        """A consumer chain behind a load finishes later than without it."""
        base = [ialu(dest=5)] + [ialu(dest=6, srcs=(6,)) for _ in range(20)]
        withload = [load(6, 0x100)] + [
            ialu(dest=6, srcs=(6,)) for _ in range(20)
        ]
        assert run(withload).cycles >= run(base).cycles

    def test_serialized_pointer_chase_costs_hit_latency_per_hop(self):
        """Chained loads (each address depends on the previous) cost the
        4-cycle hit latency per hop in steady state."""
        rate = per_op_cycles(lambda n: [load(7, 0x100, srcs=(7,))] * n)
        assert 3.5 < rate < 4.5

    def test_slow_way_adds_one_cycle_per_hop(self):
        """The same chase on a 5-cycle cache runs ~1 cycle/hop slower and
        absorbs the late hits in load-bypass buffers."""
        fast = per_op_cycles(lambda n: [load(7, 0x100, srcs=(7,))] * n)
        slow = per_op_cycles(
            lambda n: [load(7, 0x100, srcs=(7,))] * n,
            l1d_config=WayConfig(latencies=(5, 5, 5, 5)),
        )
        assert 0.7 < slow - fast < 1.3
        full = run(
            [load(7, 0x100, srcs=(7,))] * 100,
            l1d_config=WayConfig(latencies=(5, 5, 5, 5)),
        )
        assert full.lbb_stalls > 50
        assert full.slow_way_hits > 90

    def test_lbb_disabled_forces_replay(self):
        """With zero-slack buffers a 5-cycle hit replays its dependents
        instead of stalling them."""
        result = run(
            [load(7, 0x100, srcs=(7,))] * 50,
            core=PAPER_CORE.replace(lbb_slack=0),
            l1d_config=WayConfig(latencies=(5, 5, 5, 5)),
        )
        assert result.lbb_stalls == 0
        assert result.replays > 20

    def test_miss_triggers_replay(self):
        """Consumers issued in the shadow of a missing load replay."""
        trace = []
        stride = 128 * 32
        for i in range(40):
            trace.append(load(7, 0x10_0000 + i * stride * 5))
            trace.append(ialu(dest=8, srcs=(7,)))
        result = run(trace)
        assert result.replays > 10

    def test_hits_do_not_replay(self):
        trace = [load(7, 0x100)]
        for _ in range(60):
            trace.append(load(7, 0x100))
            trace.append(ialu(dest=8, srcs=(7,)))
        result = run(trace)
        assert result.replays <= 2  # only the cold miss's shadow


class TestBranches:
    def test_mispredict_stalls_fetch(self):
        def make(n, mispredict):
            trace = []
            for i in range(n):
                if i % 20 == 10:
                    trace.append(
                        TraceInstruction(
                            op=OpClass.BRANCH,
                            srcs=(1,),
                            mispredicted=mispredict,
                        )
                    )
                else:
                    trace.append(ialu(dest=i % 28))
            return trace

        good = run(make(200, False))
        bad = run(make(200, True))
        assert bad.branch_mispredicts == 10
        assert good.branch_mispredicts == 0
        # each mispredict costs at least a ~5-cycle redirect bubble
        assert bad.cycles > good.cycles + 5 * 10

    def test_correct_branches_are_cheap(self):
        def make(n):
            return [
                TraceInstruction(op=OpClass.BRANCH, srcs=(1,))
                if i % 5 == 0
                else ialu(dest=i % 28)
                for i in range(n)
            ]

        assert per_op_cycles(make) < 0.6


class TestAccounting:
    def test_all_instructions_commit(self):
        result = run([ialu(dest=i % 28) for i in range(123)])
        assert result.instructions == 123

    def test_counters_exact_without_warmup(self):
        trace = []
        for _ in range(20):
            trace.append(load(1, 0x100))
            trace.append(
                TraceInstruction(op=OpClass.STORE, srcs=(1,), address=0x200)
            )
        result = run(trace)
        assert result.loads == 20
        assert result.stores == 20

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            run([])

    def test_cpi_and_ipc_consistent(self):
        result = run([ialu(dest=i % 28) for i in range(100)])
        assert result.cpi * result.ipc == pytest.approx(1.0)

    def test_warmup_shrinks_measured_window(self):
        trace = [load(i % 28, 0x100 + (i % 4) * 4096) for i in range(200)]
        full = Simulator().run(iter(trace), warmup=0)
        warm = Simulator().run(iter(trace), warmup=100)
        assert warm.instructions == 100
        assert warm.cycles < full.cycles

    def test_determinism(self):
        trace = [load(i % 28, (i * 3) % 4096 * 8) for i in range(200)]
        a = Simulator().run(iter(trace))
        b = Simulator().run(iter(trace))
        assert a == b
