"""Tests for the perf-regression layer (bench, regress, report, CLI)."""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.engine import reset_engine
from repro.obs import disable_tracing, provenance_stamp, working_tree_dirty
from repro.obs.bench import (
    BenchResult,
    HISTORY_SCHEMA_VERSION,
    append_history,
    load_history,
    make_record,
    new_run_id,
    run_ids,
    run_suite,
    samples_by_bench,
    save_history,
)
from repro.obs.regress import (
    IMPROVED,
    NEUTRAL,
    REGRESSED,
    bootstrap_median_delta_ci,
    classify,
    compare_runs,
    worst_verdict,
)
from repro.obs.report import (
    bench_report_html,
    build_flame_tree,
    flamegraph_html,
)


@pytest.fixture(autouse=True)
def _clean_state():
    disable_tracing()
    yield
    disable_tracing()
    reset_engine()


def _samples(seed: int, center: float, spread: float, n: int = 20):
    rng = random.Random(seed)
    return [abs(rng.gauss(center, spread)) for _ in range(n)]


def _record(bench="engine.population", run_id="run-a", median=0.1,
            suite="engine", created=1000.0, samples=None):
    result = BenchResult(
        suite=suite, bench=bench,
        samples=samples if samples is not None else [median] * 3,
        warmup=1,
    )
    return make_record(
        result, run_id, created, provenance_stamp(workers=1)
    )


# ----------------------------------------------------------------------
# regress: seeded synthetic distributions with known verdicts
# ----------------------------------------------------------------------
class TestRegress:
    def test_clear_regression_is_flagged(self):
        baseline = _samples(1, 1.0, 0.02)
        current = _samples(2, 1.5, 0.02)
        comparison = classify(baseline, current, bench="x", tolerance=0.05)
        assert comparison.verdict == REGRESSED
        assert comparison.delta == pytest.approx(0.5, abs=0.05)
        assert comparison.ci_low > 0.05

    def test_clear_improvement_is_flagged(self):
        baseline = _samples(3, 1.0, 0.02)
        current = _samples(4, 0.5, 0.02)
        comparison = classify(baseline, current, tolerance=0.05)
        assert comparison.verdict == IMPROVED
        assert comparison.ci_high < -0.05

    def test_same_distribution_is_neutral(self):
        baseline = _samples(5, 1.0, 0.02)
        current = _samples(6, 1.0, 0.02)
        assert classify(baseline, current, tolerance=0.05).verdict == NEUTRAL

    def test_identical_samples_are_neutral(self):
        samples = [0.5, 0.6, 0.7]
        comparison = classify(samples, samples)
        assert comparison.verdict == NEUTRAL
        assert comparison.delta == 0.0

    def test_constant_samples_have_zero_width_ci(self):
        comparison = classify([0.5] * 5, [0.5] * 5)
        assert comparison.verdict == NEUTRAL
        assert comparison.ci_low == comparison.ci_high == 0.0

    def test_small_shift_within_tolerance_is_neutral(self):
        baseline = _samples(7, 1.0, 0.01)
        current = _samples(8, 1.02, 0.01)  # +2% < 5% tolerance
        assert classify(baseline, current, tolerance=0.05).verdict == NEUTRAL

    def test_classification_is_deterministic(self):
        baseline = _samples(9, 1.0, 0.05)
        current = _samples(10, 1.1, 0.05)
        first = classify(baseline, current, bench="b")
        second = classify(baseline, current, bench="b")
        assert first == second

    def test_bootstrap_ci_brackets_the_delta(self):
        baseline = _samples(11, 1.0, 0.02)
        current = _samples(12, 1.2, 0.02)
        low, high = bootstrap_median_delta_ci(baseline, current)
        assert low <= 0.2 <= high + 0.05

    def test_rejects_empty_samples_and_bad_params(self):
        with pytest.raises(ValueError):
            bootstrap_median_delta_ci([], [1.0])
        with pytest.raises(ValueError):
            bootstrap_median_delta_ci([1.0], [1.0], confidence=1.5)
        with pytest.raises(ValueError):
            classify([1.0], [1.0], tolerance=-0.1)

    def test_compare_runs_reports_unmatched(self):
        comparisons, unmatched = compare_runs(
            {"a": [1.0, 1.0], "only_base": [1.0]},
            {"a": [1.0, 1.0], "only_cur": [1.0]},
        )
        assert [c.bench for c in comparisons] == ["a"]
        assert unmatched == ["only_base", "only_cur"]

    def test_worst_verdict_orders_severity(self):
        neutral = classify([1.0, 1.0], [1.0, 1.0], bench="n")
        regressed = classify(
            _samples(13, 1.0, 0.01), _samples(14, 2.0, 0.01), bench="r"
        )
        assert worst_verdict([]) is None
        assert worst_verdict([neutral]) == NEUTRAL
        assert worst_verdict([neutral, regressed]) == REGRESSED


# ----------------------------------------------------------------------
# trend store codec
# ----------------------------------------------------------------------
class TestHistoryCodec:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "none.json") == ([], 0)

    def test_round_trip_preserves_records(self, tmp_path):
        path = tmp_path / "BENCH_history.json"
        records = [
            _record(bench="a", run_id="r1", samples=[0.1, 0.2, 0.3]),
            _record(bench="b", run_id="r1", samples=[0.4]),
        ]
        save_history(path, records)
        loaded, skipped = load_history(path)
        assert skipped == 0
        assert loaded == records
        assert loaded[0]["provenance"]["workers"] == 1

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "h.json"
        assert append_history(path, [_record(run_id="r1")]) == 1
        assert append_history(path, [_record(run_id="r2")]) == 2
        loaded, _ = load_history(path)
        assert run_ids(loaded) == ["r1", "r2"]

    def test_schema_version_gate_refuses_other_versions(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(
            json.dumps({"version": HISTORY_SCHEMA_VERSION + 1, "records": []}),
            encoding="utf-8",
        )
        with pytest.raises(ConfigurationError, match="schema version"):
            load_history(path)

    def test_non_json_and_wrong_shape_refuse(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_history(path)
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unexpected shape"):
            load_history(path)

    def test_malformed_records_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "h.json"
        good = _record(run_id="r1")
        path.write_text(
            json.dumps({
                "version": HISTORY_SCHEMA_VERSION,
                "records": [
                    good,
                    {"run_id": "r2"},          # missing everything else
                    {"run_id": "r3", "suite": "s", "bench": "b",
                     "samples": [], "provenance": {}},  # empty samples
                    "not-a-dict",
                ],
            }),
            encoding="utf-8",
        )
        loaded, skipped = load_history(path)
        assert loaded == [good]
        assert skipped == 3

    def test_samples_by_bench_filters_run_and_suite(self):
        records = [
            _record(bench="a", run_id="r1", samples=[1.0]),
            _record(bench="a", run_id="r2", samples=[2.0]),
            _record(bench="p", run_id="r2", suite="pipeline", samples=[3.0]),
        ]
        assert samples_by_bench(records, run_id="r2") == {
            "a": [2.0], "p": [3.0]
        }
        assert samples_by_bench(records, run_id="r2", suite="engine") == {
            "a": [2.0]
        }


# ----------------------------------------------------------------------
# provenance
# ----------------------------------------------------------------------
class TestProvenance:
    def test_stamp_has_identity_and_no_host_details(self):
        stamp = provenance_stamp(workers=3, config={"suite": "engine"})
        assert set(stamp) == {
            "git_sha", "dirty", "python", "implementation", "platform",
            "workers", "config_hash",
        }
        assert stamp["workers"] == 3
        assert len(stamp["config_hash"]) == 12
        # Records are committed/shared: nothing host-identifying.
        text = json.dumps(stamp)
        import socket
        assert socket.gethostname() not in text

    def test_stamp_in_this_repo_has_real_sha(self):
        import pathlib
        stamp = provenance_stamp(cwd=str(pathlib.Path(__file__).parent))
        assert stamp["git_sha"] == "unknown" or (
            len(stamp["git_sha"]) == 40
            and all(c in "0123456789abcdef" for c in stamp["git_sha"])
        )

    def test_outside_a_repo_degrades_gracefully(self, tmp_path):
        assert working_tree_dirty(cwd=str(tmp_path)) in (None, False)
        stamp = provenance_stamp(cwd=str(tmp_path))
        assert stamp["git_sha"] == "unknown" or stamp["git_sha"]

    def test_config_hash_is_stable_and_order_independent(self):
        from repro.obs import config_hash
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
class TestHarness:
    def test_unknown_suite_and_bad_params_raise(self):
        with pytest.raises(ConfigurationError, match="unknown bench suite"):
            run_suite("nope")
        with pytest.raises(ConfigurationError):
            run_suite("engine", repeats=0)
        with pytest.raises(ConfigurationError):
            run_suite("engine", warmup=-1)

    def test_engine_suite_produces_timed_results(self):
        results = run_suite("engine", repeats=2, warmup=0)
        assert [r.bench for r in results] == [
            "engine.population",
            "population.columnar",
            "population.reference",
            "engine.store_roundtrip",
        ]
        for result in results:
            assert len(result.samples) == 2
            assert all(s > 0 for s in result.samples)
            assert result.median > 0
        # Each repeat recomputed: the engine memo was cleared, so the
        # population benchmark ran as many compute jobs as repeats.
        counters = results[0].metrics["counters"]
        assert counters["engine.jobs.run"] >= 2


# ----------------------------------------------------------------------
# reports (self-contained HTML)
# ----------------------------------------------------------------------
class TestReports:
    def test_bench_report_is_self_contained(self):
        records = [
            _record(run_id="r1", samples=[0.10, 0.11], created=1.0),
            _record(run_id="r2", samples=[0.12, 0.13], created=2.0),
        ]
        comparisons, _ = compare_runs(
            samples_by_bench(records, run_id="r1"),
            samples_by_bench(records, run_id="r2"),
        )
        html_text = bench_report_html(records, skipped=1,
                                      comparisons=comparisons)
        assert "engine.population" in html_text
        assert "<svg" in html_text and "polyline" in html_text
        assert "skipped 1 malformed" in html_text
        assert "http" not in html_text
        assert "src=" not in html_text and "href=" not in html_text

    def test_empty_report_renders(self):
        html_text = bench_report_html([])
        assert "No benchmark records" in html_text
        assert "http" not in html_text

    def test_flame_tree_merges_same_name_siblings(self):
        spans = [
            {"name": "root", "span_id": "1", "parent_id": None, "dur": 1.0},
            {"name": "job", "span_id": "2", "parent_id": "1", "dur": 0.3},
            {"name": "job", "span_id": "3", "parent_id": "1", "dur": 0.2},
            {"name": "orphan", "span_id": "4", "parent_id": "missing",
             "dur": 0.1},
        ]
        root = build_flame_tree(spans)
        assert set(root.children) == {"root", "orphan"}
        job = root.children["root"].children["job"]
        assert job.count == 2
        assert job.total == pytest.approx(0.5)
        # Root totals cover only top-level frames (parents already
        # include their children).
        assert root.total == pytest.approx(1.1)

    def test_flamegraph_html_is_self_contained_and_collapsible(self):
        spans = [
            {"name": "outer", "span_id": "1", "parent_id": None, "dur": 2.0},
            {"name": "inner", "span_id": "2", "parent_id": "1", "dur": 1.5},
        ]
        html_text = flamegraph_html(spans, skipped=2, source="t.jsonl")
        assert "<details" in html_text and "<summary>" in html_text
        assert "outer" in html_text and "inner" in html_text
        assert "skipped 2 malformed" in html_text
        assert "http" not in html_text
        assert "<script" not in html_text

    def test_flamegraph_of_empty_trace(self):
        html_text = flamegraph_html([])
        assert "No spans" in html_text


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_run_compare_report_flamegraph_round_trip(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        for _ in range(2):
            assert main([
                "bench", "run", "--suite", "engine",
                "--repeats", "2", "--warmup-runs", "0", "--allow-dirty",
            ]) == 0
        history = tmp_path / "BENCH_history.json"
        assert history.is_file()
        records, skipped = load_history(history)
        assert skipped == 0
        assert len(records) == 8  # 2 runs x 4 benchmarks
        assert len(run_ids(records)) == 2
        assert all(r["provenance"]["python"] for r in records)
        assert (tmp_path / "BENCH_engine.json").is_file()

        assert main(["bench", "compare", "--tolerance", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "bench compare" in out
        assert "overall:" in out

        assert main(["bench", "report", "report.html"]) == 0
        html_text = (tmp_path / "report.html").read_text(encoding="utf-8")
        assert "http" not in html_text
        assert "engine.population" in html_text

        # bench run traced by default -> flamegraph needs no arguments
        # beyond the output path.
        assert (tmp_path / "BENCH_trace.jsonl").is_file()
        assert main(["trace", "flamegraph", "flame.html"]) == 0
        flame = (tmp_path / "flame.html").read_text(encoding="utf-8")
        assert "http" not in flame
        assert "engine.population" in flame

    def test_dirty_tree_is_refused_without_allow_dirty(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            "repro.obs.working_tree_dirty", lambda cwd=None: True
        )
        assert main(["bench", "run", "--suite", "engine"]) == 2
        err = capsys.readouterr().err
        assert "uncommitted changes" in err
        assert not (tmp_path / "BENCH_history.json").exists()

    def test_compare_detects_synthetic_regression(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        history = tmp_path / "BENCH_history.json"
        fast = _samples(20, 0.10, 0.002)
        slow = _samples(21, 0.20, 0.002)
        save_history(history, [
            _record(run_id="r-base", samples=fast, created=1.0),
            _record(run_id="r-new", samples=slow, created=2.0),
        ])
        assert main(["bench", "compare"]) == 1  # regression -> exit 1
        assert "regressed" in capsys.readouterr().out
        assert main(["bench", "compare", "--warn-only"]) == 0

    def test_compare_against_baseline_file(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        save_history(
            baseline_file, [_record(run_id="r-base", samples=[0.1] * 5)]
        )
        save_history(
            tmp_path / "BENCH_history.json",
            [_record(run_id="r-new", samples=[0.1] * 5)],
        )
        assert main([
            "bench", "compare", "--baseline", str(baseline_file)
        ]) == 0
        out = capsys.readouterr().out
        assert "neutral" in out

    def test_compare_without_records_errors(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "compare"]) == 2

    def test_flamegraph_explicit_trace_input(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            json.dumps({"name": "s", "span_id": "1", "parent_id": None,
                        "dur": 0.5, "pid": 1}) + "\n" + "{garbled\n",
            encoding="utf-8",
        )
        out = tmp_path / "flame.html"
        assert main([
            "trace", "flamegraph", str(trace), "--out", str(out)
        ]) == 0
        console = capsys.readouterr().out
        assert "skipped 1 malformed" in console
        assert "http" not in out.read_text(encoding="utf-8")

    def test_flamegraph_without_any_trace_errors(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
        assert main(["trace", "flamegraph", "flame.html"]) == 2
        assert "no trace input" in capsys.readouterr().err


# ----------------------------------------------------------------------
# engine provenance hooks
# ----------------------------------------------------------------------
class TestEngineProvenance:
    def test_engine_provenance_is_cached(self):
        from repro.engine.core import Engine, EngineConfig
        engine = Engine(EngineConfig(workers=2, persistent=False))
        stamp = engine.provenance()
        assert stamp["workers"] == 2
        assert engine.provenance() is stamp

    def test_traced_dispatch_carries_provenance(self, tmp_path, monkeypatch):
        from repro.engine import configure_engine
        from repro.experiments import ExperimentSettings
        from repro.obs import configure_tracing, load_spans

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace = tmp_path / "t.jsonl"
        configure_tracing(trace)
        engine = configure_engine(workers=1, cache_dir=tmp_path / "cache")
        engine.population(ExperimentSettings(
            seed=5, chips=16, trace_length=800, warmup=100,
            benchmarks=("gzip",),
        ))
        disable_tracing()
        dispatches = [
            r for r in load_spans(trace) if r["name"] == "engine.dispatch"
        ]
        assert dispatches
        attrs = dispatches[0]["attrs"]
        assert "sha" in attrs and "config" in attrs
        assert attrs["sha"] == engine.provenance()["git_sha"]
