"""Tests for repro.core: units, rng, validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource, derive_seed, spawn
from repro.core.validation import (
    require_divides,
    require_in_range,
    require_non_negative,
    require_positive,
    require_power_of_two,
)


class TestUnits:
    def test_time_round_trips(self):
        assert units.to_ps(1e-12) == pytest.approx(1.0)
        assert units.to_ns(2.5e-9) == pytest.approx(2.5)

    def test_power_round_trips(self):
        assert units.to_mw(0.005) == pytest.approx(5.0)
        assert units.to_uw(1e-6) == pytest.approx(1.0)

    def test_length_round_trips(self):
        assert units.to_nm(45e-9) == pytest.approx(45.0)
        assert units.to_um(0.25e-6) == pytest.approx(0.25)

    def test_voltage_round_trip(self):
        assert units.to_mv(0.220) == pytest.approx(220.0)

    def test_data_sizes(self):
        assert 16 * units.KB == 16384
        assert units.MB == 1024 * units.KB

    def test_prefixes_consistent(self):
        assert units.NM == units.NANO
        assert units.PS == units.PICO
        assert units.GIGA * units.NANO == pytest.approx(1.0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_label_sensitivity(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_non_negative(self):
        assert derive_seed(0, "") >= 0

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
    def test_always_in_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**63

    def test_spawn_reproducible(self):
        a = spawn(7, "chip-3").normal(size=5)
        b = spawn(7, "chip-3").normal(size=5)
        assert np.array_equal(a, b)

    def test_spawn_independent(self):
        a = spawn(7, "chip-3").normal(size=5)
        b = spawn(7, "chip-4").normal(size=5)
        assert not np.array_equal(a, b)


class TestRandomSource:
    def test_child_reproducible(self):
        a = RandomSource(5).child("sub").normal(0, 1)
        b = RandomSource(5).child("sub").normal(0, 1)
        assert a == b

    def test_children_differ(self):
        root = RandomSource(5)
        assert root.child("a").seed != root.child("b").seed

    def test_labels_compose(self):
        assert RandomSource(5).child("a").label == "root/a"

    def test_uniform_bounds(self):
        source = RandomSource(11)
        for _ in range(100):
            value = source.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_integers_bounds(self):
        source = RandomSource(11)
        values = {source.integers(0, 4) for _ in range(200)}
        assert values <= {0, 1, 2, 3}
        assert len(values) > 1


class TestValidation:
    def test_require_positive_accepts(self):
        require_positive(0.1, "x")

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive(0, "x")

    def test_require_positive_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive(-1, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.001, "x")

    def test_require_in_range_inclusive(self):
        require_in_range(0.0, 0.0, 1.0, "x")
        require_in_range(1.0, 0.0, 1.0, "x")
        with pytest.raises(ConfigurationError):
            require_in_range(1.01, 0.0, 1.0, "x")

    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 2**20])
    def test_power_of_two_accepts(self, value):
        require_power_of_two(value, "x")

    @pytest.mark.parametrize("value", [0, 3, 6, -4, 1023])
    def test_power_of_two_rejects(self, value):
        with pytest.raises(ConfigurationError):
            require_power_of_two(value, "x")

    def test_require_divides(self):
        require_divides(4, 16, "x")
        with pytest.raises(ConfigurationError):
            require_divides(3, 16, "x")
        with pytest.raises(ConfigurationError):
            require_divides(0, 16, "x")

    def test_error_message_includes_name(self):
        with pytest.raises(ConfigurationError, match="myparam"):
            require_positive(-1, "myparam")
