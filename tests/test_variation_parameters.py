"""Tests for Table 1 parameter specs and parameter vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.variation.parameters import (
    PARAMETER_NAMES,
    ParameterSpec,
    ProcessParameters,
    TABLE1,
    VariationTable,
)


class TestParameterSpec:
    def test_sigma_is_third_of_range(self):
        spec = ParameterSpec("vt", 0.220, 0.18)
        assert spec.sigma == pytest.approx(0.220 * 0.06)

    def test_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("oxide", 1.0, 0.1)

    def test_rejects_non_positive_nominal(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("vt", 0.0, 0.1)


class TestTable1:
    """Pin the paper's Table 1 values exactly."""

    def test_nominal_values(self):
        nominal = TABLE1.nominal()
        assert nominal.lgate == pytest.approx(45 * units.NM)
        assert nominal.vt == pytest.approx(220 * units.MV)
        assert nominal.metal_width == pytest.approx(0.25 * units.UM)
        assert nominal.metal_thickness == pytest.approx(0.55 * units.UM)
        assert nominal.ild_thickness == pytest.approx(0.15 * units.UM)

    @pytest.mark.parametrize(
        "name,fraction",
        [
            ("lgate", 0.10),
            ("vt", 0.18),
            ("metal_width", 0.33),
            ("metal_thickness", 0.33),
            ("ild_thickness", 0.35),
        ],
    )
    def test_three_sigma_fractions(self, name, fraction):
        assert TABLE1.spec(name).three_sigma_fraction == pytest.approx(fraction)

    def test_unknown_spec_lookup(self):
        with pytest.raises(ConfigurationError):
            TABLE1.spec("nope")

    def test_from_z_scores_identity(self):
        assert TABLE1.from_z_scores({}) == TABLE1.nominal()

    def test_from_z_scores_shifts(self):
        shifted = TABLE1.from_z_scores({"vt": 3.0})
        assert shifted.vt == pytest.approx(0.220 * 1.18)
        assert shifted.lgate == TABLE1.nominal().lgate

    def test_scaled_table(self):
        wide = TABLE1.scaled(2.0)
        assert wide.spec("vt").three_sigma_fraction == pytest.approx(0.36)
        assert wide.nominal() == TABLE1.nominal()

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            TABLE1.scaled(0.0)


class TestVariationTable:
    def test_missing_spec_rejected(self):
        specs = {name: TABLE1.spec(name) for name in PARAMETER_NAMES[:-1]}
        with pytest.raises(ConfigurationError):
            VariationTable(specs)

    def test_sigmas_cover_all_names(self):
        assert set(TABLE1.sigmas()) == set(PARAMETER_NAMES)


class TestProcessParameters:
    def test_as_dict_and_iter_agree(self):
        nominal = TABLE1.nominal()
        assert list(nominal) == [nominal.as_dict()[n] for n in PARAMETER_NAMES]

    def test_replace(self):
        nominal = TABLE1.nominal()
        changed = nominal.replace(vt=0.3)
        assert changed.vt == 0.3
        assert changed.lgate == nominal.lgate

    def test_deviation_from_nominal_is_zero(self):
        nominal = TABLE1.nominal()
        assert all(
            v == pytest.approx(0.0)
            for v in nominal.deviation_from(nominal).values()
        )

    @given(st.floats(min_value=-0.5, max_value=0.5))
    def test_deviation_round_trip(self, frac):
        nominal = TABLE1.nominal()
        shifted = nominal.replace(vt=nominal.vt * (1 + frac))
        assert shifted.deviation_from(nominal)["vt"] == pytest.approx(
            frac, abs=1e-9
        )
