"""Tests for the operating-temperature models."""

import pytest

from repro.circuit import devices, CacheCircuitModel
from repro.circuit.technology import REFERENCE_TEMPERATURE, TECH45
from repro.variation.parameters import TABLE1

NOMINAL = TABLE1.nominal()


class TestTemperatureScaling:
    def test_reference_temperature_is_identity(self):
        assert TECH45.temperature == REFERENCE_TEMPERATURE
        assert TECH45.temperature_ratio == pytest.approx(1.0)

    def test_cold_chip_leaks_less(self):
        cold = TECH45.replace(temperature=300.0)
        assert devices.subthreshold_current(
            1e-6, NOMINAL, cold
        ) < devices.subthreshold_current(1e-6, NOMINAL, TECH45)

    def test_hot_chip_leaks_more(self):
        hot = TECH45.replace(temperature=400.0)
        assert devices.subthreshold_current(
            1e-6, NOMINAL, hot
        ) > devices.subthreshold_current(1e-6, NOMINAL, TECH45)

    def test_leakage_temperature_sensitivity_is_strong(self):
        """85C -> 25C cuts subthreshold leakage several-fold (textbook)."""
        room = TECH45.replace(temperature=298.0)
        ratio = devices.subthreshold_current(
            1e-6, NOMINAL, TECH45
        ) / devices.subthreshold_current(1e-6, NOMINAL, room)
        assert ratio > 2.0

    def test_cold_chip_is_faster(self):
        """Mobility improves at low temperature."""
        cold = TECH45.replace(temperature=300.0)
        assert devices.stage_delay(
            1e-6, 1e-15, NOMINAL, cold
        ) < devices.stage_delay(1e-6, 1e-15, NOMINAL, TECH45)

    def test_whole_cache_scales(self):
        cold_model = CacheCircuitModel(
            tech=TECH45.replace(temperature=300.0)
        )
        hot_model = CacheCircuitModel(tech=TECH45)
        cold = cold_model.nominal()
        hot = hot_model.nominal()
        assert cold.total_leakage < hot.total_leakage
        assert cold.access_delay < hot.access_delay

    def test_temperature_must_be_positive(self):
        with pytest.raises(Exception):
            TECH45.replace(temperature=0.0)


class TestYieldVsTemperature:
    def test_relative_leakage_spread_widens_when_cold(self):
        """The subthreshold swing scales with T, so a fixed Vt variation
        moves *more decades* of leakage at low temperature — relative
        leakage variability is worse cold (the well-known reason burn-in
        binning is done hot)."""
        from repro.variation import CacheVariationSampler, MonteCarloEngine
        import numpy as np

        def leak_spread(temperature):
            model = CacheCircuitModel(
                tech=TECH45.replace(temperature=temperature)
            )
            engine = MonteCarloEngine(CacheVariationSampler(), seed=3)
            leaks = [
                r.total_leakage for r in engine.map_chips(model.evaluate, 150)
            ]
            return np.std(np.log(leaks))

        assert leak_spread(300.0) > leak_spread(400.0)
