"""Property tests for the columnar population sampler.

The differential battery (``test_columnar_diff.py``) proves the columnar
arrays equal the per-chip reference bit for bit; these tests check the
arrays are *statistically right in their own terms* — Table 1 means and
variances, the shared-band-offset structure the H-YAPD argument rests
on, and the clip envelope — directly on the columns, where a bulk
arithmetic bug (a transposed axis, a mis-tiled scale vector) would show
up even if it happened to cancel in some spot checks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.variation.columnar import ColumnarPopulationSampler
from repro.variation.parameters import PARAMETER_NAMES, TABLE1
from repro.variation.sampling import CacheVariationSampler
from repro.variation.spatial import CorrelationFactors

_NOMINAL = np.array(list(TABLE1.nominal()))
_SIGMA = np.array([TABLE1.sigmas()[name] for name in PARAMETER_NAMES])


def _population(count=400, seed=11, **kwargs):
    sampler = CacheVariationSampler(**kwargs)
    return sampler, ColumnarPopulationSampler(sampler).sample_range(
        seed, 0, count
    )


class TestTable1Moments:
    def test_die_means_track_nominal(self):
        _, population = _population()
        means = population.die.mean(axis=0)
        np.testing.assert_allclose(means, _NOMINAL, rtol=0.02)

    def test_die_variance_tracks_inter_die_factor(self):
        """Die std ~= inter_die * Table 1 sigma (3-sigma clipping trims
        only the extreme tail, a ~1% std reduction)."""
        sampler, population = _population(count=600)
        expected = sampler.factors.inter_die * _SIGMA
        stds = population.die.std(axis=0)
        assert np.all(stds > 0.85 * expected)
        assert np.all(stds < 1.05 * expected)

    def test_way_variance_grows_with_mesh_distance(self):
        """Way 3 (diagonal, factor .7125) spreads wider around the die
        value than way 1 (horizontal, .375); way 0 is the die exactly."""
        _, population = _population(count=600)
        deviations = population.way_params - population.die[:, None, :]
        assert np.all(deviations[:, 0, :] == 0.0)
        vt = PARAMETER_NAMES.index("vt")
        assert (
            deviations[:, 3, vt].std() > deviations[:, 1, vt].std() * 1.2
        )


class TestBandStructure:
    def test_band_offsets_shared_across_ways(self):
        """The same band index shifts every way by the same offset.

        With the row factor at zero a band segment is exactly its way
        value plus the shared band offset (then clipped), so the
        deviation ``bands - way_params`` must agree across ways wherever
        no clip engaged — the structural premise behind H-YAPD.
        """
        _, population = _population(
            count=200,
            factors=CorrelationFactors(row=0.0),
            clip_sigma=6.0,
            path_residual_sigma=0.0,
            outlier_band_prob=0.0,
        )
        offsets = population.bands - population.way_params[:, :, None, :]
        low = _NOMINAL - 6.0 * _SIGMA
        high = _NOMINAL + 6.0 * _SIGMA
        unclipped = (population.bands > low) & (population.bands < high)
        # compare every way's offset to way 0's, where neither was clipped
        reference = offsets[:, :1, :, :]
        comparable = unclipped & unclipped[:, :1, :, :]
        error = np.where(comparable, np.abs(offsets - reference), 0.0)
        assert np.all(error <= 1e-9 * _NOMINAL)

    def test_band_factor_zero_keeps_bands_on_way(self):
        _, population = _population(
            count=100,
            factors=CorrelationFactors(row=0.0, band=0.0),
            path_residual_sigma=0.0,
            outlier_band_prob=0.0,
        )
        np.testing.assert_array_equal(
            population.bands, np.broadcast_to(
                population.way_params[:, :, None, :], population.bands.shape
            )
        )


class TestClipEnvelope:
    def _assert_within(self, array, clip_sigma):
        low = np.maximum(
            _NOMINAL - clip_sigma * _SIGMA,
            _NOMINAL * CacheVariationSampler._FLOOR_FRACTION,
        )
        high = _NOMINAL + clip_sigma * _SIGMA
        assert np.all(array >= low)
        assert np.all(array <= high)

    @pytest.mark.parametrize("clip_sigma", [1.5, 3.0])
    def test_all_columns_clipped(self, clip_sigma):
        _, population = _population(count=150, clip_sigma=clip_sigma)
        self._assert_within(population.die, clip_sigma)
        self._assert_within(population.way_params, clip_sigma)
        self._assert_within(population.peripherals, clip_sigma)
        self._assert_within(population.bands, clip_sigma)

    @hsettings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_clipped_for_any_seed(self, seed):
        _, population = _population(count=20, seed=seed)
        self._assert_within(population.bands, 3.0)
        self._assert_within(population.die, 3.0)


class TestResidualColumns:
    def test_unit_mean_lognormal(self):
        _, population = _population(count=300, outlier_band_prob=0.0)
        assert population.has_residuals
        assert np.all(population.band_residuals > 0)
        assert float(population.band_residuals.mean()) == pytest.approx(
            1.0, rel=0.05
        )

    def test_outlier_rate(self):
        _, population = _population(
            count=300,
            path_residual_sigma=0.0,
            outlier_band_prob=0.05,
            outlier_scale_range=(1.5, 1.5),
        )
        hits = float((population.band_residuals > 1.4).mean())
        assert hits == pytest.approx(0.05, abs=0.02)

    def test_disabled_residuals_are_ones(self):
        _, population = _population(
            count=50, path_residual_sigma=0.0, outlier_band_prob=0.0
        )
        assert not population.has_residuals
        np.testing.assert_array_equal(
            population.band_residuals,
            np.ones_like(population.band_residuals),
        )
        assert population.chip_map(0).ways[0].band_residuals == ()
