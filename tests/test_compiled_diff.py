"""Differential tests: compiled-trace fast paths vs the per-access reference.

The compiled kernels (`CompiledTrace` + `SetAssociativeCache.run_compiled`
+ the pipeline's packed fetch path) exist purely for speed — they must be
*bit-identical* to the per-access APIs they bypass. These tests sweep 150
randomized (profile, geometry, way-configuration, policy) configurations
through both paths and assert equality of every observable: cache
hit/miss/eviction/per-way counters, resident line state, and — for the
pipeline subset — the full :class:`SimResult` including cycle counts.

The way configurations cover every scheme overlay the yield experiments
produce: healthy, VACA (5-cycle ways), YAPD (disabled ways), H-YAPD
(disabled horizontal band), and Hybrid (disables + slow ways combined).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import FIFOPolicy, LRUPolicy, RandomPolicy
from repro.cache.setassoc import SetAssociativeCache, WayConfig
from repro.core.errors import ConfigurationError
from repro.uarch import Simulator
from repro.uarch.isa import OpClass
from repro.workloads import (
    SPEC2000_ALL,
    compile_trace,
    get_compiled_trace,
    get_profile,
    trace_cache_info,
    trace_key,
)

_PROFILE_NAMES = tuple(p.name for p in SPEC2000_ALL)

#: Small geometries keep 150 replays fast while still exercising several
#: set counts, associativities and block sizes (the paper's L1D last).
_GEOMETRIES = (
    CacheGeometry(1024, 2, 32),
    CacheGeometry(2048, 4, 32),
    CacheGeometry(2048, 4, 64),
    CacheGeometry(4096, 8, 32),
    CacheGeometry(16 * 1024, 4, 32),
)

_OVERLAYS = ("healthy", "vaca", "yapd", "hyapd", "hybrid")

_POLICIES = ("lru", "fifo", "random")


def _overlay_config(rng: random.Random, ways: int, overlay: str) -> WayConfig:
    """A scheme-shaped way configuration with ``ways`` ways."""
    if overlay == "healthy":
        return WayConfig.uniform(ways)
    if overlay == "vaca":
        latencies = tuple(rng.choice((4, 5)) for _ in range(ways))
        return WayConfig(latencies=latencies)
    if overlay == "hyapd":
        return WayConfig(
            latencies=tuple(4 for _ in range(ways)),
            disabled_band=rng.randrange(4),
            num_bands=4,
        )
    # yapd / hybrid: disable a strict subset of ways; hybrid also slows
    # some of the surviving ways to 5 cycles.
    disabled = rng.sample(range(ways), rng.randrange(1, ways))
    latencies = []
    for way in range(ways):
        if way in disabled:
            latencies.append(None)
        elif overlay == "hybrid":
            latencies.append(rng.choice((4, 5)))
        else:
            latencies.append(4)
    return WayConfig(latencies=tuple(latencies))


def _policy_factory(kind: str):
    if kind == "lru":
        return LRUPolicy
    if kind == "fifo":
        return FIFOPolicy
    # Seeded per set-construction: both caches of a differential pair get
    # identical per-set random streams.
    return lambda: RandomPolicy(np.random.default_rng(97))


def _make_cases(count: int):
    rng = random.Random(20060805)
    cases = []
    for index in range(count):
        profile = rng.choice(_PROFILE_NAMES)
        geometry = rng.choice(_GEOMETRIES)
        overlay = rng.choice(_OVERLAYS)
        policy = rng.choice(_POLICIES)
        seed = rng.randrange(1, 50)
        config = _overlay_config(rng, geometry.associativity, overlay)
        cases.append(
            pytest.param(
                profile, geometry, config, policy, seed,
                id=f"{index:03d}-{profile}-{overlay}-{policy}",
            )
        )
    return cases


_CASES = _make_cases(150)


def _reference_replay(cache: SetAssociativeCache, trace) -> None:
    """The per-access reference: access(); fill() on miss."""
    for instr in trace.instructions():
        if instr.address is None:
            continue
        write = instr.op is OpClass.STORE
        result = cache.access(instr.address, write=write)
        if not result.hit:
            cache.fill(instr.address, dirty=write)


def _cache_state(cache: SetAssociativeCache):
    lines = []
    for set_index in range(cache.geometry.num_sets):
        for way in range(cache.geometry.associativity):
            line = cache._lines[set_index][way]
            if line is not None:
                lines.append((set_index, way, line.tag, line.dirty))
    return (
        cache.hits,
        cache.misses,
        cache.evictions,
        tuple(cache.way_hits),
        tuple(lines),
    )


@pytest.mark.parametrize("profile,geometry,config,policy,seed", _CASES)
def test_run_compiled_matches_reference(profile, geometry, config, policy, seed):
    trace = get_compiled_trace(get_profile(profile), seed, 600)
    reference = SetAssociativeCache(
        geometry, config=config, policy_factory=_policy_factory(policy)
    )
    _reference_replay(reference, trace)
    fast = SetAssociativeCache(
        geometry, config=config, policy_factory=_policy_factory(policy)
    )
    hits, misses, evictions = fast.run_compiled(trace)
    assert (hits, misses, evictions) == (
        reference.hits, reference.misses, reference.evictions,
    )
    assert _cache_state(fast) == _cache_state(reference)


# ----------------------------------------------------------------------
# pipeline: compiled replay must reproduce cycle counts exactly
# ----------------------------------------------------------------------
def _make_pipeline_cases(count: int):
    rng = random.Random(777)
    cases = []
    for index in range(count):
        profile = rng.choice(_PROFILE_NAMES)
        overlay = rng.choice(_OVERLAYS)
        seed = rng.randrange(1, 20)
        uniform = None
        if overlay == "healthy" and rng.random() < 0.5:
            uniform = 5  # naive binning (Section 4.5)
        config = _overlay_config(rng, 4, overlay)
        cases.append(
            pytest.param(
                profile, config, uniform, seed,
                id=f"pipe{index:02d}-{profile}-{overlay}"
                + ("-uniform" if uniform else ""),
            )
        )
    return cases


@pytest.mark.parametrize(
    "profile,config,uniform,seed", _make_pipeline_cases(30)
)
def test_pipeline_compiled_matches_reference(profile, config, uniform, seed):
    from repro.workloads import TraceGenerator

    prof = get_profile(profile)
    length, warmup = 700, 100
    compiled = get_compiled_trace(prof, seed, length)
    reference = Simulator(
        l1d_config=config, uniform_load_latency=uniform
    ).run(TraceGenerator(prof, seed=seed).generate(length), warmup=warmup)
    fast = Simulator(
        l1d_config=config, uniform_load_latency=uniform
    ).run(compiled, warmup=warmup)
    # SimResult is a frozen dataclass: == covers instructions, cycles,
    # replays, LBB stalls, slow-way hits, mispredicts, loads, stores and
    # the full hierarchy counter snapshot.
    assert fast == reference


# ----------------------------------------------------------------------
# compiled-trace cache semantics
# ----------------------------------------------------------------------
class TestCompiledTraceCache:
    def test_prefix_is_bit_identical_to_direct_compilation(self):
        profile = get_profile("vpr")
        long = compile_trace(profile, 11, 900)
        short = compile_trace(profile, 11, 250)
        # Content addresses prove the generator's prefix property: the
        # first 250 packed instructions of the long compilation are the
        # 250-instruction compilation.
        assert long.prefix(250).key == short.key
        assert list(long.prefix(250).instructions()) == list(
            short.instructions()
        )

    def test_cache_serves_prefixes_and_counts_hits(self):
        profile = get_profile("gap")
        before = trace_cache_info()
        first = get_compiled_trace(profile, 23, 500)
        again = get_compiled_trace(profile, 23, 200)
        after = trace_cache_info()
        assert again.ops is first.ops  # shared buffers, no regeneration
        assert again.length == 200
        assert after["hits"] >= before["hits"] + 1
        assert after["misses"] >= before["misses"] + 1

    def test_longer_request_recompiles_and_replaces(self):
        profile = get_profile("lucas")
        short = get_compiled_trace(profile, 31, 100)
        long = get_compiled_trace(profile, 31, 400)
        assert len(long.ops) >= 400
        # The overlap is bit-identical (prefix property).
        assert long.prefix(100).key == short.key

    def test_trace_key_is_identity_stable(self):
        assert trace_key("gzip", 2006, 1000) == trace_key("gzip", 2006, 1000)
        assert trace_key("gzip", 2006, 1000) != trace_key("gzip", 2006, 1001)
        assert trace_key("gzip", 2006, 1000) != trace_key("mcf", 2006, 1000)


# ----------------------------------------------------------------------
# zero-way guard (H-YAPD region masks)
# ----------------------------------------------------------------------
class TestZeroWayGuard:
    def test_band_disable_cannot_mask_every_way(self):
        # 1 way, 4 bands: the disabled band removes the only way of one
        # address group — rejected at construction, not mid-simulation.
        with pytest.raises(ConfigurationError, match="zero usable ways"):
            SetAssociativeCache(
                CacheGeometry(4096, 1, 32),
                config=WayConfig(latencies=(4,), disabled_band=0),
            )

    def test_policies_reject_empty_candidates_with_config_error(self):
        for policy in (LRUPolicy(), FIFOPolicy(), RandomPolicy()):
            with pytest.raises(ConfigurationError, match="eligible ways"):
                policy.victim([])


# ----------------------------------------------------------------------
# flamegraph attribution: compile vs replay spans
# ----------------------------------------------------------------------
def test_compile_and_replay_spans_are_traced(tmp_path, monkeypatch):
    from repro.cli import main
    from repro.obs import configure_tracing, disable_tracing, load_spans
    from repro.workloads import clear_trace_cache

    trace_file = tmp_path / "t.jsonl"
    configure_tracing(trace_file)
    try:
        clear_trace_cache()  # force a ctrace.compile span
        profile = get_profile("gzip")
        compiled = get_compiled_trace(profile, 3, 600)
        Simulator().run(compiled, warmup=100)
    finally:
        disable_tracing()
    names = {record["name"] for record in load_spans(trace_file)}
    assert "ctrace.compile" in names
    assert "ctrace.replay" in names
    # And the flamegraph renders both, so time is attributed to
    # compile vs replay when reading `repro trace flamegraph` output.
    out = tmp_path / "flame.html"
    assert main(
        ["trace", "flamegraph", str(trace_file), "--out", str(out)]
    ) == 0
    html = out.read_text(encoding="utf-8")
    assert "ctrace.compile" in html
    assert "ctrace.replay" in html
