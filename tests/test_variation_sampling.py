"""Tests for the hierarchical cache variation sampler."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.core.errors import ConfigurationError
from repro.variation.montecarlo import MonteCarloEngine
from repro.variation.parameters import PARAMETER_NAMES, TABLE1
from repro.variation.sampling import CacheVariationSampler, PERIPHERAL_SEGMENTS
from repro.variation.spatial import CorrelationFactors


def make_sampler(**kwargs) -> CacheVariationSampler:
    return CacheVariationSampler(**kwargs)


class TestSamplerStructure:
    def test_shape(self):
        cvmap = make_sampler().sample_chip(seed=1, chip_id=0)
        assert cvmap.num_ways == 4
        assert cvmap.num_bands == 4
        for way in cvmap.ways:
            assert len(way.bands) == 4
            assert len(way.band_residuals) == 4

    def test_reproducible_per_chip(self):
        a = make_sampler().sample_chip(seed=9, chip_id=5)
        b = make_sampler().sample_chip(seed=9, chip_id=5)
        assert a == b

    def test_chips_differ(self):
        a = make_sampler().sample_chip(seed=9, chip_id=5)
        b = make_sampler().sample_chip(seed=9, chip_id=6)
        assert a != b

    def test_seed_changes_population(self):
        a = make_sampler().sample_chip(seed=1, chip_id=0)
        b = make_sampler().sample_chip(seed=2, chip_id=0)
        assert a != b

    def test_band_vectors_helper(self):
        cvmap = make_sampler().sample_chip(seed=1, chip_id=0)
        vectors = cvmap.band_vectors(2)
        assert len(vectors) == 4
        assert vectors[1] == cvmap.ways[1].bands[2]
        with pytest.raises(ConfigurationError):
            cvmap.band_vectors(9)

    def test_peripheral_lookup(self):
        cvmap = make_sampler().sample_chip(seed=1, chip_id=0)
        for name in PERIPHERAL_SEGMENTS:
            assert cvmap.ways[0].peripheral(name) is not None
        with pytest.raises(ConfigurationError):
            cvmap.ways[0].peripheral("bogus")

    def test_too_many_ways_for_mesh(self):
        with pytest.raises(ConfigurationError):
            make_sampler(num_ways=5)

    def test_invalid_outlier_config(self):
        with pytest.raises(ConfigurationError):
            make_sampler(outlier_band_prob=1.5)
        with pytest.raises(ConfigurationError):
            make_sampler(outlier_scale_range=(0.5, 2.0))


class TestSamplerStatistics:
    def test_all_values_positive_and_clipped(self):
        sampler = make_sampler()
        for chip_id in range(50):
            cvmap = sampler.sample_chip(seed=3, chip_id=chip_id)
            for way in cvmap.ways:
                for params in [way.params, way.decoder, *way.bands]:
                    for name in PARAMETER_NAMES:
                        value = getattr(params, name)
                        nominal = getattr(TABLE1.nominal(), name)
                        assert value > 0
                        # die draw clipped at 3 sigma; children can stray a
                        # little past but must stay within die +/- child
                        # clip; allow a generous global envelope.
                        assert value < nominal * 3

    def test_die_mean_tracks_nominal(self):
        sampler = make_sampler()
        vts = [
            sampler.sample_chip(seed=11, chip_id=i).die.vt for i in range(400)
        ]
        mean = float(np.mean(vts))
        assert mean == pytest.approx(TABLE1.nominal().vt, rel=0.02)

    def test_way_correlation_ordering(self):
        """Way 1 (horizontal, factor .375) tracks way 0 tighter than way 3
        (diagonal, .7125)."""
        sampler = make_sampler(path_residual_sigma=0.0, outlier_band_prob=0.0)
        d1, d3 = [], []
        for i in range(400):
            cvmap = sampler.sample_chip(seed=13, chip_id=i)
            base = cvmap.ways[0].params.vt
            d1.append(cvmap.ways[1].params.vt - base)
            d3.append(cvmap.ways[3].params.vt - base)
        assert np.std(d3) > np.std(d1) * 1.2

    def test_band_offsets_shared_across_ways(self):
        """The same band index in different ways is positively correlated."""
        sampler = make_sampler(path_residual_sigma=0.0, outlier_band_prob=0.0)
        a, b = [], []
        for i in range(400):
            cvmap = sampler.sample_chip(seed=17, chip_id=i)
            way_means = [
                np.mean([band.vt for band in way.bands]) for way in cvmap.ways
            ]
            # deviation of band 2 from its way mean, in two ways
            a.append(cvmap.ways[0].bands[2].vt - way_means[0])
            b.append(cvmap.ways[3].bands[2].vt - way_means[3])
        corr = float(np.corrcoef(a, b)[0, 1])
        assert corr > 0.5

    def test_band_factor_zero_decorrelates(self):
        factors = CorrelationFactors().with_band(0.0)
        sampler = make_sampler(
            factors=factors, path_residual_sigma=0.0, outlier_band_prob=0.0
        )
        a, b = [], []
        for i in range(400):
            cvmap = sampler.sample_chip(seed=17, chip_id=i)
            a.append(cvmap.ways[0].bands[2].vt - cvmap.ways[0].params.vt)
            b.append(cvmap.ways[3].bands[2].vt - cvmap.ways[3].params.vt)
        corr = float(np.corrcoef(a, b)[0, 1])
        assert abs(corr) < 0.2

    def test_residuals_unit_mean(self):
        sampler = make_sampler(outlier_band_prob=0.0)
        values = []
        for i in range(300):
            cvmap = sampler.sample_chip(seed=23, chip_id=i)
            for way in cvmap.ways:
                values.extend(way.band_residuals)
        assert float(np.mean(values)) == pytest.approx(1.0, rel=0.05)

    def test_outliers_appear_at_configured_rate(self):
        sampler = make_sampler(
            path_residual_sigma=0.0,
            outlier_band_prob=0.05,
            outlier_scale_range=(1.5, 1.5),
        )
        hits = total = 0
        for i in range(200):
            cvmap = sampler.sample_chip(seed=29, chip_id=i)
            for way in cvmap.ways:
                for residual in way.band_residuals:
                    total += 1
                    if residual > 1.4:
                        hits += 1
        assert hits / total == pytest.approx(0.05, abs=0.02)

    def test_residuals_disabled(self):
        sampler = make_sampler(path_residual_sigma=0.0, outlier_band_prob=0.0)
        cvmap = sampler.sample_chip(seed=1, chip_id=0)
        assert cvmap.ways[0].band_residuals == ()
        assert cvmap.ways[0].band_residual(2) == 1.0


class TestMonteCarloEngine:
    def test_population_size(self):
        engine = MonteCarloEngine(make_sampler(), seed=5)
        chips = list(engine.chips(25))
        assert len(chips) == 25
        assert [c.chip_id for c in chips] == list(range(25))

    def test_map_chips(self):
        engine = MonteCarloEngine(make_sampler(), seed=5)
        vts = engine.map_chips(lambda c: c.die.vt, count=10)
        assert len(vts) == 10

    def test_prefix_stability(self):
        """Chip i is identical regardless of population size."""
        engine = MonteCarloEngine(make_sampler(), seed=5)
        small = list(engine.chips(3))
        large = list(engine.chips(6))
        assert small == large[:3]

    def test_rejects_non_positive_count(self):
        engine = MonteCarloEngine(make_sampler(), seed=5)
        with pytest.raises(ConfigurationError):
            list(engine.chips(0))


@hsettings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), chip=st.integers(0, 50))
def test_sampling_is_pure(seed, chip):
    """Property: sampling any chip twice yields identical maps."""
    sampler = CacheVariationSampler()
    assert sampler.sample_chip(seed, chip) == sampler.sample_chip(seed, chip)
