"""Tests for cache geometry arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.cache import CacheGeometry
from repro.core import units
from repro.core.errors import ConfigurationError


L1D = CacheGeometry(16 * units.KB, 4, 32)
L1I = CacheGeometry(16 * units.KB, 4, 64)
L2 = CacheGeometry(512 * units.KB, 8, 128)


class TestDerivedCounts:
    def test_l1d_sets(self):
        assert L1D.num_sets == 128

    def test_l1i_sets(self):
        assert L1I.num_sets == 64

    def test_l2_sets(self):
        assert L2.num_sets == 512

    def test_num_blocks(self):
        assert L1D.num_blocks == 512

    def test_describe(self):
        assert L1D.describe() == "16KB/4-way/32B (128 sets)"


class TestAddressMapping:
    def test_block_address_strips_offset(self):
        assert L1D.block_address(0x1000) == L1D.block_address(0x101F)
        assert L1D.block_address(0x1000) != L1D.block_address(0x1020)

    def test_set_index_wraps(self):
        assert L1D.set_index(0x0) == 0
        assert L1D.set_index(128 * 32) == 0  # one full stride later
        assert L1D.set_index(32) == 1

    def test_tag_distinguishes_aliases(self):
        a = 0x0
        b = 128 * 32  # same set, different tag
        assert L1D.set_index(a) == L1D.set_index(b)
        assert L1D.tag(a) != L1D.tag(b)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_mapping_consistency(self, address):
        """set/tag reconstruct the block address."""
        block = L1D.block_address(address)
        set_index = L1D.set_index(address)
        tag = L1D.tag(address)
        set_bits = L1D.num_sets.bit_length() - 1
        assert (tag << set_bits) | set_index == block


class TestHYAPDGroups:
    def test_four_groups_partition_sets(self):
        groups = [L1D.address_group(s, 4) for s in range(L1D.num_sets)]
        assert set(groups) == {0, 1, 2, 3}
        # contiguous ranges of equal size
        assert groups == sorted(groups)
        assert groups.count(0) == L1D.num_sets // 4

    def test_group_boundaries(self):
        per_group = L1D.num_sets // 4
        assert L1D.address_group(per_group - 1, 4) == 0
        assert L1D.address_group(per_group, 4) == 1

    def test_single_group(self):
        assert L1D.address_group(77, 1) == 0

    def test_rejects_bad_group_count(self):
        with pytest.raises(ConfigurationError):
            L1D.address_group(0, 0)


class TestValidation:
    def test_rejects_non_power_of_two_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(15 * 1024, 4, 32)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(16 * 1024, 4, 48)

    def test_rejects_capacity_not_divisible(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(16 * 1024, 3, 32)  # 16K/(3*32) not a power of 2
