"""Tests for the L1I/L1D/L2/memory hierarchy."""

import pytest

from repro.cache import HierarchyConfig, MemoryHierarchy, PAPER_HIERARCHY, WayConfig
from repro.core import units


class TestPaperParameters:
    def test_l1d(self):
        cfg = PAPER_HIERARCHY
        assert cfg.l1d_geometry.capacity_bytes == 16 * units.KB
        assert cfg.l1d_geometry.associativity == 4
        assert cfg.l1d_geometry.block_bytes == 32
        assert cfg.l1d_latency == 4

    def test_l1i(self):
        cfg = PAPER_HIERARCHY
        assert cfg.l1i_geometry.capacity_bytes == 16 * units.KB
        assert cfg.l1i_geometry.block_bytes == 64
        assert cfg.l1i_latency == 2

    def test_l2(self):
        cfg = PAPER_HIERARCHY
        assert cfg.l2_geometry.capacity_bytes == 512 * units.KB
        assert cfg.l2_geometry.associativity == 8
        assert cfg.l2_geometry.block_bytes == 128
        assert cfg.l2_latency == 25

    def test_memory(self):
        assert PAPER_HIERARCHY.memory_latency == 350


class TestDataPath:
    def test_cold_access_goes_to_memory(self):
        hierarchy = MemoryHierarchy()
        access = hierarchy.data_access(0x1000)
        assert not access.l1_hit
        assert not access.l2_hit
        assert access.latency == 4 + 25 + 350

    def test_second_access_hits_l1(self):
        hierarchy = MemoryHierarchy()
        hierarchy.data_access(0x1000)
        access = hierarchy.data_access(0x1000)
        assert access.l1_hit
        assert access.latency == 4

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = MemoryHierarchy()
        hierarchy.data_access(0x1000)
        # Evict 0x1000 from L1 by filling its set with 4 more blocks;
        # the L2 (128B blocks, 512 sets) keeps it.
        stride = 128 * 32  # L1 set stride
        for i in range(1, 6):
            hierarchy.data_access(0x1000 + i * stride)
        access = hierarchy.data_access(0x1000)
        assert not access.l1_hit
        assert access.l2_hit
        assert access.latency == 4 + 25

    def test_same_l2_block_misses_merge(self):
        """Two L1 blocks in one L2 block: second goes to L2, not memory."""
        hierarchy = MemoryHierarchy()
        hierarchy.data_access(0x2000)
        before = hierarchy.memory_accesses
        access = hierarchy.data_access(0x2000 + 64)  # same 128B L2 block
        assert access.l2_hit
        assert hierarchy.memory_accesses == before

    def test_slow_way_latency_surfaces(self):
        config = WayConfig(latencies=(5, 5, 5, 5))
        hierarchy = MemoryHierarchy(l1d_config=config)
        hierarchy.data_access(0x3000)
        access = hierarchy.data_access(0x3000)
        assert access.l1_hit
        assert access.latency == 5

    def test_uniform_binning_overrides_way_latency(self):
        config = WayConfig(latencies=(4, 4, 4, 4))
        hierarchy = MemoryHierarchy(
            l1d_config=config, uniform_load_latency=6
        )
        hierarchy.data_access(0x3000)
        access = hierarchy.data_access(0x3000)
        assert access.latency == 6

    def test_write_allocates_and_dirties(self):
        hierarchy = MemoryHierarchy()
        hierarchy.data_access(0x4000, write=True)
        access = hierarchy.data_access(0x4000)
        assert access.l1_hit

    def test_statistics_keys(self):
        hierarchy = MemoryHierarchy()
        hierarchy.data_access(0x1000)
        stats = hierarchy.statistics()
        for key in (
            "l1d_accesses",
            "l1d_miss_rate",
            "l2_accesses",
            "memory_accesses",
            "l1i_miss_rate",
        ):
            assert key in stats


class TestInstructionPath:
    def test_cold_fetch_cost(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.instruction_fetch(0x40_0000) == 2 + 25 + 350

    def test_warm_fetch(self):
        hierarchy = MemoryHierarchy()
        hierarchy.instruction_fetch(0x40_0000)
        assert hierarchy.instruction_fetch(0x40_0000) == 2

    def test_same_block_fetch_hits(self):
        hierarchy = MemoryHierarchy()
        hierarchy.instruction_fetch(0x40_0000)
        assert hierarchy.instruction_fetch(0x40_0000 + 32) == 2

    def test_instruction_and_data_share_l2(self):
        hierarchy = MemoryHierarchy()
        hierarchy.data_access(0x40_0000)
        before = hierarchy.memory_accesses
        # Same 128-byte region: the instruction fetch finds it in L2.
        assert hierarchy.instruction_fetch(0x40_0000) == 2 + 25
        assert hierarchy.memory_accesses == before
