"""Tests for benchmark profiles and the synthetic trace generator."""

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.core.errors import ConfigurationError
from repro.uarch.isa import OpClass
from repro.workloads import (
    SPEC2000_ALL,
    SPEC2000_FP,
    SPEC2000_INT,
    TraceGenerator,
    get_profile,
)
from repro.workloads.generator import _CHASE_REGS


class TestSuiteComposition:
    def test_paper_suite_sizes(self):
        """Paper Section 5.2: 11 integer and 13 floating-point codes."""
        assert len(SPEC2000_INT) == 11
        assert len(SPEC2000_FP) == 13
        assert len(SPEC2000_ALL) == 24

    def test_names_unique(self):
        names = [p.name for p in SPEC2000_ALL]
        assert len(set(names)) == len(names)

    def test_suite_labels(self):
        assert all(p.suite == "int" for p in SPEC2000_INT)
        assert all(p.suite == "fp" for p in SPEC2000_FP)

    def test_lookup(self):
        assert get_profile("mcf").name == "mcf"
        with pytest.raises(ConfigurationError):
            get_profile("doom")

    def test_known_characters(self):
        """The canonical workload characters survive calibration."""
        mcf = get_profile("mcf")
        crafty = get_profile("crafty")
        swim = get_profile("swim")
        assert mcf.chase_frac > 0.3
        assert mcf.chase_region > 1_000_000
        assert swim.stream_frac > 0.7
        assert swim.stream_buffer > 500_000
        assert crafty.working_set < 16 * 1024

    def test_mix_fractions_valid(self):
        for profile in SPEC2000_ALL:
            assert profile.compute_frac > 0.1
            assert 0 <= profile.stream_frac + profile.chase_frac <= 1

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            get_profile("gzip").__class__(
                name="x",
                suite="int",
                load_frac=0.5,
                store_frac=0.3,
                branch_frac=0.2,
                fp_frac=0.0,
                mult_frac=0.0,
                mispredict_rate=0.0,
                dep_prob=0.5,
                working_set=1024,
                locality=1.0,
                stream_frac=0.0,
                chase_frac=0.0,
            )


class TestGeneratedTraces:
    def test_length(self):
        trace = list(TraceGenerator(get_profile("gzip")).generate(5000))
        assert len(trace) == 5000

    def test_deterministic(self):
        a = list(TraceGenerator(get_profile("gzip"), seed=5).generate(2000))
        b = list(TraceGenerator(get_profile("gzip"), seed=5).generate(2000))
        assert a == b

    def test_seed_sensitivity(self):
        a = list(TraceGenerator(get_profile("gzip"), seed=5).generate(2000))
        b = list(TraceGenerator(get_profile("gzip"), seed=6).generate(2000))
        assert a != b

    def test_benchmarks_differ(self):
        a = list(TraceGenerator(get_profile("gzip"), seed=5).generate(2000))
        b = list(TraceGenerator(get_profile("mcf"), seed=5).generate(2000))
        assert a != b

    @pytest.mark.parametrize("name", ["gzip", "mcf", "swim", "crafty"])
    def test_mix_matches_profile(self, name):
        profile = get_profile(name)
        trace = list(TraceGenerator(profile).generate(20000))
        loads = sum(1 for i in trace if i.op is OpClass.LOAD)
        stores = sum(1 for i in trace if i.op is OpClass.STORE)
        branches = sum(1 for i in trace if i.op is OpClass.BRANCH)
        assert loads / 20000 == pytest.approx(profile.load_frac, abs=0.02)
        assert stores / 20000 == pytest.approx(profile.store_frac, abs=0.02)
        assert branches / 20000 == pytest.approx(profile.branch_frac, abs=0.02)

    def test_mispredict_rate(self):
        profile = get_profile("twolf")
        trace = list(TraceGenerator(profile).generate(30000))
        branches = [i for i in trace if i.op is OpClass.BRANCH]
        rate = sum(i.mispredicted for i in branches) / len(branches)
        assert rate == pytest.approx(profile.mispredict_rate, abs=0.03)

    def test_fp_suite_uses_fp_units(self):
        trace = list(TraceGenerator(get_profile("swim")).generate(10000))
        fp_ops = sum(
            1 for i in trace if i.op in (OpClass.FALU, OpClass.FMULT)
        )
        int_trace = list(TraceGenerator(get_profile("gzip")).generate(10000))
        fp_int = sum(
            1 for i in int_trace if i.op in (OpClass.FALU, OpClass.FMULT)
        )
        assert fp_ops > 1000
        assert fp_int == 0

    def test_chase_loads_form_chains(self):
        profile = get_profile("mcf")
        trace = list(TraceGenerator(profile).generate(5000))
        chase = [
            i
            for i in trace
            if i.op is OpClass.LOAD and i.dest in _CHASE_REGS
        ]
        assert chase, "mcf must emit chase loads"
        for instr in chase:
            assert instr.srcs == (instr.dest,)  # chain through one register

    def test_addresses_within_regions(self):
        profile = get_profile("vpr")
        for instr in TraceGenerator(profile).generate(5000):
            if instr.address is not None:
                region = instr.address >> 28
                assert region in (0x1, 0x2, 0x3)

    def test_stream_addresses_stride(self):
        profile = get_profile("swim")
        streams = {}
        for instr in TraceGenerator(profile).generate(3000):
            if instr.op is OpClass.LOAD and instr.address is not None:
                if instr.address >> 28 == 0x1:
                    walker = (instr.address >> 24) & 0xF
                    streams.setdefault(walker, []).append(instr.address)
        assert streams
        for addresses in streams.values():
            deltas = {
                b - a for a, b in zip(addresses, addresses[1:]) if b > a
            }
            assert profile.stream_stride in deltas

    def test_pc_stays_in_code_footprint(self):
        profile = get_profile("gcc")
        base = 0x0040_0000
        for instr in TraceGenerator(profile).generate(5000):
            assert base <= instr.pc < base + profile.code_footprint + 4096

    def test_rejects_non_positive_length(self):
        with pytest.raises(ConfigurationError):
            list(TraceGenerator(get_profile("gzip")).generate(0))


@hsettings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from([p.name for p in SPEC2000_ALL]),
    length=st.integers(min_value=1, max_value=500),
)
def test_any_profile_generates_valid_traces(name, length):
    """Property: every generated instruction passes TraceInstruction's own
    validation (construction *is* validation) and carries a plausible pc."""
    for instr in TraceGenerator(get_profile(name)).generate(length):
        assert instr.pc > 0
