"""Property-based tests over the scheme layer.

Random synthetic chips (delays and leakages drawn over wide ranges) are
pushed through all schemes; the dominance and consistency invariants that
the paper's Tables 2/3 rely on must hold for *every* chip, not just the
Monte Carlo population.
"""

from hypothesis import given, settings as hsettings, strategies as st

from repro.schemes import DeepVACA, Hybrid, NaiveBinning, VACA, YAPD
from repro.yieldmodel.constraints import BASE_ACCESS_CYCLES
from tests.conftest import make_chip

way_delays = st.lists(
    st.floats(min_value=0.5, max_value=2.0), min_size=4, max_size=4
)
way_leaks = st.lists(
    st.floats(min_value=0.01, max_value=0.6), min_size=4, max_size=4
)


@hsettings(max_examples=150, deadline=None)
@given(delays=way_delays, leaks=way_leaks)
def test_hybrid_dominates_yapd_and_vaca(delays, leaks):
    """Any chip YAPD or VACA can save, Hybrid can save."""
    case = make_chip(delays, way_leakages=leaks)
    hybrid_saved = Hybrid().rescue(case).saved
    if YAPD().rescue(case).saved:
        assert hybrid_saved
    if VACA().rescue(case).saved:
        assert hybrid_saved


@hsettings(max_examples=150, deadline=None)
@given(delays=way_delays, leaks=way_leaks)
def test_deeper_buffers_dominate(delays, leaks):
    """VACA+2 saves a superset of VACA+1 = VACA."""
    case = make_chip(delays, way_leakages=leaks)
    if VACA().rescue(case).saved:
        assert DeepVACA(2).rescue(case).saved


@hsettings(max_examples=150, deadline=None)
@given(delays=way_delays, leaks=way_leaks)
def test_binning_six_dominates_five(delays, leaks):
    case = make_chip(delays, way_leakages=leaks)
    if NaiveBinning(5).rescue(case).saved:
        assert NaiveBinning(6).rescue(case).saved


@hsettings(max_examples=150, deadline=None)
@given(delays=way_delays, leaks=way_leaks)
def test_saved_outcomes_actually_meet_constraints(delays, leaks):
    """A saved chip's post-rescue configuration really satisfies both
    limits — schemes must never claim an infeasible rescue."""
    case = make_chip(delays, way_leakages=leaks)
    for scheme in (YAPD(), VACA(), Hybrid(), NaiveBinning(5)):
        outcome = scheme.rescue(case)
        if not outcome.saved:
            continue
        assert outcome.way_cycles is not None
        # leakage: disabled ways removed from the total. The re-sum
        # here can land an ULP away from the scheme's own accumulation
        # order, so shave the tolerance off rather than adding it on —
        # a rescue sitting exactly at the limit is feasible.
        leakage = sum(
            case.circuit.ways[w].leakage
            for w, cycles in enumerate(outcome.way_cycles)
            if cycles is not None
        )
        assert case.constraints.meets_leakage(leakage - 1e-12)
        # delay: every enabled way's latency class is honoured
        for w, cycles in enumerate(outcome.way_cycles):
            if cycles is None:
                continue
            assert cycles >= case.way_cycles[w] or cycles >= BASE_ACCESS_CYCLES


@hsettings(max_examples=100, deadline=None)
@given(delays=way_delays, leaks=way_leaks)
def test_rescue_is_pure(delays, leaks):
    """Rescuing twice yields identical outcomes (no hidden state)."""
    case = make_chip(delays, way_leakages=leaks)
    for scheme in (YAPD(), VACA(), Hybrid()):
        assert scheme.rescue(case) == scheme.rescue(case)


@hsettings(max_examples=100, deadline=None)
@given(delays=way_delays, leaks=way_leaks)
def test_passing_chips_never_modified(delays, leaks):
    case = make_chip(delays, way_leakages=leaks)
    if not case.passes:
        return
    for scheme in (YAPD(), VACA(), Hybrid()):
        outcome = scheme.rescue(case)
        assert outcome.saved
        assert outcome.disabled_way is None
        assert outcome.disabled_band is None
