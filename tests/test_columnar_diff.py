"""Differential tests: columnar Monte Carlo vs the per-chip reference.

The columnar population pipeline (`ColumnarPopulationSampler` +
`evaluate_population_pair` + `classify_population_columns`) exists purely
for speed — it must be *bit-identical* to the per-chip path it bypasses.
These tests sweep 150 randomized (geometry, correlation-factor, residual,
seed) configurations through both samplers and assert equality of every
sampled parameter; a subset continues through the circuit model and the
column-wise classification; and a handful of end-to-end configurations
run the full :class:`YieldStudy` with ``REPRO_COLUMNAR`` on and off and
assert equal yield breakdowns, loss-reason censuses, scatter outputs and
byte-identical store payloads.

A final regression class locks the RNG stream contract: both samplers
must consume a chip's generator draw for draw, leaving it at the same
stream position.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.circuit.cache_model import CacheCircuitModel
from repro.circuit.columnar import (
    evaluate_population_columns,
    evaluate_population_pair,
)
from repro.circuit.organization import CacheOrganization
from repro.core.errors import ConfigurationError
from repro.core.rng import spawn
from repro.engine.codec import encode_population
from repro.variation.columnar import ColumnarPopulationSampler, columnar_enabled
from repro.variation.sampling import CacheVariationSampler
from repro.variation.spatial import CorrelationFactors, MeshLayout
from repro.yieldmodel.analysis import YieldStudy, classify_population_columns
from repro.yieldmodel.classify import loss_reason_for_code

#: Meshes and the way counts placed on them: every relation to way 0
#: (origin / horizontal / vertical / diagonal) occurs, plus degenerate
#: single-way and high-associativity layouts.
_GEOMETRIES = (
    (1, 2, 1),
    (1, 2, 2),
    (2, 2, 2),
    (2, 2, 3),
    (2, 2, 4),
    (2, 3, 6),
    (2, 4, 8),
)


def _random_factors(rng: random.Random) -> CorrelationFactors:
    """Random correlation factors, with zero levels mixed in.

    A zero factor makes the reference skip that level's draws entirely,
    which the columnar sampler must reproduce (zeroed buffer slots) —
    so every level is zero in a fair share of the cases.
    """
    return CorrelationFactors(
        bit=0.01,
        row=0.0 if rng.random() < 0.25 else rng.uniform(0.02, 0.15),
        way_horizontal=0.0 if rng.random() < 0.15 else rng.uniform(0.1, 1.2),
        way_vertical=0.0 if rng.random() < 0.15 else rng.uniform(0.1, 1.2),
        way_diagonal=rng.uniform(0.2, 1.8),
        band=0.0 if rng.random() < 0.25 else rng.uniform(0.3, 1.8),
        inter_die=0.0 if rng.random() < 0.2 else rng.uniform(0.4, 1.3),
    )


def _make_sampler(rng: random.Random):
    """A randomized sampler configuration (geometry + factors + residuals)."""
    mesh_rows, mesh_cols, num_ways = rng.choice(_GEOMETRIES)
    low = rng.uniform(1.0, 1.3)
    return CacheVariationSampler(
        factors=_random_factors(rng),
        mesh=MeshLayout(rows=mesh_rows, cols=mesh_cols),
        num_ways=num_ways,
        num_bands=rng.choice((1, 2, 3, 4, 6)),
        clip_sigma=rng.choice((1.5, 2.0, 3.0, 4.0)),
        path_residual_sigma=0.0 if rng.random() < 0.2 else rng.uniform(0.05, 0.45),
        outlier_band_prob=0.0 if rng.random() < 0.2 else rng.uniform(0.01, 0.5),
        outlier_scale_range=(low, low + rng.uniform(0.2, 1.5)),
    )


def _make_cases(count: int):
    rng = random.Random(20060806)
    cases = []
    for index in range(count):
        sampler = _make_sampler(rng)
        seed = rng.randrange(1, 100_000)
        # Scattered, non-contiguous chip ids: the spawn discipline must
        # make any id subset reproduce the reference chips exactly.
        base = rng.randrange(0, 64)
        stride = rng.choice((1, 1, 1, 3, 7))
        chip_ids = tuple(base + i * stride for i in range(4))
        cases.append(
            pytest.param(
                sampler,
                seed,
                chip_ids,
                id=(
                    f"{index:03d}-w{sampler.num_ways}b{sampler.num_bands}"
                    f"-s{seed}"
                ),
            )
        )
    return cases


_CASES = _make_cases(150)

#: Subset carried through the circuit model and classification (the
#: sampler battery above already pins the inputs bit for bit).
_CIRCUIT_CASES = _CASES[::4]


def _columns_for(sampler: CacheVariationSampler):
    return ColumnarPopulationSampler(sampler)


class TestSamplerDifferential:
    """Headline battery: every sampled parameter, 150 configurations."""

    @pytest.mark.parametrize("sampler,seed,chip_ids", _CASES)
    def test_population_matches_reference(self, sampler, seed, chip_ids):
        population = _columns_for(sampler).sample_population(seed, chip_ids)
        assert population.chip_ids == chip_ids
        for index, chip_id in enumerate(chip_ids):
            # NamedTuple equality: exact float comparison over the die
            # vector, every way/peripheral/band vector and the residuals.
            assert population.chip_map(index) == sampler.sample_chip(
                seed, chip_id
            )

    def test_sample_range_matches_sample_population(self):
        sampler = CacheVariationSampler()
        columnar = _columns_for(sampler)
        a = columnar.sample_range(11, 3, 9)
        b = columnar.sample_population(11, range(3, 9))
        assert a.chip_ids == b.chip_ids
        np.testing.assert_array_equal(a.bands, b.bands)
        np.testing.assert_array_equal(a.band_residuals, b.band_residuals)

    def test_chip_map_index_bounds(self):
        population = _columns_for(CacheVariationSampler()).sample_range(1, 0, 2)
        with pytest.raises(ConfigurationError):
            population.chip_map(2)
        with pytest.raises(ConfigurationError):
            population.chip_map(-1)

    def test_invalid_ranges_rejected(self):
        columnar = _columns_for(CacheVariationSampler())
        with pytest.raises(ConfigurationError):
            columnar.sample_range(1, 5, 2)
        with pytest.raises(ConfigurationError):
            columnar.allocate(-1)

    def test_unsupported_sampler_refuses(self):
        """Degenerate tables fall back to scalar draws in the reference;
        the columnar sampler must refuse them rather than diverge."""
        sampler = CacheVariationSampler()
        sampler._vectorised = False  # simulate a zero-sigma table
        columnar = _columns_for(sampler)
        assert not columnar.supported
        with pytest.raises(ConfigurationError):
            columnar.sample_population(1, range(4))


class TestCircuitDifferential:
    """Columns through the circuit model vs per-chip evaluate_pair."""

    @pytest.mark.parametrize("sampler,seed,chip_ids", _CIRCUIT_CASES)
    def test_pair_matches_per_chip(self, sampler, seed, chip_ids):
        org = CacheOrganization(
            num_ways=sampler.num_ways, banks_per_way=sampler.num_bands
        )
        regular_model = CacheCircuitModel(org=org, hyapd=False)
        hyapd_model = CacheCircuitModel(org=org, hyapd=True)
        population = _columns_for(sampler).sample_population(seed, chip_ids)
        col_regular, col_hyapd = evaluate_population_pair(
            regular_model, hyapd_model, population
        )
        for index, chip_id in enumerate(chip_ids):
            cvmap = sampler.sample_chip(seed, chip_id)
            ref_regular, ref_hyapd = regular_model.evaluate_pair(
                hyapd_model, cvmap
            )
            assert col_regular[index] == ref_regular
            assert col_hyapd[index] == ref_hyapd

    @pytest.mark.parametrize("sampler,seed,chip_ids", _CIRCUIT_CASES[:10])
    def test_classification_matches_per_case(self, sampler, seed, chip_ids):
        """Column-wise classification == per-ChipCase classification."""
        from repro.yieldmodel.classify import ChipCase

        org = CacheOrganization(
            num_ways=sampler.num_ways, banks_per_way=sampler.num_bands
        )
        regular_model = CacheCircuitModel(org=org, hyapd=False)
        hyapd_model = CacheCircuitModel(org=org, hyapd=True)
        population = _columns_for(sampler).sample_population(seed, chip_ids)
        columns = evaluate_population_columns(regular_model, population)
        classified = classify_population_columns(columns)
        col_regular, col_hyapd = evaluate_population_pair(
            regular_model, hyapd_model, population
        )
        cases = [
            ChipCase(circuit=r, constraints=classified.constraints)
            for r in col_regular
        ]
        for index, case in enumerate(cases):
            assert tuple(classified.way_cycles[index].tolist()) == case.way_cycles
            code = int(classified.loss_codes[index])
            assert loss_reason_for_code(code) == case.loss_reason
            assert classified.access_delays[index] == case.circuit.access_delay
            assert (
                classified.total_leakages[index] == case.circuit.total_leakage
            )
        assert classified.configuration_keys() == [
            case.configuration for case in cases
        ]
        census = {}
        for case in cases:
            if case.loss_reason.is_loss:
                census[case.loss_reason] = census.get(case.loss_reason, 0) + 1
        assert classified.loss_census() == census
        passing = sum(1 for case in cases if case.passes)
        assert classified.yield_fraction() == pytest.approx(
            passing / len(cases), abs=0.0
        )
        # H-YAPD columns held to the regular population's limits, as the
        # study does.
        h_classified = classify_population_columns(
            columns,
            constraints=classified.constraints,
            delay_scale=hyapd_model._delay_scale,
        )
        h_cases = [
            ChipCase(circuit=h, constraints=classified.constraints)
            for h in col_hyapd
        ]
        for index, case in enumerate(h_cases):
            assert (
                tuple(h_classified.way_cycles[index].tolist()) == case.way_cycles
            )
            assert (
                loss_reason_for_code(int(h_classified.loss_codes[index]))
                == case.loss_reason
            )


#: End-to-end study configurations: the default organisation plus a
#: non-default one (2 ways, 3 bands) and varied sampler settings.
def _study_configs():
    configs = []
    for index, (seed, count, org, sampler) in enumerate(
        [
            (2006, 48, CacheOrganization(), CacheVariationSampler()),
            (7, 56, CacheOrganization(), CacheVariationSampler(clip_sigma=2.5)),
            (
                11,
                40,
                CacheOrganization(),
                CacheVariationSampler(
                    factors=CorrelationFactors(band=0.0),
                    path_residual_sigma=0.0,
                    outlier_band_prob=0.0,
                ),
            ),
            (
                13,
                44,
                CacheOrganization(num_ways=2, banks_per_way=3),
                CacheVariationSampler(
                    num_ways=2, num_bands=3, outlier_band_prob=0.2
                ),
            ),
            (
                17,
                40,
                CacheOrganization(num_ways=8, banks_per_way=2),
                CacheVariationSampler(
                    mesh=MeshLayout(rows=2, cols=4), num_ways=8, num_bands=2
                ),
            ),
        ]
    ):
        configs.append(pytest.param(seed, count, org, sampler, id=f"study{index}"))
    return configs


class TestStudyDifferential:
    """Full YieldStudy with REPRO_COLUMNAR on vs off."""

    @pytest.mark.parametrize("seed,count,org,sampler", _study_configs())
    def test_population_result_identical(
        self, monkeypatch, seed, count, org, sampler
    ):
        def run(flag: str):
            monkeypatch.setenv("REPRO_COLUMNAR", flag)
            study = YieldStudy(
                seed=seed, count=count, organization=org, sampler=sampler
            )
            if flag == "1":
                assert study._columnar_sampler() is not None
            return study.run()

        fast = run("1")
        reference = run("0")
        assert fast.constraints == reference.constraints
        for got, want in zip(fast.cases, reference.cases):
            assert got.circuit == want.circuit
            assert got.loss_reason == want.loss_reason
            assert got.configuration == want.configuration
        for got, want in zip(fast.h_cases, reference.h_cases):
            assert got.circuit == want.circuit
            assert got.loss_reason == want.loss_reason
        assert fast.breakdown([]).base_counts == reference.breakdown([]).base_counts
        assert (
            fast.breakdown([], horizontal=True).base_counts
            == reference.breakdown([], horizontal=True).base_counts
        )
        assert fast.scatter() == reference.scatter()
        assert fast.scatter(horizontal=True) == reference.scatter(horizontal=True)
        # The store payload — what the engine persists — must be
        # byte-identical whichever path computed it.
        fast_bytes = json.dumps(encode_population(fast), sort_keys=True)
        ref_bytes = json.dumps(encode_population(reference), sort_keys=True)
        assert fast_bytes == ref_bytes

    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
        assert columnar_enabled()
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        assert not columnar_enabled()
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        assert columnar_enabled()

    def test_subclass_sampler_falls_back(self, monkeypatch):
        """A sampler subclass could override the draw procedure the
        columnar sampler mirrors — the fast path must decline it."""

        class TweakedSampler(CacheVariationSampler):
            pass

        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        study = YieldStudy(seed=3, count=8, sampler=TweakedSampler())
        assert study._columnar_sampler() is None
        result = study.run()  # reference path still works
        assert result.population == 8

    def test_degenerate_table_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        sampler = CacheVariationSampler()
        sampler._vectorised = False
        study = YieldStudy(seed=3, count=8, sampler=sampler)
        assert study._columnar_sampler() is None
        assert study.run().population == 8

    def test_columnar_cache_memoized(self):
        study = YieldStudy(seed=3, count=8)
        first = study._columnar_sampler()
        assert first is not None
        assert study._columnar_sampler() is first


class TestStreamIdentity:
    """Both samplers must consume a chip's generator draw for draw."""

    @pytest.mark.parametrize(
        "sampler,seed,chip_ids", [_CASES[i] for i in (0, 17, 42, 85, 133)]
    )
    def test_rng_left_at_same_position(self, sampler, seed, chip_ids):
        columnar = _columns_for(sampler)
        raw = columnar.allocate(1)
        reference_rng = spawn(seed, f"chip-{chip_ids[0]}")
        columnar_rng = spawn(seed, f"chip-{chip_ids[0]}")
        sampler.sample(reference_rng, chip_id=chip_ids[0])
        columnar.draw_chip(columnar_rng, 0, raw)
        # If either sampler consumed one draw more or fewer — or drew
        # through a different generator method — the continuation
        # streams diverge immediately.
        assert (
            reference_rng.standard_normal(16).tolist()
            == columnar_rng.standard_normal(16).tolist()
        )
        assert reference_rng.random(8).tolist() == columnar_rng.random(8).tolist()

    def test_reference_and_fused_sampler_agree(self):
        """The fused sampler and its scalar oracle consume identically
        (pre-existing contract the columnar path builds on)."""
        sampler = CacheVariationSampler()
        a = spawn(5, "chip-0")
        b = spawn(5, "chip-0")
        assert sampler.sample(a) == sampler.sample_reference(b)
        assert a.standard_normal(8).tolist() == b.standard_normal(8).tolist()
