"""Property tests: store codec round-trips for every job result type.

The persistent result store only works if ``decode(encode(x))`` is the
identity — including exact float values, because the determinism suite
compares cached and freshly computed results bit-for-bit. These tests
drive both codecs with seeded random payloads through a real JSON
serialize/parse cycle (exactly what :class:`ResultStore` does on disk).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.engine.codec import (
    decode_population,
    decode_simulation,
    encode_population,
    encode_simulation,
    policy_identity,
    way_cycles_identity,
)
from repro.circuit.cache_model import CacheCircuitResult, WayCircuitResult
from repro.uarch.simulator import SimResult
from repro.yieldmodel.analysis import PopulationResult
from repro.yieldmodel.classify import ChipCase
from repro.yieldmodel.constraints import ConstraintPolicy, YieldConstraints

NUM_CASES = 25


def _json_cycle(payload: dict) -> dict:
    """Exactly what the store does: serialize to text, parse back."""
    return json.loads(json.dumps(payload))


def _random_circuit(rng: random.Random, chip_id: int) -> CacheCircuitResult:
    num_ways = rng.choice((2, 4, 8))
    num_bands = rng.choice((2, 4))
    ways = tuple(
        WayCircuitResult(
            way=w,
            band_delays=tuple(
                # Awkward floats on purpose: repr round-tripping must
                # preserve them exactly.
                rng.uniform(0.5e-9, 3e-9) for _ in range(num_bands)
            ),
            band_leakage=tuple(
                rng.uniform(1e-3, 0.2) for _ in range(num_bands)
            ),
            peripheral_leakage=rng.uniform(1e-3, 0.1),
        )
        for w in range(num_ways)
    )
    return CacheCircuitResult(
        chip_id=chip_id, ways=ways, hyapd=rng.random() < 0.5
    )


def _random_population(rng: random.Random) -> PopulationResult:
    constraints = YieldConstraints(
        delay_limit=rng.uniform(1e-9, 4e-9),
        leakage_limit=rng.uniform(0.1, 2.0),
    )
    policy = ConstraintPolicy(
        name=f"policy-{rng.randrange(1000)}",
        delay_sigma_multiple=rng.uniform(1.0, 4.0),
        leakage_mean_multiple=rng.uniform(1.0, 2.0),
    )
    count = rng.randint(1, 6)
    return PopulationResult(
        constraints=constraints,
        cases=[
            ChipCase(_random_circuit(rng, i), constraints)
            for i in range(count)
        ],
        h_cases=[
            ChipCase(_random_circuit(rng, i), constraints)
            for i in range(count)
        ],
        policy=policy,
    )


def _random_simulation(rng: random.Random) -> SimResult:
    instructions = rng.randint(1, 10**7)
    return SimResult(
        instructions=instructions,
        cycles=rng.randint(instructions, 4 * 10**7),
        replays=rng.randint(0, 10**5),
        lbb_stalls=rng.randint(0, 10**5),
        slow_way_hits=rng.randint(0, 10**5),
        branch_mispredicts=rng.randint(0, 10**5),
        loads=rng.randint(0, 10**6),
        stores=rng.randint(0, 10**6),
        hierarchy_stats={
            f"l{level}.{stat}": rng.uniform(0.0, 1e6)
            for level in (1, 2)
            for stat in ("hits", "misses", "miss_rate")
        },
    )


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_population_round_trip(seed):
    rng = random.Random(seed)
    original = _random_population(rng)
    decoded = decode_population(_json_cycle(encode_population(original)))
    assert decoded.constraints == original.constraints
    assert policy_identity(decoded.policy) == policy_identity(original.policy)
    assert decoded.cases == original.cases
    assert decoded.h_cases == original.h_cases
    # Derived facts come out identical too (cached_property recomputes
    # from the decoded circuits).
    for before, after in zip(
        original.cases + original.h_cases, decoded.cases + decoded.h_cases
    ):
        assert after.circuit.way_delays == before.circuit.way_delays
        assert after.way_cycles == before.way_cycles
        assert after.passes == before.passes
    # Stability: encoding the decoded result reproduces the payload.
    assert encode_population(decoded) == encode_population(original)


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_simulation_round_trip(seed):
    rng = random.Random(1000 + seed)
    original = _random_simulation(rng)
    decoded = decode_simulation(_json_cycle(encode_simulation(original)))
    assert decoded == original
    assert decoded.cpi == original.cpi
    assert encode_simulation(decoded) == encode_simulation(original)


def test_way_cycles_identity_preserves_disabled_ways():
    assert way_cycles_identity(None) is None
    assert way_cycles_identity((4, None, 5, 4)) == [4, None, 5, 4]
    # And it survives a JSON cycle (None -> null -> None).
    assert json.loads(json.dumps(way_cycles_identity((None, 4)))) == [None, 4]
