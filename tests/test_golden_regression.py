"""Golden regression tests for the headline experiments.

Table 6 and Figure 8 outputs at the small deterministic settings are
frozen as JSON fixtures under ``tests/golden/``. The experiments are
bit-deterministic for a given seed (at any worker count), so these catch
any unintended numeric drift in the circuit model, yield analysis or
pipeline simulator.

To regenerate after an *intended* model change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_regression.py

and commit the updated fixtures together with the change that moved the
numbers.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.experiments import ExperimentSettings, run_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Same small settings as the engine determinism suite.
SMALL = ExperimentSettings(
    seed=77, chips=48, trace_length=1500, warmup=500,
    benchmarks=("gzip", "mcf"),
)

#: Relative tolerance for float comparisons. The runs are deterministic,
#: so this only needs to absorb JSON number formatting.
REL_TOL = 1e-6

UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"


def _assert_matches(actual, golden, path="$"):
    """Structural comparison; floats compared with relative tolerance."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert sorted(actual) == sorted(golden), (
            f"{path}: keys {sorted(actual)} != golden {sorted(golden)}"
        )
        for key in golden:
            _assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(actual) == len(golden), (
            f"{path}: length {len(actual)} != golden {len(golden)}"
        )
        for i, (a, g) in enumerate(zip(actual, golden)):
            _assert_matches(a, g, f"{path}[{i}]")
    elif isinstance(golden, float):
        assert actual == pytest.approx(golden, rel=REL_TOL, abs=1e-12), (
            f"{path}: {actual} != golden {golden}"
        )
    else:
        assert actual == golden, f"{path}: {actual!r} != golden {golden!r}"


def _check_or_update(name: str, payload: dict) -> None:
    fixture = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        fixture.parent.mkdir(parents=True, exist_ok=True)
        fixture.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"regenerated {fixture}")
    if not fixture.exists():
        pytest.fail(
            f"missing golden fixture {fixture}; run with "
            "REPRO_UPDATE_GOLDEN=1 to create it"
        )
    golden = json.loads(fixture.read_text(encoding="utf-8"))
    # Round-trip the live payload through JSON so both sides carry
    # identical type information (tuples -> lists etc.).
    _assert_matches(json.loads(json.dumps(payload)), golden)


def test_table6_matches_golden():
    result = run_experiment("table6", SMALL)
    _check_or_update("table6_small", {
        "census": result.data["census"],
        "degradations": result.data["degradations"],
        "weighted": result.data["weighted"],
        "headers": result.headers,
    })


def test_fig8_matches_golden():
    result = run_experiment("fig8", SMALL)
    _check_or_update("fig8_small", {
        "correlation": result.data["correlation"],
        "normalized_leakage": result.data["normalized_leakage"],
        "latency_ns": result.data["latency_ns"],
    })
