"""Tests for the MOSFET model: roll-off, drive, leakage, delays."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import devices
from repro.circuit.technology import TECH45
from repro.core import units
from repro.core.errors import ConfigurationError
from repro.variation.parameters import TABLE1

NOMINAL = TABLE1.nominal()


class TestEffectiveThreshold:
    def test_nominal_has_no_rolloff(self):
        assert devices.effective_threshold(NOMINAL, TECH45) == pytest.approx(
            NOMINAL.vt
        )

    def test_shorter_channel_lowers_vt(self):
        short = NOMINAL.replace(lgate=NOMINAL.lgate * 0.9)
        assert devices.effective_threshold(short, TECH45) < NOMINAL.vt

    def test_longer_channel_raises_vt(self):
        long_ = NOMINAL.replace(lgate=NOMINAL.lgate * 1.1)
        assert devices.effective_threshold(long_, TECH45) > NOMINAL.vt

    def test_rolloff_magnitude(self):
        """A small excursion (2%) stays above the floor and drops Vt by
        exactly vt_rolloff * fractional shortfall."""
        short = NOMINAL.replace(lgate=NOMINAL.lgate * 0.98)
        drop = NOMINAL.vt - devices.effective_threshold(short, TECH45)
        assert drop == pytest.approx(TECH45.vt_rolloff * 0.02, rel=1e-6)

    def test_extreme_rolloff_hits_floor(self):
        """A deep excursion saturates at the 20 mV floor instead of going
        negative."""
        short = NOMINAL.replace(lgate=NOMINAL.lgate * 0.9)
        assert devices.effective_threshold(short, TECH45) == pytest.approx(0.02)

    def test_floor(self):
        tiny = NOMINAL.replace(lgate=NOMINAL.lgate * 0.5, vt=0.05)
        assert devices.effective_threshold(tiny, TECH45) >= 0.02


class TestDriveCurrent:
    def test_positive(self):
        assert devices.drive_current(1 * units.UM, NOMINAL, TECH45) > 0

    def test_scales_with_width(self):
        one = devices.drive_current(1 * units.UM, NOMINAL, TECH45)
        two = devices.drive_current(2 * units.UM, NOMINAL, TECH45)
        assert two == pytest.approx(2 * one)

    def test_low_vt_drives_harder(self):
        fast = NOMINAL.replace(vt=NOMINAL.vt * 0.8)
        assert devices.drive_current(
            1e-6, fast, TECH45
        ) > devices.drive_current(1e-6, NOMINAL, TECH45)

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            devices.drive_current(0.0, NOMINAL, TECH45)

    def test_alpha_power_exponent(self):
        """Doubling overdrive raises current by 2**alpha."""
        tech = TECH45.replace(vt_rolloff=0.0)
        low = NOMINAL.replace(vt=tech.vdd - 0.2)
        high = NOMINAL.replace(vt=tech.vdd - 0.4)
        ratio = devices.drive_current(1e-6, high, tech) / devices.drive_current(
            1e-6, low, tech
        )
        assert ratio == pytest.approx(2**tech.alpha, rel=1e-6)


class TestSubthresholdLeakage:
    def test_exponential_in_vt(self):
        """One subthreshold swing of Vt = 10x leakage."""
        lower = NOMINAL.replace(vt=NOMINAL.vt - TECH45.subthreshold_swing)
        ratio = devices.subthreshold_current(
            1e-6, lower, TECH45
        ) / devices.subthreshold_current(1e-6, NOMINAL, TECH45)
        assert ratio == pytest.approx(10.0, rel=1e-6)

    def test_paper_cited_l_sensitivity(self):
        """Paper Section 1: ~10% channel-length reduction gives a multi-x
        subthreshold leakage increase (it cites 3x at 65 nm)."""
        short = NOMINAL.replace(lgate=NOMINAL.lgate * 0.9)
        ratio = devices.subthreshold_current(
            1e-6, short, TECH45
        ) / devices.subthreshold_current(1e-6, NOMINAL, TECH45)
        assert ratio > 3.0

    def test_paper_cited_vt_sensitivity(self):
        """A 3-sigma Vt + L excursion produces the 5-10x leakage factors
        the paper's Section 2 cites (gate-length roll-off carries most of
        the threshold swing in the calibrated model)."""
        low = NOMINAL.replace(
            vt=NOMINAL.vt * (1 - 0.18), lgate=NOMINAL.lgate * 0.97
        )
        ratio = devices.subthreshold_current(
            1e-6, low, TECH45
        ) / devices.subthreshold_current(1e-6, NOMINAL, TECH45)
        assert ratio > 5.0

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            devices.subthreshold_current(-1.0, NOMINAL, TECH45)


class TestStageDelay:
    def test_delay_positive_and_linear_in_cap(self):
        d1 = devices.stage_delay(1e-6, 1e-15, NOMINAL, TECH45)
        d2 = devices.stage_delay(1e-6, 2e-15, NOMINAL, TECH45)
        assert d1 > 0
        assert d2 == pytest.approx(2 * d1)

    def test_wider_driver_is_faster(self):
        narrow = devices.stage_delay(1e-6, 1e-15, NOMINAL, TECH45)
        wide = devices.stage_delay(2e-6, 1e-15, NOMINAL, TECH45)
        assert wide == pytest.approx(narrow / 2)

    def test_slow_corner_is_slower(self):
        slow = NOMINAL.replace(
            vt=NOMINAL.vt * 1.18, lgate=NOMINAL.lgate * 1.1
        )
        assert devices.stage_delay(1e-6, 1e-15, slow, TECH45) > devices.stage_delay(
            1e-6, 1e-15, NOMINAL, TECH45
        )

    def test_rejects_negative_cap(self):
        with pytest.raises(ConfigurationError):
            devices.stage_delay(1e-6, -1e-15, NOMINAL, TECH45)

    @given(st.floats(min_value=0.9, max_value=1.1))
    def test_delay_monotone_in_lgate(self, scale):
        """Longer channel (higher Vt via roll-off, lower W/L) = slower."""
        base = devices.stage_delay(1e-6, 1e-15, NOMINAL, TECH45)
        varied = devices.stage_delay(
            1e-6, 1e-15, NOMINAL.replace(lgate=NOMINAL.lgate * scale), TECH45
        )
        if scale > 1.0:
            assert varied >= base
        elif scale < 1.0:
            assert varied <= base


class TestDelayLeakageTradeoff:
    def test_fast_devices_leak(self):
        """The inverse correlation that drives Figure 8."""
        fast = NOMINAL.replace(lgate=NOMINAL.lgate * 0.93, vt=NOMINAL.vt * 0.9)
        assert devices.stage_delay(1e-6, 1e-15, fast, TECH45) < devices.stage_delay(
            1e-6, 1e-15, NOMINAL, TECH45
        )
        assert devices.subthreshold_current(
            1e-6, fast, TECH45
        ) > devices.subthreshold_current(1e-6, NOMINAL, TECH45)
